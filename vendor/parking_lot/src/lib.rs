//! Vendored, dependency-free stand-in for the slice of `parking_lot` this
//! workspace uses, implemented over `std::sync`. The behavioural contract
//! that matters — `lock()` returns a guard directly (no poisoning `Result`)
//! — is preserved: a poisoned std lock is transparently recovered, matching
//! parking_lot's "no poisoning" semantics.

use std::sync::{Mutex as StdMutex, RwLock as StdRwLock};

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex whose `lock()` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (exclusive borrow proves uniqueness).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose acquisitions never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn contended_lock_from_threads() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }
}

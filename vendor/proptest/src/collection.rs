//! Collection strategies (`prop::collection::vec`).

use crate::Strategy;
use rand::rngs::SmallRng;
use rand::RngExt;
use std::ops::Range;

/// Strategy for `Vec<S::Value>` with a length drawn from `len`.
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

/// Generates vectors whose elements come from `element` and whose length is
/// uniform in `len`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(!len.is_empty(), "empty length range for collection::vec");
    VecStrategy { element, len }
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Clone,
{
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut SmallRng) -> Self::Value {
        let n = rng.random_range(self.len.clone());
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let min = self.len.start;
        let mut out = Vec::new();
        // Length reductions first (most aggressive): halve toward the
        // minimum, then drop the last element.
        let half = min.max(value.len() / 2);
        if half < value.len() {
            out.push(value[..half].to_vec());
        }
        if value.len() > min && value.len() - 1 != half {
            out.push(value[..value.len() - 1].to_vec());
        }
        // Then element-wise shrinks, one index at a time with the rest held
        // fixed, so surviving elements converge to their own minima.
        for i in 0..value.len() {
            for candidate in self.element.shrink(&value[i]) {
                let mut next = value.clone();
                next[i] = candidate;
                out.push(next);
            }
        }
        out
    }
}

//! Collection strategies (`prop::collection::vec`).

use crate::Strategy;
use rand::rngs::SmallRng;
use rand::RngExt;
use std::ops::Range;

/// Strategy for `Vec<S::Value>` with a length drawn from `len`.
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

/// Generates vectors whose elements come from `element` and whose length is
/// uniform in `len`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(!len.is_empty(), "empty length range for collection::vec");
    VecStrategy { element, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut SmallRng) -> Self::Value {
        let n = rng.random_range(self.len.clone());
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

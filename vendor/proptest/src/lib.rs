//! Vendored, minimal property-testing harness exposing the slice of the
//! `proptest` surface this workspace's tests use: the [`proptest!`] macro,
//! [`Strategy`] with `prop_map`, range / tuple / `any::<bool>()` strategies,
//! [`collection::vec`], [`prop_oneof!`], the `prop_assert*` family, and
//! [`ProptestConfig::with_cases`].
//!
//! Differences from real proptest, by design (the build environment has no
//! registry access, so this replaces the real crate):
//!
//! * **Greedy bounded shrinking.** On the first failing case the runner
//!   repeatedly asks the strategy ([`Strategy::shrink`]) for smaller
//!   candidates and keeps the first one that still fails, up to
//!   [`MAX_SHRINK_CANDIDATES`] candidate executions. Integers halve toward
//!   their range start (or toward 0 for `any`), collections truncate/pop
//!   toward their minimum length and shrink elements in place, tuples
//!   shrink per component, unions delegate to every arm. `prop_map`ped
//!   strategies do not shrink (the mapping is not invertible).
//! * **Copy-pasteable failure reports.** The panic message always contains
//!   the minimal failing input (`Debug`), the shrink-step count, and the
//!   exact seed + case index needed to replay the failure deterministically.
//! * **Deterministic seeding.** The RNG seed is derived from the test
//!   function's name, so runs are reproducible and independent of execution
//!   order. There is no persistence file.
//! * `prop_assume!` skips the offending case without drawing a replacement
//!   (case counts are upper bounds, as they effectively are upstream too);
//!   a rejection during shrinking counts as "does not fail".

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

pub mod collection;

/// Re-export so `prelude::*` users can spell `prop::collection::vec` etc.
pub use crate as prop;

/// Runner configuration; only the case count is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    /// Proposes *simpler* candidates for a failing `value`, best first.
    ///
    /// The runner greedily re-tests candidates and recurses on the first
    /// one that still fails, so a good implementation orders candidates
    /// from most aggressive (range minimum, half) to least (decrement).
    /// Returning an empty vector (the default) means "fully shrunk".
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Post-processes generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut SmallRng) -> V {
        (**self).generate(rng)
    }
    fn shrink(&self, value: &V) -> Vec<V> {
        (**self).shrink(value)
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut SmallRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Shrink candidates for an integer failing at `v` with lower bound `lo`:
/// the bound itself, the halfway point, then the decrement — ordered most
/// aggressive first so the greedy runner binary-searches toward `lo`.
macro_rules! int_shrink_toward {
    ($v:expr, $lo:expr) => {{
        let (v, lo) = ($v, $lo);
        let mut out = Vec::new();
        if v > lo {
            out.push(lo);
            // checked_sub dodges signed overflow on pathological ranges
            // (e.g. i64::MIN..i64::MAX); skipping the midpoint there is
            // fine — the decrement still makes progress.
            if let Some(d) = v.checked_sub(lo) {
                let mid = lo + d / 2;
                if mid != lo && mid != v {
                    out.push(mid);
                }
            }
            if v - 1 != lo {
                out.push(v - 1);
            }
        }
        out
    }};
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.random_range(self.clone())
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                int_shrink_toward!(*value, self.start)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.random_range(self.clone())
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                int_shrink_toward!(*value, *self.start())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut SmallRng) -> f64 {
        rng.random_range(self.clone())
    }
}

/// The empty strategy backing zero-argument properties.
impl Strategy for () {
    type Value = ();
    fn generate(&self, _rng: &mut SmallRng) {}
}

macro_rules! tuple_strategy {
    ($(($($n:tt $s:ident)+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+)
        where
            $($s::Value: Clone,)+
        {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                // One component shrinks at a time, the others held fixed.
                let mut out = Vec::new();
                $(
                    for candidate in self.$n.shrink(&value.$n) {
                        let mut next = value.clone();
                        next.$n = candidate;
                        out.push(next);
                    }
                )+
                out
            }
        }
    )+};
}

tuple_strategy! {
    (0 A)
    (0 A 1 B)
    (0 A 1 B 2 C)
    (0 A 1 B 2 C 3 D)
    (0 A 1 B 2 C 3 D 4 E)
    (0 A 1 B 2 C 3 D 4 E 5 F)
}

/// Marker returned by [`any`]; implements [`Strategy`] per supported type.
pub struct Any<T>(core::marker::PhantomData<T>);

/// The canonical strategy for `T` (`any::<bool>()` etc.).
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy<Value = T>,
{
    Any(core::marker::PhantomData)
}

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut SmallRng) -> bool {
        rng.random_bool(0.5)
    }
    fn shrink(&self, value: &bool) -> Vec<bool> {
        if *value {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

macro_rules! any_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.random_range(<$t>::MIN..=<$t>::MAX)
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                // `any` shrinks toward 0 from either side.
                let v = *value;
                let mut out = Vec::new();
                if v != 0 {
                    out.push(0);
                    if v / 2 != 0 {
                        out.push(v / 2);
                    }
                    let dec = if v > 0 { v - 1 } else { v + 1 };
                    if dec != 0 && dec != v / 2 {
                        out.push(dec);
                    }
                }
                out
            }
        }
    )*};
}

any_int_strategy!(u8, u16, u32, u64, i8, i16, i32, i64);

/// Uniform choice among type-erased alternatives (built by [`prop_oneof!`]).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union; `arms` must be non-empty.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut SmallRng) -> V {
        let idx = rng.random_range(0..self.arms.len());
        self.arms[idx].generate(rng)
    }
    fn shrink(&self, value: &V) -> Vec<V> {
        // The generating arm is not recorded, so let every arm propose
        // candidates; ones outside the failing arm's range simply fail to
        // reproduce and are skipped by the runner.
        self.arms.iter().flat_map(|arm| arm.shrink(value)).collect()
    }
}

/// Deterministic per-test seed: FNV-1a over the test path.
pub fn fnv1a_seed(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Builds the runner RNG for one property (used by [`proptest!`]).
pub fn runner_rng(test_path: &str) -> SmallRng {
    SmallRng::seed_from_u64(fnv1a_seed(test_path))
}

/// Outcome of one generated case (used by [`proptest!`]).
pub enum CaseResult {
    /// Property held.
    Pass,
    /// `prop_assume!` rejected the inputs.
    Reject,
    /// Property failed with a message.
    Fail(String),
}

/// Upper bound on candidate executions during one shrink session.
///
/// Shrinking re-runs the property once per candidate, so this caps the extra
/// work a failing property can cost at roughly `MAX_SHRINK_CANDIDATES`
/// additional case executions.
pub const MAX_SHRINK_CANDIDATES: usize = 1024;

/// Runs one property: `config.cases` generated cases, greedy bounded
/// shrinking on the first failure, then a panic whose message contains the
/// minimal failing input and the exact seed needed to replay it.
///
/// This is the engine behind [`proptest!`]; it is public so the macro
/// expansion (and tests of the harness itself) can call it.
pub fn run_property<S>(
    name: &str,
    path: &str,
    config: &ProptestConfig,
    strategy: &S,
    mut prop: impl FnMut(&S::Value) -> CaseResult,
) where
    S: Strategy,
    S::Value: Clone + core::fmt::Debug,
{
    let seed = fnv1a_seed(path);
    let mut rng = SmallRng::seed_from_u64(seed);
    for case in 0..config.cases {
        let value = strategy.generate(&mut rng);
        if let CaseResult::Fail(msg) = prop(&value) {
            let (minimal, min_msg, steps, tried) = shrink_failure(strategy, value, msg, &mut prop);
            panic!(
                "property `{name}` failed at case {}/{}: {min_msg}\n\
                 minimal failing input (after {steps} successful shrink step(s), \
                 {tried} candidate(s) tried): {minimal:?}\n\
                 replay: seed 0x{seed:016x} derived from test path \"{path}\"; \
                 case index {case} (0-based)",
                case + 1,
                config.cases,
            );
        }
    }
}

/// Greedy bounded shrink: repeatedly takes the first candidate that still
/// fails and restarts from it, until no candidate reproduces the failure or
/// the [`MAX_SHRINK_CANDIDATES`] budget is spent. A candidate that passes or
/// is rejected by `prop_assume!` simply does not reproduce the failure.
///
/// Returns `(minimal value, its failure message, successful steps, candidates
/// tried)`.
fn shrink_failure<S>(
    strategy: &S,
    mut value: S::Value,
    mut msg: String,
    prop: &mut impl FnMut(&S::Value) -> CaseResult,
) -> (S::Value, String, usize, usize)
where
    S: Strategy,
    S::Value: Clone,
{
    let mut steps = 0usize;
    let mut tried = 0usize;
    'session: while tried < MAX_SHRINK_CANDIDATES {
        for candidate in strategy.shrink(&value) {
            if tried >= MAX_SHRINK_CANDIDATES {
                break 'session;
            }
            tried += 1;
            if let CaseResult::Fail(m) = prop(&candidate) {
                value = candidate;
                msg = m;
                steps += 1;
                continue 'session;
            }
        }
        break; // no candidate reproduced the failure: fully shrunk
    }
    (value, msg, steps, tried)
}

/// Everything the test files import.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, ProptestConfig, Strategy,
    };
}

/// Defines property tests: `proptest! { #[test] fn f(x in strat) { .. } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:pat_param in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                // The tuple strategy generates components left to right, so
                // the RNG draw order matches the historical per-argument
                // `let` statements and seeded suites keep their cases.
                let __strategy = ($($strat,)*);
                $crate::run_property(
                    stringify!($name),
                    concat!(module_path!(), "::", stringify!($name)),
                    &__config,
                    &__strategy,
                    |__value| {
                        let ($($arg,)*) = __value.clone();
                        (|| {
                            $body
                            #[allow(unreachable_code)]
                            $crate::CaseResult::Pass
                        })()
                    },
                );
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return $crate::CaseResult::Fail(format!(
                "assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return $crate::CaseResult::Fail(format!(
                "assertion failed: {} — {}", stringify!($cond), format!($($fmt)+)
            ));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return $crate::CaseResult::Fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left), stringify!($right), l, r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return $crate::CaseResult::Fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?}) — {}",
                stringify!($left), stringify!($right), l, r, format!($($fmt)+)
            ));
        }
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return $crate::CaseResult::Fail(format!(
                "assertion failed: {} != {} (both: {:?})",
                stringify!($left), stringify!($right), l
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return $crate::CaseResult::Fail(format!(
                "assertion failed: {} != {} (both: {:?}) — {}",
                stringify!($left), stringify!($right), l, format!($($fmt)+)
            ));
        }
    }};
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return $crate::CaseResult::Reject;
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_and_tuples(x in 0u32..10, (a, b) in (0u64..5, 1i64..=3), flip in any::<bool>()) {
            prop_assert!(x < 10);
            prop_assert!(a < 5);
            prop_assert!((1..=3).contains(&b));
            prop_assert!(flip || !flip);
        }

        #[test]
        fn vec_and_map(v in prop::collection::vec((0u32..4, 0u32..4), 1..20)) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            let doubled = (0usize..5).prop_map(|k| 2 * k);
            let mut rng = crate::runner_rng("inner");
            let d = doubled.generate(&mut rng);
            prop_assert_eq!(d % 2, 0);
        }

        #[test]
        fn oneof_and_assume(n in prop_oneof![1usize..4, 10usize..12]) {
            prop_assume!(n != 2);
            prop_assert!(n < 4 || n >= 10);
            prop_assert_ne!(n, 2);
        }
    }

    #[test]
    fn seeds_differ_by_name() {
        assert_ne!(super::fnv1a_seed("a::b"), super::fnv1a_seed("a::c"));
    }

    #[test]
    #[should_panic(expected = "property `failing` failed")]
    fn failures_panic_with_case_info() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(5))]
            fn failing(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        failing();
    }

    /// Runs a failing property and returns its full panic report.
    fn failure_report(property: fn()) -> String {
        *std::panic::catch_unwind(property)
            .expect_err("property must fail")
            .downcast::<String>()
            .expect("panic payload is the formatted report")
    }

    #[test]
    fn shrinks_int_to_boundary() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(20))]
            fn fails_from_17(x in 0u64..1000) {
                prop_assert!(x < 17, "x was {}", x);
            }
        }
        let msg = failure_report(fails_from_17);
        assert!(msg.contains("minimal failing input"), "{msg}");
        assert!(
            msg.contains("(17,)"),
            "expected shrink to the boundary 17: {msg}"
        );
        assert!(msg.contains("x was 17"), "{msg}");
        assert!(
            !msg.contains("after 0 successful shrink step(s)"),
            "expected a strictly smaller input than the generated one: {msg}"
        );
    }

    #[test]
    fn shrinks_vec_to_minimal_form() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(20))]
            fn fails_at_len_3(v in prop::collection::vec(0u32..100, 0..10)) {
                prop_assert!(v.len() < 3, "len was {}", v.len());
            }
        }
        let msg = failure_report(fails_at_len_3);
        assert!(
            msg.contains("[0, 0, 0]"),
            "expected the minimal 3-element all-zero vector: {msg}"
        );
        assert!(msg.contains("len was 3"), "{msg}");
    }

    #[test]
    fn failure_report_is_replayable() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(5))]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        let msg = failure_report(always_fails);
        // The report carries everything needed to replay by hand: the exact
        // seed, the test path it was derived from, and the case index.
        assert!(msg.contains("replay: seed 0x"), "{msg}");
        let seed_hex = msg.split("replay: seed 0x").nth(1).unwrap()[..16].to_string();
        let seed = u64::from_str_radix(&seed_hex, 16).unwrap();
        assert_eq!(
            seed,
            super::fnv1a_seed(concat!(module_path!(), "::always_fails"))
        );
        assert!(msg.contains("case index 0 (0-based)"), "{msg}");
    }
}

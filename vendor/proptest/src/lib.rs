//! Vendored, minimal property-testing harness exposing the slice of the
//! `proptest` surface this workspace's tests use: the [`proptest!`] macro,
//! [`Strategy`] with `prop_map`, range / tuple / `any::<bool>()` strategies,
//! [`collection::vec`], [`prop_oneof!`], the `prop_assert*` family, and
//! [`ProptestConfig::with_cases`].
//!
//! Differences from real proptest, by design (the build environment has no
//! registry access, so this replaces the real crate):
//!
//! * **No shrinking.** A failing case reports its inputs (via `Debug` where
//!   the test formats them into the assertion message) and the case index;
//!   re-running is deterministic, so the failure reproduces exactly.
//! * **Deterministic seeding.** The RNG seed is derived from the test
//!   function's name, so runs are reproducible and independent of execution
//!   order. There is no persistence file.
//! * `prop_assume!` skips the offending case without drawing a replacement
//!   (case counts are upper bounds, as they effectively are upstream too).

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

pub mod collection;

/// Re-export so `prelude::*` users can spell `prop::collection::vec` etc.
pub use crate as prop;

/// Runner configuration; only the case count is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    /// Post-processes generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut SmallRng) -> V {
        (**self).generate(rng)
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut SmallRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut SmallRng) -> f64 {
        rng.random_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($(($($n:tt $s:ident)+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (0 A)
    (0 A 1 B)
    (0 A 1 B 2 C)
    (0 A 1 B 2 C 3 D)
    (0 A 1 B 2 C 3 D 4 E)
    (0 A 1 B 2 C 3 D 4 E 5 F)
}

/// Marker returned by [`any`]; implements [`Strategy`] per supported type.
pub struct Any<T>(core::marker::PhantomData<T>);

/// The canonical strategy for `T` (`any::<bool>()` etc.).
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy<Value = T>,
{
    Any(core::marker::PhantomData)
}

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut SmallRng) -> bool {
        rng.random_bool(0.5)
    }
}

macro_rules! any_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.random_range(<$t>::MIN..=<$t>::MAX)
            }
        }
    )*};
}

any_int_strategy!(u8, u16, u32, u64, i8, i16, i32, i64);

/// Uniform choice among type-erased alternatives (built by [`prop_oneof!`]).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union; `arms` must be non-empty.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut SmallRng) -> V {
        let idx = rng.random_range(0..self.arms.len());
        self.arms[idx].generate(rng)
    }
}

/// Deterministic per-test seed: FNV-1a over the test path.
pub fn fnv1a_seed(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Builds the runner RNG for one property (used by [`proptest!`]).
pub fn runner_rng(test_path: &str) -> SmallRng {
    SmallRng::seed_from_u64(fnv1a_seed(test_path))
}

/// Outcome of one generated case (used by [`proptest!`]).
pub enum CaseResult {
    /// Property held.
    Pass,
    /// `prop_assume!` rejected the inputs.
    Reject,
    /// Property failed with a message.
    Fail(String),
}

/// Everything the test files import.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, ProptestConfig, Strategy,
    };
}

/// Defines property tests: `proptest! { #[test] fn f(x in strat) { .. } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:pat_param in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::runner_rng(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                    let __outcome: $crate::CaseResult = (|| {
                        $body
                        #[allow(unreachable_code)]
                        $crate::CaseResult::Pass
                    })();
                    match __outcome {
                        $crate::CaseResult::Pass | $crate::CaseResult::Reject => {}
                        $crate::CaseResult::Fail(msg) => panic!(
                            "property `{}` failed at case {}/{}: {}",
                            stringify!($name), __case + 1, __config.cases, msg
                        ),
                    }
                }
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return $crate::CaseResult::Fail(format!(
                "assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return $crate::CaseResult::Fail(format!(
                "assertion failed: {} — {}", stringify!($cond), format!($($fmt)+)
            ));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return $crate::CaseResult::Fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left), stringify!($right), l, r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return $crate::CaseResult::Fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?}) — {}",
                stringify!($left), stringify!($right), l, r, format!($($fmt)+)
            ));
        }
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return $crate::CaseResult::Fail(format!(
                "assertion failed: {} != {} (both: {:?})",
                stringify!($left), stringify!($right), l
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return $crate::CaseResult::Fail(format!(
                "assertion failed: {} != {} (both: {:?}) — {}",
                stringify!($left), stringify!($right), l, format!($($fmt)+)
            ));
        }
    }};
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return $crate::CaseResult::Reject;
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_and_tuples(x in 0u32..10, (a, b) in (0u64..5, 1i64..=3), flip in any::<bool>()) {
            prop_assert!(x < 10);
            prop_assert!(a < 5);
            prop_assert!((1..=3).contains(&b));
            prop_assert!(flip || !flip);
        }

        #[test]
        fn vec_and_map(v in prop::collection::vec((0u32..4, 0u32..4), 1..20)) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            let doubled = (0usize..5).prop_map(|k| 2 * k);
            let mut rng = crate::runner_rng("inner");
            let d = doubled.generate(&mut rng);
            prop_assert_eq!(d % 2, 0);
        }

        #[test]
        fn oneof_and_assume(n in prop_oneof![1usize..4, 10usize..12]) {
            prop_assume!(n != 2);
            prop_assert!(n < 4 || n >= 10);
            prop_assert_ne!(n, 2);
        }
    }

    #[test]
    fn seeds_differ_by_name() {
        assert_ne!(super::fnv1a_seed("a::b"), super::fnv1a_seed("a::c"));
    }

    #[test]
    #[should_panic(expected = "property `failing` failed")]
    fn failures_panic_with_case_info() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(5))]
            fn failing(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        failing();
    }
}

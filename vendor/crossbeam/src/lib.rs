//! Vendored, dependency-free stand-in for the slice of `crossbeam` this
//! workspace uses: [`channel::unbounded`] with a **clonable receiver** (the
//! capability std's `mpsc` lacks, and the reason the sweep fan-out wants
//! crossbeam). Implemented as a mutex-protected queue with a condvar; the
//! sweep workloads put whole simulation jobs through it, so per-message
//! overhead is irrelevant.

pub mod channel {
    //! Multi-producer multi-consumer FIFO channels.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Inner<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    /// The sending half; clonable.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiving half; clonable (unlike std's `mpsc::Receiver`).
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone;
    /// carries the unsent value.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl<T: fmt::Debug> std::error::Error for SendError<T> {}

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty, but senders remain.
        Empty,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => write!(f, "channel empty"),
                TryRecvError::Disconnected => write!(f, "channel disconnected"),
            }
        }
    }

    impl std::error::Error for TryRecvError {}

    impl<T> Sender<T> {
        /// Enqueues `value`; fails only if every receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.inner.queue.lock().unwrap();
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            state.items.push_back(value);
            drop(state);
            self.inner.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.queue.lock().unwrap().senders += 1;
            Sender {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.inner.queue.lock().unwrap();
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                self.inner.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value is available or the channel disconnects.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.inner.queue.lock().unwrap();
            loop {
                if let Some(v) = state.items.pop_front() {
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.inner.ready.wait(state).unwrap();
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.inner.queue.lock().unwrap();
            if let Some(v) = state.items.pop_front() {
                Ok(v)
            } else if state.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.queue.lock().unwrap().receivers += 1;
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.inner.queue.lock().unwrap().receivers -= 1;
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_single_thread() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn workers_drain_shared_receiver() {
            let (tx, rx) = unbounded();
            for i in 0..100u64 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let total = std::sync::Mutex::new(0u64);
            std::thread::scope(|s| {
                for _ in 0..4 {
                    let rx = rx.clone();
                    let total = &total;
                    s.spawn(move || {
                        while let Ok(v) = rx.recv() {
                            *total.lock().unwrap() += v;
                        }
                    });
                }
            });
            assert_eq!(*total.lock().unwrap(), 4950);
        }

        #[test]
        fn send_fails_after_receivers_gone() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(5), Err(SendError(5)));
        }
    }
}

//! Vendored, dependency-free stand-in for the parts of the `rand` crate this
//! workspace uses. The build environment has no registry access, so the
//! workspace pins `rand` to this local path crate (see the root
//! `Cargo.toml`). The API mirrors `rand` 0.9 (`random_range` /
//! `random_bool`), restricted to the surface the simulator exercises:
//!
//! * [`rngs::SmallRng`] / [`rngs::StdRng`] — deterministic 64-bit generators
//!   seeded via [`SeedableRng::seed_from_u64`]. Both are SplitMix64-scrambled
//!   xoshiro256++ streams; "std" vs "small" carry no security distinction
//!   here (nothing in the workspace needs a CSPRNG).
//! * [`Rng`] — the core trait: raw `u32`/`u64` output.
//! * [`RngExt`] — range and Bernoulli sampling, blanket-implemented for every
//!   [`Rng`].
//!
//! Determinism is part of the contract: for a fixed seed the exact output
//! stream is stable across platforms and releases, because simulation tests
//! assert on seeded runs.

/// Core random-number source: raw 64-bit output.
pub trait Rng {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`Rng::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Derived sampling methods, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// Samples uniformly from `range` (`start..end` or `start..=end`).
    ///
    /// Panics if the range is empty.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Maps 64 random bits to a uniform `f64` in `[0, 1)`.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    // 53 significant bits, as rand's `Standard` distribution does.
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that knows how to sample a uniform value from an [`Rng`].
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = uniform_u128(rng, span);
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let draw = uniform_u128(rng, span);
                (start as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform draw from `[0, span)` by rejection sampling (no modulo bias).
#[inline]
fn uniform_u128<R: Rng + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span == 1 {
        return 0;
    }
    // span fits in u64 for every range the workspace uses; keep the wide
    // fallback anyway for full-domain inclusive ranges.
    if let Ok(span64) = u64::try_from(span) {
        let zone = u64::MAX - (u64::MAX - span64 + 1) % span64;
        loop {
            let draw = rng.next_u64();
            if draw <= zone {
                return (draw % span64) as u128;
            }
        }
    }
    let draw = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
    draw % span
}

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = self.start + (self.end - self.start) * unit_f64(rng.next_u64());
        // `start + span * (1 - 2^-53)` can round up to exactly `end`; keep
        // the half-open contract by stepping back below it (as real rand does).
        if v < self.end {
            v
        } else {
            self.end.next_down().max(self.start)
        }
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    #[inline]
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = self.start + (self.end - self.start) * unit_f64(rng.next_u64()) as f32;
        if v < self.end {
            v
        } else {
            self.end.next_down().max(self.start)
        }
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! The concrete generators: [`SmallRng`] and [`StdRng`].

    use super::{Rng, SeedableRng};

    /// xoshiro256++ with SplitMix64 seed expansion — fast, 256-bit state,
    /// reproducible across platforms.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            SmallRng { s }
        }
    }

    impl Rng for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// The "standard" generator. In real `rand` this is ChaCha-based; here it
    /// shares the xoshiro engine (nothing in the workspace needs a CSPRNG),
    /// but seeds are domain-separated so `StdRng` and `SmallRng` streams
    /// differ for equal seeds, as they do upstream.
    #[derive(Clone, Debug)]
    pub struct StdRng(SmallRng);

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng(SmallRng::seed_from_u64(seed ^ 0x51D5_7D1F_E1C9_A9B3))
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.random_range(3..17u64);
            assert!((3..17).contains(&x));
            let y = rng.random_range(-5..=5i32);
            assert!((-5..=5).contains(&y));
            let f = rng.random_range(0.0..1.0f64);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[rng.random_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn float_range_stays_below_exclusive_bound() {
        // At this magnitude `start + span * (1 - 2^-53)` rounds to `end`
        // without the correction, breaking the half-open contract.
        let mut rng = SmallRng::seed_from_u64(6);
        let (start, end) = (1e16f64, 1e16 + 2.0);
        for _ in 0..100_000 {
            let v = rng.random_range(start..end);
            assert!(v >= start && v < end, "draw {v} escaped [{start}, {end})");
        }
        // Degenerate one-ULP-wide range: only `start` is representable below `end`.
        let tiny_end = 1.0f64.next_up();
        for _ in 0..100 {
            assert_eq!(rng.random_range(1.0..tiny_end), 1.0);
        }
    }

    #[test]
    fn bool_probability_roughly_respected() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((2000..4000).contains(&hits), "got {hits}");
    }

    #[test]
    fn works_through_dyn_and_ref() {
        fn sample(rng: &mut (impl Rng + ?Sized)) -> u64 {
            rng.random_range(0..10u64)
        }
        let mut rng = SmallRng::seed_from_u64(4);
        assert!(sample(&mut rng) < 10);
    }
}

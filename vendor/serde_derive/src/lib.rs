//! Vendored minimal `#[derive(Serialize)]`.
//!
//! The build environment has no registry access, so this proc-macro crate
//! replaces `serde_derive` without depending on `syn`/`quote`: it walks the
//! raw [`proc_macro::TokenStream`] of the item and emits the impl as a
//! string. Supported shapes — the ones the workspace derives on —
//!
//! * structs with named fields, tuple structs, unit structs;
//! * enums whose variants are unit, tuple, or struct-like.
//!
//! Generic parameters are not supported; deriving on a generic type is a
//! compile error directing the author to a manual impl.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` for non-generic structs and enums.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attributes(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive(Serialize): expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive(Serialize): expected type name, got {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!(
                "derive(Serialize): generic type `{name}` is not supported by the vendored \
                 serde_derive; write a manual Serialize impl"
            );
        }
    }

    let code = match kind.as_str() {
        "struct" => derive_struct(&name, tokens.get(i)),
        "enum" => derive_enum(&name, tokens.get(i)),
        other => panic!("derive(Serialize): cannot derive for `{other}` items"),
    };
    code.parse()
        .expect("derive(Serialize): generated code failed to parse")
}

fn impl_header(name: &str) -> String {
    format!(
        "impl ::serde::ser::Serialize for {name} {{\n\
         fn serialize<__S: ::serde::ser::Serializer>(&self, __serializer: __S)\n\
         -> ::core::result::Result<__S::Ok, __S::Error> {{\n"
    )
}

fn derive_struct(name: &str, body: Option<&TokenTree>) -> String {
    let mut out = impl_header(name);
    match body {
        // Unit struct: `struct Name;`
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
            out.push_str(&format!(
                "::serde::ser::Serializer::serialize_unit_struct(__serializer, \"{name}\")\n"
            ));
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let fields = named_fields(g.stream());
            out.push_str(&format!(
                "let mut __state = ::serde::ser::Serializer::serialize_struct(__serializer, \
                 \"{name}\", {}usize)?;\n",
                fields.len()
            ));
            for f in &fields {
                out.push_str(&format!(
                    "::serde::ser::SerializeStruct::serialize_field(&mut __state, \"{f}\", \
                     &self.{f})?;\n"
                ));
            }
            out.push_str("::serde::ser::SerializeStruct::end(__state)\n");
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let n = tuple_field_count(g.stream());
            out.push_str(&format!(
                "let mut __state = ::serde::ser::Serializer::serialize_tuple_struct(__serializer, \
                 \"{name}\", {n}usize)?;\n"
            ));
            for idx in 0..n {
                out.push_str(&format!(
                    "::serde::ser::SerializeTupleStruct::serialize_field(&mut __state, \
                     &self.{idx})?;\n"
                ));
            }
            out.push_str("::serde::ser::SerializeTupleStruct::end(__state)\n");
        }
        other => panic!("derive(Serialize): unexpected struct body {other:?}"),
    }
    out.push_str("}\n}\n");
    out
}

fn derive_enum(name: &str, body: Option<&TokenTree>) -> String {
    let group = match body {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
        other => panic!("derive(Serialize): unexpected enum body {other:?}"),
    };
    let mut out = impl_header(name);
    out.push_str("match self {\n");
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut i = 0;
    let mut index = 0u32;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        let variant = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("derive(Serialize): expected variant name, got {other:?}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = named_fields(g.stream());
                let bindings = fields.join(", ");
                out.push_str(&format!("{name}::{variant} {{ {bindings} }} => {{\n"));
                out.push_str(&format!(
                    "let mut __state = ::serde::ser::Serializer::serialize_struct_variant(\
                     __serializer, \"{name}\", {index}u32, \"{variant}\", {}usize)?;\n",
                    fields.len()
                ));
                for f in &fields {
                    out.push_str(&format!(
                        "::serde::ser::SerializeStructVariant::serialize_field(&mut __state, \
                         \"{f}\", {f})?;\n"
                    ));
                }
                out.push_str("::serde::ser::SerializeStructVariant::end(__state)\n}\n");
                i += 1;
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = tuple_field_count(g.stream());
                let bindings: Vec<String> = (0..n).map(|k| format!("__f{k}")).collect();
                out.push_str(&format!(
                    "{name}::{variant}({}) => {{\n",
                    bindings.join(", ")
                ));
                out.push_str(&format!(
                    "let mut __state = ::serde::ser::Serializer::serialize_tuple_variant(\
                     __serializer, \"{name}\", {index}u32, \"{variant}\", {n}usize)?;\n"
                ));
                for b in &bindings {
                    out.push_str(&format!(
                        "::serde::ser::SerializeTupleVariant::serialize_field(&mut __state, \
                         {b})?;\n"
                    ));
                }
                out.push_str("::serde::ser::SerializeTupleVariant::end(__state)\n}\n");
                i += 1;
            }
            _ => {
                out.push_str(&format!(
                    "{name}::{variant} => ::serde::ser::Serializer::serialize_unit_variant(\
                     __serializer, \"{name}\", {index}u32, \"{variant}\"),\n"
                ));
                // Skip an explicit discriminant (`= expr`) if present.
                while i < tokens.len() && !is_comma(&tokens[i]) {
                    i += 1;
                }
            }
        }
        // Consume the trailing comma between variants.
        if matches!(tokens.get(i), Some(t) if is_comma(t)) {
            i += 1;
        }
        index += 1;
    }
    out.push_str("}\n}\n}\n");
    out
}

/// Extracts the field names of a named-field body (`a: T, pub b: U, ...`).
fn named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        let field = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("derive(Serialize): expected field name, got {other:?}"),
        };
        fields.push(field);
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("derive(Serialize): expected `:` after field name, got {other:?}"),
        }
        // Skip the type: everything until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while i < tokens.len() {
            if is_arrow(&tokens, i) {
                i += 2; // `->` in an fn-pointer type; its `>` is not a closer
                continue;
            }
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                t if is_comma(t) && depth == 0 => break,
                _ => {}
            }
            i += 1;
        }
        if i < tokens.len() {
            i += 1; // the comma
        }
    }
    fields
}

/// Counts top-level fields in a tuple body (`T, U, ...`).
fn tuple_field_count(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut count = 1;
    let mut trailing_comma = false;
    let mut i = 0;
    while i < tokens.len() {
        if is_arrow(&tokens, i) {
            i += 2; // `->` in an fn-pointer type; its `>` is not a closer
            trailing_comma = false;
            continue;
        }
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            t if is_comma(t) && depth == 0 => {
                count += 1;
                trailing_comma = true;
                i += 1;
                continue;
            }
            _ => {}
        }
        trailing_comma = false;
        i += 1;
    }
    count - usize::from(trailing_comma)
}

fn is_comma(t: &TokenTree) -> bool {
    matches!(t, TokenTree::Punct(p) if p.as_char() == ',')
}

/// True when tokens at `i` spell `->` (a joint `-` followed by `>`).
fn is_arrow(tokens: &[TokenTree], i: usize) -> bool {
    matches!(
        (tokens.get(i), tokens.get(i + 1)),
        (Some(TokenTree::Punct(a)), Some(TokenTree::Punct(b)))
            if a.as_char() == '-'
                && a.spacing() == proc_macro::Spacing::Joint
                && b.as_char() == '>'
    )
}

fn skip_attributes(tokens: &[TokenTree], i: &mut usize) {
    while let (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g))) =
        (tokens.get(*i), tokens.get(*i + 1))
    {
        if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket {
            *i += 2;
        } else {
            break;
        }
    }
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

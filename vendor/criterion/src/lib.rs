//! Vendored, dependency-free stand-in for the slice of `criterion` this
//! workspace's benches use. The build environment has no registry access, so
//! the workspace pins `criterion` to this local path crate.
//!
//! It is a real (if spartan) harness, not a husk: `cargo bench` runs each
//! registered function with warm-up, multiple timed samples, and prints
//! median time per iteration plus throughput where declared. There are no
//! statistical confidence intervals or plots. Honour the group's
//! `measurement_time`/`sample_size` hints so bench wall-clock stays
//! proportionate to what the authors asked for.
//!
//! # Saved baselines (regression gating)
//!
//! Like real criterion, results can be persisted and compared, so perf
//! claims are gated instead of eyeballed:
//!
//! ```text
//! cargo bench -p dcn-bench --bench micro_substrates -- --save-baseline main
//! # ...hack...
//! cargo bench -p dcn-bench --bench micro_substrates -- --baseline main
//! cargo bench -p dcn-bench --bench micro_substrates -- --baseline main --regression-fail 15
//! ```
//!
//! `--save-baseline NAME` merge-writes each bench's **median and
//! min-of-samples** into `<dir>/NAME.json`; `--baseline NAME` prints the
//! per-bench delta against that file; adding `--regression-fail PCT` exits
//! non-zero when any bench regresses more than `PCT` percent (for CI/perf
//! gates). `<dir>` is `$CRITERION_BASELINE_DIR`, defaulting to
//! `target/criterion-baselines` relative to the bench's working directory.
//!
//! **Noise handling:** the gate compares *min vs min* whenever the
//! baseline carries a min (falling back to median vs median against older
//! baselines). The minimum of N samples is the run's least-perturbed
//! observation — scheduler preemptions and cache pollution only ever add
//! time — so min-gating keeps the generous CI threshold meaningful on
//! noisy shared runners, and is the number to tighten on quiet machines.
//! The median is still recorded and printed for context.
//!
//! The JSON is a flat map without a JSON dependency: `"bench name"` maps
//! to the median (the historical format, so old baselines stay readable),
//! `"bench name::min"` to the min, and `"bench name::samples"` to how many
//! timed samples produced those statistics. Loading a baseline whose
//! `::samples` entry is below 3 is a hard error — a min over one or two
//! samples is a fluke, not a statistic. Baselines predating the key load
//! unchanged.

use std::hint::black_box as std_black_box;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's historical name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Declared per-iteration workload, for throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Identifier `"{name}/{parameter}"`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Identifier with a parameter only (criterion's `from_parameter`).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId { name: name.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { name }
    }
}

/// Passed to bench closures; [`Bencher::iter`] times the payload.
pub struct Bencher<'a> {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    settings: &'a Settings,
}

impl Bencher<'_> {
    /// Times `routine`, collecting the samples configured on the group.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up budget is spent, measuring how long
        // one iteration takes so the sample loop can batch appropriately.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        let mut one_iter = Duration::from_nanos(1);
        while warm_start.elapsed() < self.settings.warm_up_time || warm_iters == 0 {
            std_black_box(routine());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        one_iter = one_iter.max(warm_start.elapsed() / warm_iters.max(1) as u32);

        // Choose a batch size so that sample_size batches fit roughly within
        // the measurement budget.
        let per_sample = self.settings.measurement_time / self.settings.sample_size.max(1) as u32;
        let batch = (per_sample.as_nanos() / one_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64;

        self.iters_per_sample = batch;
        self.samples.clear();
        for _ in 0..self.settings.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                std_black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }

    fn per_iter_ns(&self) -> Vec<f64> {
        self.samples
            .iter()
            .map(|d| d.as_nanos() as f64 / self.iters_per_sample.max(1) as f64)
            .collect()
    }

    fn median_ns(&self) -> f64 {
        let mut per_iter = self.per_iter_ns();
        if per_iter.is_empty() {
            return f64::NAN;
        }
        per_iter.sort_by(|a, b| a.total_cmp(b));
        per_iter[per_iter.len() / 2]
    }

    /// The fastest sample: the least-perturbed observation of the run
    /// (noise from preemption/cache pollution is strictly additive), which
    /// is what the regression gate compares.
    fn min_ns(&self) -> f64 {
        self.per_iter_ns().into_iter().fold(
            f64::NAN,
            |acc, x| if x < acc || acc.is_nan() { x } else { acc },
        )
    }
}

/// One bench's recorded statistics.
#[derive(Clone, Copy, Debug)]
struct Sample {
    median: f64,
    min: f64,
    samples: usize,
}

/// Baseline-JSON key carrying a bench's min (the bare name carries the
/// median, which is also the historical single-value format).
fn min_key(bench: &str) -> String {
    format!("{bench}::min")
}

/// Baseline-JSON key carrying how many timed samples produced a bench's
/// median/min. A min taken over one or two samples is not a statistic —
/// gating against it institutionalizes a fluke — so baselines that carry
/// the key with a value below [`MIN_BASELINE_SAMPLES`] are rejected on
/// load. Baselines from before this key existed pass unchanged.
fn samples_key(bench: &str) -> String {
    format!("{bench}::samples")
}

/// The fewest samples a saved baseline statistic may summarize.
const MIN_BASELINE_SAMPLES: usize = 3;

/// Validates a loaded baseline's sample counts; `Err` names the offender.
fn validate_baseline(map: &std::collections::BTreeMap<String, f64>) -> Result<(), String> {
    for (key, &v) in map {
        if let Some(bench) = key.strip_suffix("::samples") {
            if v < MIN_BASELINE_SAMPLES as f64 {
                return Err(format!(
                    "baseline entry {bench:?} was saved from {v} sample(s); \
                     at least {MIN_BASELINE_SAMPLES} required"
                ));
            }
        }
    }
    Ok(())
}

/// The gate's comparison choice for one bench — the single definition used
/// by both the inline per-bench delta and the final regression gate:
/// min vs min when the baseline recorded a min, otherwise median vs median
/// (pre-min baselines). Returns `(kind, baseline value, current value)`.
fn gate_comparison(
    baseline: &std::collections::BTreeMap<String, f64>,
    bench: &str,
    sample: Sample,
) -> Option<(&'static str, f64, f64)> {
    match baseline.get(&min_key(bench)) {
        Some(&base_min) => Some(("min", base_min, sample.min)),
        None => baseline
            .get(bench)
            .map(|&base| ("median", base, sample.median)),
    }
}

/// Merge-writes `results` (median + min per bench) into the baseline file
/// at `path` — the single save path, called by
/// [`Criterion::final_summary`].
fn save_results(results: &[(String, Sample)], path: &PathBuf) {
    let mut map = read_baseline(path).unwrap_or_default();
    for (bench, sample) in results {
        map.insert(bench.clone(), sample.median);
        map.insert(min_key(bench), sample.min);
        map.insert(samples_key(bench), sample.samples as f64);
    }
    write_baseline(path, &map);
}

#[derive(Clone, Debug)]
struct Settings {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
            throughput: None,
        }
    }
}

/// The harness entry point; one per bench binary.
#[derive(Default)]
pub struct Criterion {
    results: Vec<(String, Sample)>,
    baseline: Option<std::collections::BTreeMap<String, f64>>,
    baseline_name: Option<String>,
    save_baseline: Option<String>,
    regression_fail_pct: Option<f64>,
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            settings: Settings::default(),
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.record(&id.name.clone(), &Settings::default(), f);
        self
    }

    /// CLI configuration: `--save-baseline NAME`, `--baseline NAME`,
    /// `--regression-fail PCT`. Everything else (including the `--bench`
    /// flag cargo passes) is ignored, as before.
    pub fn configure_from_args(mut self) -> Self {
        let args: Vec<String> = std::env::args().collect();
        // A recognized flag whose value is missing (end of args, or another
        // flag where the value should be) is a hard error — a typo'd script
        // must not silently skip saving or gating.
        let value_of = |flag: &str| -> Option<String> {
            let i = args.iter().position(|a| a == flag)?;
            match args.get(i + 1) {
                Some(v) if !v.starts_with("--") => Some(v.clone()),
                _ => {
                    eprintln!("criterion: {flag} requires a value");
                    std::process::exit(2);
                }
            }
        };
        self.save_baseline = value_of("--save-baseline");
        self.baseline_name = value_of("--baseline");
        // A gate that silently skips itself is worse than no gate: malformed
        // flags and missing baselines are hard errors, not warnings.
        self.regression_fail_pct = value_of("--regression-fail").map(|v| match v.parse::<f64>() {
            Ok(pct) if pct.is_finite() && pct >= 0.0 => pct,
            _ => {
                eprintln!(
                    "criterion: --regression-fail expects a non-negative percentage, got {v:?}"
                );
                std::process::exit(2);
            }
        });
        if self.regression_fail_pct.is_some() && self.baseline_name.is_none() {
            eprintln!("criterion: --regression-fail requires --baseline NAME");
            std::process::exit(2);
        }
        if let Some(name) = &self.baseline_name {
            match read_baseline(&baseline_path(name)) {
                Some(map) => {
                    if let Err(e) = validate_baseline(&map) {
                        eprintln!("criterion: {}: {e}", baseline_path(name).display());
                        std::process::exit(2);
                    }
                    self.baseline = Some(map)
                }
                None => {
                    eprintln!(
                        "criterion: baseline {:?} not found; run with --save-baseline {name} first",
                        baseline_path(name)
                    );
                    std::process::exit(2);
                }
            }
        }
        self
    }

    fn record<F: FnMut(&mut Bencher)>(&mut self, name: &str, settings: &Settings, f: F) {
        let sample = run_one(name, settings, f, self.baseline.as_ref());
        self.results.push((name.to_string(), sample));
    }

    /// Persists/compares the collected statistics; called by
    /// [`criterion_group!`] after all targets ran. Exits non-zero when a
    /// `--regression-fail` threshold is exceeded.
    ///
    /// The gate compares **min vs min** when the baseline recorded one
    /// (see the module docs: the minimum is the noise-robust statistic),
    /// falling back to median vs median against pre-min baselines.
    ///
    /// The gate runs *before* the save: a failing run must not overwrite
    /// the baseline with its regressed numbers (which would make the next
    /// run pass vacuously). This also makes single-invocation CI gating
    /// safe: `--baseline X --regression-fail P --save-baseline X`.
    pub fn final_summary(&mut self) {
        if let (Some(threshold), Some(baseline)) = (self.regression_fail_pct, &self.baseline) {
            let mut worst: Option<(&str, f64)> = None;
            for (bench, sample) in &self.results {
                if let Some((_, base, ns)) = gate_comparison(baseline, bench, *sample) {
                    if base > 0.0 && ns.is_finite() {
                        let delta = (ns / base - 1.0) * 100.0;
                        if worst.is_none_or(|(_, w)| delta > w) {
                            worst = Some((bench, delta));
                        }
                    }
                }
            }
            match worst {
                Some((bench, delta)) if delta > threshold => {
                    eprintln!(
                        "criterion: regression gate failed: {bench} is {delta:+.1}% vs baseline \
                         (threshold {threshold}%)"
                    );
                    std::process::exit(1);
                }
                Some((bench, delta)) => println!(
                    "criterion: regression gate passed (worst {bench}: {delta:+.1}%, \
                     threshold {threshold}%)"
                ),
                // Zero overlap means the baseline was saved from different
                // (e.g. since-renamed) benches and the gate would be
                // vacuous. When this run also saves, warn and fall through
                // so the baseline re-seeds itself — exiting here would leave
                // CI permanently gating against a stale cache (a failed job
                // does not update it). Without a save there is no recovery
                // path in this run, so refuse.
                None => {
                    eprintln!(
                        "criterion: regression gate matched no benches against the baseline \
                         (benches renamed?)"
                    );
                    if self.save_baseline.is_none() {
                        eprintln!("criterion: re-save the baseline from this bench target");
                        std::process::exit(1);
                    }
                    eprintln!("criterion: re-seeding the baseline from this run");
                }
            }
        }
        if let Some(name) = &self.save_baseline {
            let path = baseline_path(name);
            save_results(&self.results, &path);
            println!("criterion: saved baseline {name:?} ({})", path.display());
        }
    }
}

/// Where baseline JSON lives: `$CRITERION_BASELINE_DIR` or
/// `target/criterion-baselines` under the current working directory.
fn baseline_path(name: &str) -> PathBuf {
    let dir = std::env::var_os("CRITERION_BASELINE_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target").join("criterion-baselines"));
    dir.join(format!("{name}.json"))
}

fn read_baseline(path: &PathBuf) -> Option<std::collections::BTreeMap<String, f64>> {
    let text = std::fs::read_to_string(path).ok()?;
    Some(parse_baseline(&text))
}

/// Parses the flat `{"name": ns, ...}` map this crate writes. Bench names
/// never contain quotes, so line-wise splitting is exact for our own output.
fn parse_baseline(text: &str) -> std::collections::BTreeMap<String, f64> {
    let mut map = std::collections::BTreeMap::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some(rest) = line.strip_prefix('"') else {
            continue;
        };
        let Some((name, value)) = rest.split_once("\":") else {
            continue;
        };
        if let Ok(ns) = value.trim().parse::<f64>() {
            map.insert(name.to_string(), ns);
        }
    }
    map
}

fn write_baseline(path: &PathBuf, map: &std::collections::BTreeMap<String, f64>) {
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    let mut out = String::from("{\n");
    for (i, (name, ns)) in map.iter().enumerate() {
        out.push_str(&format!("\"{name}\": {ns}"));
        out.push_str(if i + 1 < map.len() { ",\n" } else { "\n" });
    }
    out.push('}');
    if let Err(e) = std::fs::write(path, out) {
        eprintln!(
            "criterion: could not write baseline {}: {e}",
            path.display()
        );
    }
}

/// A group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    settings: Settings,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up budget.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.settings.warm_up_time = d;
        self
    }

    /// Sets the total measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement_time = d;
        self
    }

    /// Declares per-iteration throughput for reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.settings.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.name);
        let settings = self.settings.clone();
        self.criterion.record(&full, &settings, f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (report flushing is per-bench here, so this is a no-op).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    name: &str,
    settings: &Settings,
    mut f: F,
    baseline: Option<&std::collections::BTreeMap<String, f64>>,
) -> Sample {
    let mut bencher = Bencher {
        samples: Vec::new(),
        iters_per_sample: 1,
        settings,
    };
    f(&mut bencher);
    let ns = bencher.median_ns();
    let min = bencher.min_ns();
    let mut line = format!("bench: {name:<50} {}", format_time(ns));
    if let Some(tp) = settings.throughput {
        let (count, unit) = match tp {
            Throughput::Elements(n) => (n, "elem/s"),
            Throughput::Bytes(n) => (n, "B/s"),
        };
        if ns.is_finite() && ns > 0.0 {
            let rate = count as f64 / (ns * 1e-9);
            line.push_str(&format!("   {} {unit}", format_rate(rate)));
        }
    }
    if min.is_finite() {
        line.push_str(&format!("   min {}", format_time(min).trim_start()));
    }
    // The inline delta is exactly what the gate will compare.
    let sample = Sample {
        median: ns,
        min,
        samples: bencher.samples.len(),
    };
    if let Some((kind, base, cur)) = baseline.and_then(|b| gate_comparison(b, name, sample)) {
        if base > 0.0 && cur.is_finite() {
            line.push_str(&format!(
                "   [baseline {kind} {} {:+.1}%]",
                format_time(base).trim_start(),
                (cur / base - 1.0) * 100.0
            ));
        }
    }
    println!("{line}");
    sample
}

fn format_time(ns: f64) -> String {
    if !ns.is_finite() {
        return "  (no samples)".into();
    }
    if ns < 1_000.0 {
        format!("{ns:>10.1} ns/iter")
    } else if ns < 1_000_000.0 {
        format!("{:>10.2} µs/iter", ns / 1e3)
    } else if ns < 1_000_000_000.0 {
        format!("{:>10.2} ms/iter", ns / 1e6)
    } else {
        format!("{:>10.2}  s/iter", ns / 1e9)
    }
}

fn format_rate(rate: f64) -> String {
    if rate >= 1e9 {
        format!("{:.2}G", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.2}M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.2}k", rate / 1e3)
    } else {
        format!("{rate:.0}")
    }
}

/// Declares a bench entry point: `criterion_group!(name, fn_a, fn_b)`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

/// Declares `main()` running the given [`criterion_group!`]s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let settings = Settings {
            sample_size: 5,
            warm_up_time: Duration::from_millis(1),
            measurement_time: Duration::from_millis(5),
            throughput: None,
        };
        let mut b = Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            settings: &settings,
        };
        let mut count = 0u64;
        b.iter(|| {
            count += 1;
            black_box(count)
        });
        assert_eq!(b.samples.len(), 5);
        assert!(b.median_ns().is_finite());
        assert!(count > 5);
    }

    #[test]
    fn baseline_json_round_trips() {
        let mut map = std::collections::BTreeMap::new();
        map.insert("group/alpha".to_string(), 123.5);
        map.insert("group/beta sampler".to_string(), 0.75);
        map.insert("solo".to_string(), 9e6);
        let dir =
            std::env::temp_dir().join(format!("criterion-baseline-test-{}", std::process::id()));
        let path = dir.join("main.json");
        write_baseline(&path, &map);
        let back = read_baseline(&path).expect("baseline readable");
        assert_eq!(back, map);
        // Merge semantics: writing an updated map overwrites entries.
        let mut updated = back.clone();
        updated.insert("group/alpha".to_string(), 100.0);
        write_baseline(&path, &updated);
        assert_eq!(
            read_baseline(&path).unwrap()["group/alpha"],
            100.0,
            "updated entry persists"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parse_baseline_skips_garbage_lines() {
        let text = "{\n\"a\": 1.5,\n\"b\": nonsense,\nnot json\n\"c\": 2\n}";
        let map = parse_baseline(text);
        assert_eq!(map.len(), 2);
        assert_eq!(map["a"], 1.5);
        assert_eq!(map["c"], 2.0);
    }

    #[test]
    fn results_are_recorded_per_criterion() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("rec");
        group
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        group.bench_function("one", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
        c.bench_function("two", |b| b.iter(|| black_box(2 + 2)));
        let names: Vec<&str> = c.results.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["rec/one", "two"]);
        assert!(c
            .results
            .iter()
            .all(|(_, s)| s.median.is_finite() && s.min.is_finite() && s.min <= s.median));
        // No save/compare flags set: final_summary is a no-op.
        c.final_summary();
    }

    #[test]
    fn saved_baselines_carry_median_and_min() {
        // Drives the real save path (the function final_summary calls)
        // against an explicit file — no process-global env mutation.
        let dir = std::env::temp_dir().join(format!(
            "criterion-minmax-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let path = dir.join("minmax.json");
        let results = vec![
            (
                "g/point".to_string(),
                Sample {
                    median: 120.0,
                    min: 100.0,
                    samples: 10,
                },
            ),
            (
                "solo".to_string(),
                Sample {
                    median: 3.5,
                    min: 3.25,
                    samples: 5,
                },
            ),
        ];
        save_results(&results, &path);
        let map = read_baseline(&path).expect("baseline written");
        assert_eq!(map["g/point"], 120.0);
        assert_eq!(map["g/point::min"], 100.0);
        assert_eq!(map["g/point::samples"], 10.0);
        assert_eq!(map["solo"], 3.5);
        assert_eq!(map["solo::min"], 3.25);
        assert_eq!(map["solo::samples"], 5.0);
        // Merge semantics: a second save updates, never truncates.
        save_results(
            &[(
                "g/point".to_string(),
                Sample {
                    median: 110.0,
                    min: 95.0,
                    samples: 10,
                },
            )],
            &path,
        );
        let map = read_baseline(&path).expect("baseline re-read");
        assert_eq!(map["g/point::min"], 95.0);
        assert_eq!(map["solo::min"], 3.25, "other benches survive the merge");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gate_prefers_min_and_falls_back_to_median() {
        // Exercises the actual comparison function the gate and the inline
        // delta both call.
        let mut baseline = std::collections::BTreeMap::new();
        baseline.insert("x".to_string(), 100.0);
        baseline.insert(min_key("x"), 90.0);
        let sample = Sample {
            median: 500.0, // noisy median, 5x the baseline median
            min: 91.0,     // min within ~1% of the baseline min
            samples: 10,
        };
        // Baseline with a min entry: min vs min, so a fast min passes even
        // when the median regresses.
        let (kind, base, cur) = gate_comparison(&baseline, "x", sample).expect("overlap");
        assert_eq!(kind, "min");
        assert!(
            (cur / base - 1.0) * 100.0 < 2.0,
            "min-gating must ignore the noisy median"
        );
        // Pre-min baseline (median only): fall back to median vs median.
        baseline.remove(&min_key("x"));
        let (kind, base, cur) = gate_comparison(&baseline, "x", sample).expect("overlap");
        assert_eq!(kind, "median");
        assert!(
            (cur / base - 1.0) * 100.0 > 300.0,
            "median fallback compares medians"
        );
        // No overlap at all: nothing to gate.
        assert!(gate_comparison(&baseline, "absent", sample).is_none());
    }

    #[test]
    fn baselines_with_too_few_samples_are_rejected() {
        let mut map = std::collections::BTreeMap::new();
        map.insert("x".to_string(), 100.0);
        map.insert(min_key("x"), 90.0);
        // No ::samples key (a pre-samples baseline): valid.
        assert!(validate_baseline(&map).is_ok());
        map.insert(samples_key("x"), 10.0);
        assert!(validate_baseline(&map).is_ok());
        map.insert(samples_key("x"), 2.0);
        let err = validate_baseline(&map).unwrap_err();
        assert!(
            err.contains("\"x\"") && err.contains("2 sample(s)"),
            "{err}"
        );
        map.insert(samples_key("x"), MIN_BASELINE_SAMPLES as f64);
        assert!(validate_baseline(&map).is_ok(), "the floor itself passes");
    }

    #[test]
    fn group_pipeline_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(3))
            .throughput(Throughput::Elements(10));
        group.bench_function("trivial", |b| b.iter(|| black_box(2 + 2)));
        group.bench_with_input(BenchmarkId::new("param", 4), &4u64, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
    }
}

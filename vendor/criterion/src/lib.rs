//! Vendored, dependency-free stand-in for the slice of `criterion` this
//! workspace's benches use. The build environment has no registry access, so
//! the workspace pins `criterion` to this local path crate.
//!
//! It is a real (if spartan) harness, not a husk: `cargo bench` runs each
//! registered function with warm-up, multiple timed samples, and prints
//! median time per iteration plus throughput where declared. There are no
//! statistical confidence intervals, plots, or saved baselines. Honour the
//! group's `measurement_time`/`sample_size` hints so bench wall-clock stays
//! proportionate to what the authors asked for.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's historical name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Declared per-iteration workload, for throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Identifier `"{name}/{parameter}"`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Identifier with a parameter only (criterion's `from_parameter`).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId { name: name.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { name }
    }
}

/// Passed to bench closures; [`Bencher::iter`] times the payload.
pub struct Bencher<'a> {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    settings: &'a Settings,
}

impl Bencher<'_> {
    /// Times `routine`, collecting the samples configured on the group.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up budget is spent, measuring how long
        // one iteration takes so the sample loop can batch appropriately.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        let mut one_iter = Duration::from_nanos(1);
        while warm_start.elapsed() < self.settings.warm_up_time || warm_iters == 0 {
            std_black_box(routine());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        one_iter = one_iter.max(warm_start.elapsed() / warm_iters.max(1) as u32);

        // Choose a batch size so that sample_size batches fit roughly within
        // the measurement budget.
        let per_sample = self.settings.measurement_time / self.settings.sample_size.max(1) as u32;
        let batch = (per_sample.as_nanos() / one_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64;

        self.iters_per_sample = batch;
        self.samples.clear();
        for _ in 0..self.settings.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                std_black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }

    fn median_ns(&self) -> f64 {
        if self.samples.is_empty() {
            return f64::NAN;
        }
        let mut per_iter: Vec<f64> = self
            .samples
            .iter()
            .map(|d| d.as_nanos() as f64 / self.iters_per_sample.max(1) as f64)
            .collect();
        per_iter.sort_by(|a, b| a.total_cmp(b));
        per_iter[per_iter.len() / 2]
    }
}

#[derive(Clone, Debug)]
struct Settings {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
            throughput: None,
        }
    }
}

/// The harness entry point; one per bench binary.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            settings: Settings::default(),
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&id.name, &Settings::default(), f);
        self
    }

    /// CLI configuration hook; accepted and ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// A group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    settings: Settings,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up budget.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.settings.warm_up_time = d;
        self
    }

    /// Sets the total measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement_time = d;
        self
    }

    /// Declares per-iteration throughput for reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.settings.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.name);
        run_one(&full, &self.settings, f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (report flushing is per-bench here, so this is a no-op).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, settings: &Settings, mut f: F) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        iters_per_sample: 1,
        settings,
    };
    f(&mut bencher);
    let ns = bencher.median_ns();
    let mut line = format!("bench: {name:<50} {}", format_time(ns));
    if let Some(tp) = settings.throughput {
        let (count, unit) = match tp {
            Throughput::Elements(n) => (n, "elem/s"),
            Throughput::Bytes(n) => (n, "B/s"),
        };
        if ns.is_finite() && ns > 0.0 {
            let rate = count as f64 / (ns * 1e-9);
            line.push_str(&format!("   {} {unit}", format_rate(rate)));
        }
    }
    println!("{line}");
}

fn format_time(ns: f64) -> String {
    if !ns.is_finite() {
        return "  (no samples)".into();
    }
    if ns < 1_000.0 {
        format!("{ns:>10.1} ns/iter")
    } else if ns < 1_000_000.0 {
        format!("{:>10.2} µs/iter", ns / 1e3)
    } else if ns < 1_000_000_000.0 {
        format!("{:>10.2} ms/iter", ns / 1e6)
    } else {
        format!("{:>10.2}  s/iter", ns / 1e9)
    }
}

fn format_rate(rate: f64) -> String {
    if rate >= 1e9 {
        format!("{:.2}G", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.2}M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.2}k", rate / 1e3)
    } else {
        format!("{rate:.0}")
    }
}

/// Declares a bench entry point: `criterion_group!(name, fn_a, fn_b)`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main()` running the given [`criterion_group!`]s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let settings = Settings {
            sample_size: 5,
            warm_up_time: Duration::from_millis(1),
            measurement_time: Duration::from_millis(5),
            throughput: None,
        };
        let mut b = Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            settings: &settings,
        };
        let mut count = 0u64;
        b.iter(|| {
            count += 1;
            black_box(count)
        });
        assert_eq!(b.samples.len(), 5);
        assert!(b.median_ns().is_finite());
        assert!(count > 5);
    }

    #[test]
    fn group_pipeline_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(3))
            .throughput(Throughput::Elements(10));
        group.bench_function("trivial", |b| b.iter(|| black_box(2 + 2)));
        group.bench_with_input(BenchmarkId::new("param", 4), &4u64, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
    }
}

//! Vendored, dependency-free stand-in for the serialization half of `serde`.
//!
//! The build environment has no registry access, so the workspace pins
//! `serde` to this local path crate. It provides the [`ser`] contract that
//! `dcn-util`'s JSON emitter implements and that `dcn-core`'s report types
//! derive against, plus `#[derive(Serialize)]` re-exported from the sibling
//! `serde_derive` proc-macro crate. Deserialization is intentionally absent:
//! the workspace is write-only (reports out, nothing parsed back in).

pub mod ser;

pub use ser::{Serialize, Serializer};
pub use serde_derive::Serialize;

//! The serialization contract: [`Serialize`], [`Serializer`], the compound
//! sub-serializer traits, and [`Serialize`] impls for the std types the
//! workspace's report structs contain.
//!
//! The trait surface mirrors `serde::ser` 1.x closely enough that the JSON
//! emitter in `dcn-util` is written exactly as it would be against real
//! serde; methods real serde defaults (e.g. `serialize_i128`,
//! `collect_seq`) are simply omitted rather than defaulted.

use std::fmt::Display;

/// Error contract for serializers: constructible from a custom message.
pub trait Error: Sized + std::error::Error {
    /// Builds an error carrying `msg`.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A data structure that can be serialized through any [`Serializer`].
pub trait Serialize {
    /// Feeds `self` into `serializer`.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A data format that can receive any [`Serialize`] value.
pub trait Serializer: Sized {
    /// Output on success (commonly `()` for writers).
    type Ok;
    /// Error type.
    type Error: Error;
    /// Sub-serializer for sequences.
    type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
    /// Sub-serializer for tuples.
    type SerializeTuple: SerializeTuple<Ok = Self::Ok, Error = Self::Error>;
    /// Sub-serializer for tuple structs.
    type SerializeTupleStruct: SerializeTupleStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Sub-serializer for tuple enum variants.
    type SerializeTupleVariant: SerializeTupleVariant<Ok = Self::Ok, Error = Self::Error>;
    /// Sub-serializer for maps.
    type SerializeMap: SerializeMap<Ok = Self::Ok, Error = Self::Error>;
    /// Sub-serializer for structs.
    type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Sub-serializer for struct enum variants.
    type SerializeStructVariant: SerializeStructVariant<Ok = Self::Ok, Error = Self::Error>;

    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    fn serialize_i8(self, v: i8) -> Result<Self::Ok, Self::Error>;
    fn serialize_i16(self, v: i16) -> Result<Self::Ok, Self::Error>;
    fn serialize_i32(self, v: i32) -> Result<Self::Ok, Self::Error>;
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    fn serialize_u8(self, v: u8) -> Result<Self::Ok, Self::Error>;
    fn serialize_u16(self, v: u16) -> Result<Self::Ok, Self::Error>;
    fn serialize_u32(self, v: u32) -> Result<Self::Ok, Self::Error>;
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    fn serialize_f32(self, v: f32) -> Result<Self::Ok, Self::Error>;
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    fn serialize_char(self, v: char) -> Result<Self::Ok, Self::Error>;
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    fn serialize_bytes(self, v: &[u8]) -> Result<Self::Ok, Self::Error>;
    fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
    fn serialize_some<T: ?Sized + Serialize>(self, value: &T) -> Result<Self::Ok, Self::Error>;
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
    fn serialize_unit_struct(self, name: &'static str) -> Result<Self::Ok, Self::Error>;
    fn serialize_unit_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
    ) -> Result<Self::Ok, Self::Error>;
    fn serialize_newtype_struct<T: ?Sized + Serialize>(
        self,
        name: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    fn serialize_newtype_variant<T: ?Sized + Serialize>(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
    fn serialize_tuple(self, len: usize) -> Result<Self::SerializeTuple, Self::Error>;
    fn serialize_tuple_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleStruct, Self::Error>;
    fn serialize_tuple_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleVariant, Self::Error>;
    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap, Self::Error>;
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;
    fn serialize_struct_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStructVariant, Self::Error>;
}

/// Sequence sub-serializer.
pub trait SerializeSeq {
    /// See [`Serializer::Ok`].
    type Ok;
    /// See [`Serializer::Error`].
    type Error: Error;
    /// Serializes one element.
    fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Closes the sequence.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Tuple sub-serializer.
pub trait SerializeTuple {
    /// See [`Serializer::Ok`].
    type Ok;
    /// See [`Serializer::Error`].
    type Error: Error;
    /// Serializes one element.
    fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Closes the tuple.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Tuple-struct sub-serializer.
pub trait SerializeTupleStruct {
    /// See [`Serializer::Ok`].
    type Ok;
    /// See [`Serializer::Error`].
    type Error: Error;
    /// Serializes one field.
    fn serialize_field<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Closes the tuple struct.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Tuple-variant sub-serializer.
pub trait SerializeTupleVariant {
    /// See [`Serializer::Ok`].
    type Ok;
    /// See [`Serializer::Error`].
    type Error: Error;
    /// Serializes one field.
    fn serialize_field<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Closes the variant.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Map sub-serializer.
pub trait SerializeMap {
    /// See [`Serializer::Ok`].
    type Ok;
    /// See [`Serializer::Error`].
    type Error: Error;
    /// Serializes one key.
    fn serialize_key<T: ?Sized + Serialize>(&mut self, key: &T) -> Result<(), Self::Error>;
    /// Serializes one value.
    fn serialize_value<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Closes the map.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Struct sub-serializer.
pub trait SerializeStruct {
    /// See [`Serializer::Ok`].
    type Ok;
    /// See [`Serializer::Error`].
    type Error: Error;
    /// Serializes one named field.
    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    /// Closes the struct.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Struct-variant sub-serializer.
pub trait SerializeStructVariant {
    /// See [`Serializer::Ok`].
    type Ok;
    /// See [`Serializer::Error`].
    type Error: Error;
    /// Serializes one named field.
    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    /// Closes the variant.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

// ---------------------------------------------------------------------------
// Serialize impls for std types.
// ---------------------------------------------------------------------------

macro_rules! primitive_impl {
    ($($t:ty => $method:ident as $cast:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.$method(*self as $cast)
            }
        }
    )*};
}

primitive_impl! {
    bool => serialize_bool as bool,
    i8 => serialize_i8 as i8,
    i16 => serialize_i16 as i16,
    i32 => serialize_i32 as i32,
    i64 => serialize_i64 as i64,
    isize => serialize_i64 as i64,
    u8 => serialize_u8 as u8,
    u16 => serialize_u16 as u16,
    u32 => serialize_u32 as u32,
    u64 => serialize_u64 as u64,
    usize => serialize_u64 as u64,
    f32 => serialize_f32 as f32,
    f64 => serialize_f64 as f64,
    char => serialize_char as char,
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for &mut T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for std::rc::Rc<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => serializer.serialize_some(v),
            None => serializer.serialize_none(),
        }
    }
}

fn serialize_iter<S, I>(serializer: S, iter: I, len: usize) -> Result<S::Ok, S::Error>
where
    S: Serializer,
    I: IntoIterator,
    I::Item: Serialize,
{
    let mut seq = serializer.serialize_seq(Some(len))?;
    for item in iter {
        seq.serialize_element(&item)?;
    }
    seq.end()
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.iter(), self.len())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.iter(), N)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.iter(), self.len())
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.iter(), self.len())
    }
}

impl<T: Serialize, St> Serialize for std::collections::HashSet<T, St> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.iter(), self.len())
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.iter(), self.len())
    }
}

macro_rules! map_impl {
    ($ty:ident <K $(: $kb:ident)?, V $(, $st:ident)?>) => {
        impl<K: Serialize $(+ $kb)?, V: Serialize $(, $st)?> Serialize
            for std::collections::$ty<K, V $(, $st)?>
        {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let mut map = serializer.serialize_map(Some(self.len()))?;
                for (k, v) in self {
                    map.serialize_key(k)?;
                    map.serialize_value(v)?;
                }
                map.end()
            }
        }
    };
}

map_impl!(BTreeMap<K: Ord, V>);
map_impl!(HashMap<K, V, St>);

macro_rules! tuple_impl {
    ($($len:expr => ($($n:tt $t:ident)+))+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let mut tup = serializer.serialize_tuple($len)?;
                $(tup.serialize_element(&self.$n)?;)+
                tup.end()
            }
        }
    )+};
}

tuple_impl! {
    1 => (0 A)
    2 => (0 A 1 B)
    3 => (0 A 1 B 2 C)
    4 => (0 A 1 B 2 C 3 D)
    5 => (0 A 1 B 2 C 3 D 4 E)
    6 => (0 A 1 B 2 C 3 D 4 E 5 F)
}

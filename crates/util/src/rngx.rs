//! Seed derivation for reproducible experiment sweeps.
//!
//! Every run in a sweep needs an independent RNG stream that is nevertheless
//! a pure function of `(base_seed, run_index)` so that re-running a sweep —
//! sequentially or in parallel, in any order — reproduces identical results.
//! SplitMix64 is the standard generator for this purpose.

/// One step of the SplitMix64 generator; advances `state` and returns the output.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seeded Fisher–Yates shuffle: `len - 1` draws of `random_range(0..=i)`
/// for `i = len-1, …, 1`, swapping as it goes.
///
/// Every seeded generator in the workspace permutes with exactly this draw
/// order, and seeded streams are pinned byte-identical across refactors —
/// so there is one definition, here, instead of per-crate copies that
/// could silently diverge.
pub fn shuffle<T>(v: &mut [T], rng: &mut rand::rngs::SmallRng) {
    use rand::RngExt;
    for i in (1..v.len()).rev() {
        let j = rng.random_range(0..=i);
        v.swap(i, j);
    }
}

/// Derives an independent sub-seed from a base seed and a stream index.
///
/// Distinct `(base, stream)` pairs give (with overwhelming probability)
/// distinct, decorrelated seeds; identical pairs always give the same seed.
#[inline]
pub fn derive_seed(base: u64, stream: u64) -> u64 {
    let mut state = base ^ stream.wrapping_mul(0xA076_1D64_78BD_642F);
    // A couple of mixing rounds so that low-entropy (base, stream) pairs
    // (e.g. 0, 1, 2, ...) still produce well-spread seeds.
    let a = splitmix64(&mut state);
    let b = splitmix64(&mut state);
    a ^ b.rotate_left(17)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn deterministic() {
        assert_eq!(derive_seed(42, 7), derive_seed(42, 7));
        let mut s1 = 9u64;
        let mut s2 = 9u64;
        assert_eq!(splitmix64(&mut s1), splitmix64(&mut s2));
    }

    #[test]
    fn streams_distinct() {
        let mut seen = HashSet::new();
        for base in 0..20u64 {
            for stream in 0..200u64 {
                assert!(
                    seen.insert(derive_seed(base, stream)),
                    "collision at {base}/{stream}"
                );
            }
        }
    }

    #[test]
    fn splitmix_known_sequence_is_nontrivial() {
        let mut state = 0u64;
        let first = splitmix64(&mut state);
        let second = splitmix64(&mut state);
        assert_ne!(first, second);
        assert_ne!(first, 0);
    }
}

//! A set with O(1) insert / remove / contains **and O(1) uniform sampling**.
//!
//! The randomized marking algorithm evicts a *uniformly random unmarked*
//! cache entry on every fault. A plain `HashSet` cannot sample uniformly in
//! O(1); this structure keeps elements in a dense `Vec` (supporting
//! `swap_remove`) plus a hash index from element to its slot.

use crate::fxhash::FxHashMap;
use rand::{Rng, RngExt};
use std::hash::Hash;

/// Dense set with O(1) insert, remove, membership and uniform random sampling.
///
/// Elements must be `Copy` (they are stored both in the dense vector and as
/// hash keys); in this workspace they are node ids or packed node pairs.
#[derive(Clone, Debug, Default)]
pub struct IndexedSet<T: Copy + Eq + Hash> {
    items: Vec<T>,
    index: FxHashMap<T, usize>,
}

impl<T: Copy + Eq + Hash> IndexedSet<T> {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self {
            items: Vec::new(),
            index: FxHashMap::default(),
        }
    }

    /// Creates an empty set with capacity for `cap` elements.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            items: Vec::with_capacity(cap),
            index: FxHashMap::with_capacity_and_hasher(cap, Default::default()),
        }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, value: &T) -> bool {
        self.index.contains_key(value)
    }

    /// Inserts `value`; returns `true` if it was not present.
    #[inline]
    pub fn insert(&mut self, value: T) -> bool {
        if self.index.contains_key(&value) {
            return false;
        }
        self.index.insert(value, self.items.len());
        self.items.push(value);
        true
    }

    /// Removes `value`; returns `true` if it was present.
    ///
    /// Uses `swap_remove`, so iteration order is not stable across removals —
    /// irrelevant for set semantics and required for O(1).
    #[inline]
    pub fn remove(&mut self, value: &T) -> bool {
        match self.index.remove(value) {
            None => false,
            Some(slot) => {
                let last = self.items.len() - 1;
                self.items.swap_remove(slot);
                if slot != last {
                    let moved = self.items[slot];
                    self.index.insert(moved, slot);
                }
                true
            }
        }
    }

    /// Returns a uniformly random element, or `None` if empty.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<T> {
        if self.items.is_empty() {
            None
        } else {
            Some(self.items[rng.random_range(0..self.items.len())])
        }
    }

    /// Removes and returns a uniformly random element, or `None` if empty.
    #[inline]
    pub fn sample_remove<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<T> {
        if self.items.is_empty() {
            return None;
        }
        let slot = rng.random_range(0..self.items.len());
        let value = self.items[slot];
        let last = self.items.len() - 1;
        self.index.remove(&value);
        self.items.swap_remove(slot);
        if slot != last {
            let moved = self.items[slot];
            self.index.insert(moved, slot);
        }
        Some(value)
    }

    /// Iterates over the elements in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = &T> + '_ {
        self.items.iter()
    }

    /// Removes all elements, keeping allocations.
    pub fn clear(&mut self) {
        self.items.clear();
        self.index.clear();
    }

    /// Drains all elements into a vector (unspecified order), leaving the set empty.
    pub fn drain_to_vec(&mut self) -> Vec<T> {
        self.index.clear();
        std::mem::take(&mut self.items)
    }

    /// Read-only view of the dense storage (unspecified order).
    pub fn as_slice(&self) -> &[T] {
        &self.items
    }
}

impl<T: Copy + Eq + Hash> FromIterator<T> for IndexedSet<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut set = Self::new();
        for item in iter {
            set.insert(item);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn insert_remove_contains() {
        let mut s = IndexedSet::new();
        assert!(s.insert(3u32));
        assert!(s.insert(7));
        assert!(!s.insert(3));
        assert_eq!(s.len(), 2);
        assert!(s.contains(&3));
        assert!(s.remove(&3));
        assert!(!s.remove(&3));
        assert!(!s.contains(&3));
        assert!(s.contains(&7));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn swap_remove_keeps_index_consistent() {
        let mut s: IndexedSet<u32> = (0..100).collect();
        // Remove from the middle repeatedly; every member must stay reachable.
        for v in (0..100).step_by(3) {
            assert!(s.remove(&v));
        }
        for v in 0..100u32 {
            assert_eq!(s.contains(&v), v % 3 != 0);
            if v % 3 != 0 {
                assert!(s.remove(&v));
            }
        }
        assert!(s.is_empty());
    }

    #[test]
    fn sampling_is_roughly_uniform() {
        let s: IndexedSet<u32> = (0..10).collect();
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 10];
        const N: usize = 100_000;
        for _ in 0..N {
            counts[s.sample(&mut rng).unwrap() as usize] += 1;
        }
        let expected = N as f64 / 10.0;
        for &c in &counts {
            // 5-sigma-ish band for binomial(N, 1/10).
            assert!(
                (c as f64 - expected).abs() < 5.0 * (expected * 0.9).sqrt(),
                "count {c}"
            );
        }
    }

    #[test]
    fn sample_remove_empties_exactly() {
        let mut s: IndexedSet<u32> = (0..50).collect();
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = std::collections::HashSet::new();
        while let Some(v) = s.sample_remove(&mut rng) {
            assert!(seen.insert(v), "duplicate sample_remove of {v}");
        }
        assert_eq!(seen.len(), 50);
        assert!(s.sample(&mut rng).is_none());
    }

    #[test]
    fn drain_and_clear() {
        let mut s: IndexedSet<u32> = (0..10).collect();
        let drained = s.drain_to_vec();
        assert_eq!(drained.len(), 10);
        assert!(s.is_empty());
        let mut s: IndexedSet<u32> = (0..10).collect();
        s.clear();
        assert!(s.is_empty());
        assert!(!s.contains(&5));
    }
}

//! Streaming and batch statistics used by trace analysis and experiments.

/// Zipf weights `w_i = 1/(i+1)^s` for ranks `0..n`.
///
/// `s = 0` is uniform; real rack popularity distributions are commonly
/// fitted with `s ∈ [0.8, 1.6]`. Shared by the trace generators and the
/// demand-matrix constructors (one definition, so the two layers cannot
/// drift apart).
pub fn zipf_weights(n: usize, s: f64) -> Vec<f64> {
    assert!(n > 0 && s >= 0.0);
    (0..n).map(|i| 1.0 / ((i + 1) as f64).powf(s)).collect()
}

/// Streaming mean/variance accumulator (Welford's algorithm).
#[derive(Clone, Copy, Debug, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds an observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 if fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample standard deviation (0 if fewer than 2 observations).
    pub fn stddev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }

    /// Minimum observation (NaN if empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Maximum observation (NaN if empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Summary of a batch of samples.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub stddev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

/// Summarizes a slice of samples; returns zeros for an empty slice.
pub fn summarize(samples: &[f64]) -> Summary {
    if samples.is_empty() {
        return Summary {
            count: 0,
            mean: 0.0,
            stddev: 0.0,
            min: 0.0,
            max: 0.0,
        };
    }
    let mut acc = OnlineStats::new();
    for &x in samples {
        acc.push(x);
    }
    Summary {
        count: samples.len(),
        mean: acc.mean(),
        stddev: acc.stddev(),
        min: acc.min(),
        max: acc.max(),
    }
}

/// Linear-interpolated percentile `p` in `\[0, 100\]` of `samples`.
///
/// Returns NaN on an empty slice. Sorts a copy: O(n log n).
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    if samples.is_empty() {
        return f64::NAN;
    }
    let mut v: Vec<f64> = samples.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in percentile input"));
    let rank = (p.clamp(0.0, 100.0) / 100.0) * (v.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let frac = rank - lo as f64;
        v[lo] * (1.0 - frac) + v[hi] * frac
    }
}

/// Gini coefficient of non-negative weights: 0 = perfectly uniform,
/// → 1 = maximally skewed. Used to quantify spatial skew of traffic matrices.
pub fn gini(weights: &[f64]) -> f64 {
    let n = weights.len();
    if n == 0 {
        return 0.0;
    }
    let mut v: Vec<f64> = weights.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in gini input"));
    let total: f64 = v.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    // Gini = (2 * sum_i i*x_(i) ) / (n * total) - (n + 1) / n, with 1-based i.
    let weighted: f64 = v.iter().enumerate().map(|(i, x)| (i + 1) as f64 * x).sum();
    (2.0 * weighted) / (n as f64 * total) - (n as f64 + 1.0) / n as f64
}

/// Ordinary least squares fit `y ≈ slope * x + intercept`.
///
/// Returns `(slope, intercept, r²)`. Panics if fewer than 2 points or if all
/// x are identical. Used to test growth shapes (linear vs logarithmic) in the
/// lower-bound experiment.
pub fn linear_regression(xs: &[f64], ys: &[f64]) -> (f64, f64, f64) {
    assert_eq!(xs.len(), ys.len(), "x/y length mismatch");
    assert!(xs.len() >= 2, "need at least two points");
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        sxx += (x - mx) * (x - mx);
        sxy += (x - mx) * (y - my);
        syy += (y - my) * (y - my);
    }
    assert!(sxx > 0.0, "degenerate x values");
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let r2 = if syy == 0.0 {
        1.0
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    (slope, intercept, r2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basic() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn merge_matches_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i * i % 37) as f64).collect();
        let mut whole = OnlineStats::new();
        for &x in &data {
            whole.push(x);
        }
        let (a, b) = data.split_at(33);
        let mut s1 = OnlineStats::new();
        let mut s2 = OnlineStats::new();
        a.iter().for_each(|&x| s1.push(x));
        b.iter().for_each(|&x| s2.push(x));
        s1.merge(&s2);
        assert_eq!(s1.count(), whole.count());
        assert!((s1.mean() - whole.mean()).abs() < 1e-9);
        assert!((s1.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 100.0), 4.0);
        assert!((percentile(&v, 50.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn gini_extremes() {
        assert!(gini(&[1.0, 1.0, 1.0, 1.0]).abs() < 1e-12);
        let skewed = gini(&[0.0, 0.0, 0.0, 100.0]);
        assert!(skewed > 0.7, "skewed gini was {skewed}");
        assert!(gini(&[]) == 0.0);
    }

    #[test]
    fn regression_recovers_line() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x - 2.0).collect();
        let (slope, intercept, r2) = linear_regression(&xs, &ys);
        assert!((slope - 3.0).abs() < 1e-9);
        assert!((intercept + 2.0).abs() < 1e-9);
        assert!((r2 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn summarize_empty() {
        let s = summarize(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
    }
}

//! Crash-safe filesystem primitives for artifact and journal writes.
//!
//! Two building blocks the fault-tolerance layer rests on:
//!
//! * [`write_atomic`] — write-then-rename so readers (and a process killed
//!   mid-write) only ever observe the old complete file or the new complete
//!   file, never a torn prefix.
//! * [`FileLock`] — an advisory create-new lock file so concurrent
//!   processes (e.g. two CI runs appending to `BENCH_LEDGER.json`)
//!   serialize their read-modify-write cycles.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Writes `contents` to `path` atomically: the bytes land in a sibling
/// temporary file first and are renamed over `path` only once fully
/// flushed. On the same filesystem, rename is atomic — a crash between
/// the two steps leaves the previous version of `path` intact.
pub fn write_atomic(path: &Path, contents: &[u8]) -> io::Result<()> {
    let tmp = sibling_tmp(path);
    fs::write(&tmp, contents)?;
    match fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = fs::remove_file(&tmp);
            Err(e)
        }
    }
}

fn sibling_tmp(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "file".to_string());
    name.push_str(&format!(".tmp.{}", std::process::id()));
    path.with_file_name(name)
}

/// An advisory lock over a target file, held as long as the guard lives.
///
/// Acquisition creates `<target>.lock` with `create_new` (an atomic
/// exists-check-and-create on every real filesystem) and retries until
/// `wait` elapses. Dropping the guard removes the lock file, including
/// during unwinding, so a panicking critical section releases the lock.
/// A lock file orphaned by a SIGKILL must be removed by hand — the error
/// message names it.
#[derive(Debug)]
pub struct FileLock {
    lock_path: PathBuf,
}

impl FileLock {
    /// Acquires the advisory lock for `target`, waiting up to `wait`.
    pub fn acquire(target: &Path, wait: Duration) -> Result<FileLock, String> {
        let lock_path = Self::lock_path_for(target);
        let start = Instant::now();
        loop {
            match fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&lock_path)
            {
                Ok(file) => {
                    // Record the holder for post-mortem diagnosis of
                    // orphaned locks; failure to write the pid is harmless.
                    use io::Write;
                    let mut file = file;
                    let _ = writeln!(file, "{}", std::process::id());
                    return Ok(FileLock { lock_path });
                }
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    if start.elapsed() >= wait {
                        let holder = fs::read_to_string(&lock_path)
                            .map(|s| s.trim().to_string())
                            .unwrap_or_else(|_| "unknown".to_string());
                        return Err(format!(
                            "could not lock {} within {:.1}s: {} is held by pid {holder} \
                             (remove the lock file if that process is dead)",
                            target.display(),
                            wait.as_secs_f64(),
                            lock_path.display(),
                        ));
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => {
                    return Err(format!(
                        "could not create lock file {}: {e}",
                        lock_path.display()
                    ))
                }
            }
        }
    }

    /// The lock file path guarding `target`: `<target>.lock`.
    pub fn lock_path_for(target: &Path) -> PathBuf {
        let mut name = target
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| "file".to_string());
        name.push_str(".lock");
        target.with_file_name(name)
    }
}

impl Drop for FileLock {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.lock_path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "dcn_fsx_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn write_atomic_replaces_contents_and_leaves_no_temp() {
        let dir = tmp_dir("atomic");
        let path = dir.join("out.json");
        write_atomic(&path, b"first").unwrap();
        write_atomic(&path, b"second version").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "second version");
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "stray temp files: {leftovers:?}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lock_excludes_a_second_acquirer_until_dropped() {
        let dir = tmp_dir("lock");
        let target = dir.join("ledger.json");
        let lock = FileLock::acquire(&target, Duration::from_millis(200)).unwrap();
        let err = FileLock::acquire(&target, Duration::from_millis(30))
            .expect_err("second acquire must time out while the lock is held");
        assert!(err.contains("ledger.json.lock"), "error names lock: {err}");
        drop(lock);
        assert!(!FileLock::lock_path_for(&target).exists());
        let relock = FileLock::acquire(&target, Duration::from_millis(200));
        assert!(relock.is_ok(), "lock must be reacquirable after release");
        drop(relock);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lock_releases_during_unwind() {
        let dir = tmp_dir("unwind");
        let target = dir.join("x");
        let r = std::panic::catch_unwind(|| {
            let _lock = FileLock::acquire(&target, Duration::from_millis(100)).unwrap();
            panic!("boom");
        });
        assert!(r.is_err());
        assert!(
            !FileLock::lock_path_for(&target).exists(),
            "lock file must be removed during unwinding"
        );
        fs::remove_dir_all(&dir).unwrap();
    }
}

//! Minimal CSV emission for benchmark series.
//!
//! Only what the harness needs: header + rows of `Display`-able cells with
//! RFC-4180-style quoting. Reading CSV traces lives in `dcn-traces::csvio`.

use std::fmt::Display;
use std::io::{self, Write};

/// Streaming CSV writer over any [`Write`] sink.
pub struct CsvWriter<W: Write> {
    out: W,
    columns: usize,
}

impl<W: Write> CsvWriter<W> {
    /// Creates a writer and emits the header row.
    pub fn new(mut out: W, header: &[&str]) -> io::Result<Self> {
        let columns = header.len();
        write_cells(&mut out, header.iter())?;
        Ok(Self { out, columns })
    }

    /// Writes one row; panics if the cell count differs from the header.
    pub fn write_row<D: Display>(&mut self, cells: &[D]) -> io::Result<()> {
        assert_eq!(cells.len(), self.columns, "CSV row width mismatch");
        write_cells(&mut self.out, cells.iter())
    }

    /// Flushes and returns the underlying sink.
    pub fn into_inner(mut self) -> io::Result<W> {
        self.out.flush()?;
        Ok(self.out)
    }
}

fn write_cells<D: Display, I: Iterator<Item = D>>(
    out: &mut impl Write,
    cells: I,
) -> io::Result<()> {
    let mut first = true;
    for cell in cells {
        if !first {
            out.write_all(b",")?;
        }
        first = false;
        let text = cell.to_string();
        if text.contains([',', '"', '\n']) {
            write!(out, "\"{}\"", text.replace('"', "\"\""))?;
        } else {
            out.write_all(text.as_bytes())?;
        }
    }
    out.write_all(b"\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_rows() {
        let mut w = CsvWriter::new(Vec::new(), &["a", "b"]).unwrap();
        w.write_row(&[1, 2]).unwrap();
        w.write_row(&[3, 4]).unwrap();
        let bytes = w.into_inner().unwrap();
        assert_eq!(String::from_utf8(bytes).unwrap(), "a,b\n1,2\n3,4\n");
    }

    #[test]
    fn quoting() {
        let mut w = CsvWriter::new(Vec::new(), &["x"]).unwrap();
        w.write_row(&["he,llo"]).unwrap();
        w.write_row(&["say \"hi\""]).unwrap();
        let s = String::from_utf8(w.into_inner().unwrap()).unwrap();
        assert_eq!(s, "x\n\"he,llo\"\n\"say \"\"hi\"\"\"\n");
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn row_width_checked() {
        let mut w = CsvWriter::new(Vec::new(), &["a", "b"]).unwrap();
        let _ = w.write_row(&[1]);
    }
}

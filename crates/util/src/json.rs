//! A compact, dependency-free JSON serializer compatible with `serde`.
//!
//! `dcn-core` persists simulation reports as JSON. Pulling in a full JSON
//! crate is unnecessary for write-only output, so this module implements the
//! subset of the [`serde::Serializer`] contract that plain-old-data report
//! types exercise: primitives, strings, options, sequences, maps, structs,
//! and unit/newtype enum variants.
//!
//! The consumer side is [`parse_json`]/[`JsonValue`]: a small
//! recursive-descent parser for replaying committed artifacts (adversary
//! genomes, regression corpora). Integers parse **exactly** (no float
//! round-trip), so 64-bit RNG seeds survive a serialize→parse cycle
//! bit-for-bit. A second, byte-exactness-oriented consumer lives in
//! `dcn-bench`'s shard module (`parse_table`), which reassembles sharded
//! benchmark artifacts **byte-for-byte** and therefore depends on this
//! emitter's exact escape set and float formatting (shortest-round-trip
//! `Display`) — keep the two in sync if either changes.

use serde::ser::{self, Serialize};
use std::fmt::{self, Display, Write as FmtWrite};

/// Serialization error (only string formatting can fail, plus custom messages).
#[derive(Debug)]
pub struct JsonError(String);

impl Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json serialization error: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

impl ser::Error for JsonError {
    fn custom<T: Display>(msg: T) -> Self {
        JsonError(msg.to_string())
    }
}

/// Serializes any [`Serialize`] value to a compact JSON string.
pub fn to_json_string<T: Serialize>(value: &T) -> Result<String, JsonError> {
    let mut out = String::with_capacity(256);
    value.serialize(&mut JsonSerializer { out: &mut out })?;
    Ok(out)
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn float_into(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        // JSON has no Inf/NaN; emit null like serde_json's lossy mode.
        out.push_str("null");
    }
}

struct JsonSerializer<'a> {
    out: &'a mut String,
}

/// Compound serializer state shared by sequences, maps and structs.
struct Compound<'a, 'b> {
    ser: &'b mut JsonSerializer<'a>,
    first: bool,
    closer: char,
}

impl<'a, 'b> Compound<'a, 'b> {
    fn comma(&mut self) {
        if self.first {
            self.first = false;
        } else {
            self.ser.out.push(',');
        }
    }
}

type Result_<T = ()> = Result<T, JsonError>;

impl<'a, 'b> ser::Serializer for &'b mut JsonSerializer<'a> {
    type Ok = ();
    type Error = JsonError;
    type SerializeSeq = Compound<'a, 'b>;
    type SerializeTuple = Compound<'a, 'b>;
    type SerializeTupleStruct = Compound<'a, 'b>;
    type SerializeTupleVariant = Compound<'a, 'b>;
    type SerializeMap = Compound<'a, 'b>;
    type SerializeStruct = Compound<'a, 'b>;
    type SerializeStructVariant = Compound<'a, 'b>;

    fn serialize_bool(self, v: bool) -> Result_ {
        self.out.push_str(if v { "true" } else { "false" });
        Ok(())
    }
    fn serialize_i8(self, v: i8) -> Result_ {
        self.serialize_i64(v as i64)
    }
    fn serialize_i16(self, v: i16) -> Result_ {
        self.serialize_i64(v as i64)
    }
    fn serialize_i32(self, v: i32) -> Result_ {
        self.serialize_i64(v as i64)
    }
    fn serialize_i64(self, v: i64) -> Result_ {
        let _ = write!(self.out, "{v}");
        Ok(())
    }
    fn serialize_u8(self, v: u8) -> Result_ {
        self.serialize_u64(v as u64)
    }
    fn serialize_u16(self, v: u16) -> Result_ {
        self.serialize_u64(v as u64)
    }
    fn serialize_u32(self, v: u32) -> Result_ {
        self.serialize_u64(v as u64)
    }
    fn serialize_u64(self, v: u64) -> Result_ {
        let _ = write!(self.out, "{v}");
        Ok(())
    }
    fn serialize_f32(self, v: f32) -> Result_ {
        float_into(self.out, v as f64);
        Ok(())
    }
    fn serialize_f64(self, v: f64) -> Result_ {
        float_into(self.out, v);
        Ok(())
    }
    fn serialize_char(self, v: char) -> Result_ {
        let mut buf = [0u8; 4];
        escape_into(self.out, v.encode_utf8(&mut buf));
        Ok(())
    }
    fn serialize_str(self, v: &str) -> Result_ {
        escape_into(self.out, v);
        Ok(())
    }
    fn serialize_bytes(self, v: &[u8]) -> Result_ {
        use serde::ser::SerializeSeq;
        let mut seq = self.serialize_seq(Some(v.len()))?;
        for b in v {
            seq.serialize_element(b)?;
        }
        seq.end()
    }
    fn serialize_none(self) -> Result_ {
        self.out.push_str("null");
        Ok(())
    }
    fn serialize_some<T: ?Sized + Serialize>(self, value: &T) -> Result_ {
        value.serialize(self)
    }
    fn serialize_unit(self) -> Result_ {
        self.out.push_str("null");
        Ok(())
    }
    fn serialize_unit_struct(self, _name: &'static str) -> Result_ {
        self.serialize_unit()
    }
    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _index: u32,
        variant: &'static str,
    ) -> Result_ {
        self.serialize_str(variant)
    }
    fn serialize_newtype_struct<T: ?Sized + Serialize>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result_ {
        value.serialize(self)
    }
    fn serialize_newtype_variant<T: ?Sized + Serialize>(
        self,
        _name: &'static str,
        _index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result_ {
        self.out.push('{');
        escape_into(self.out, variant);
        self.out.push(':');
        value.serialize(&mut *self)?;
        self.out.push('}');
        Ok(())
    }
    fn serialize_seq(self, _len: Option<usize>) -> Result_<Self::SerializeSeq> {
        self.out.push('[');
        Ok(Compound {
            ser: self,
            first: true,
            closer: ']',
        })
    }
    fn serialize_tuple(self, len: usize) -> Result_<Self::SerializeTuple> {
        self.serialize_seq(Some(len))
    }
    fn serialize_tuple_struct(
        self,
        _name: &'static str,
        len: usize,
    ) -> Result_<Self::SerializeTupleStruct> {
        self.serialize_seq(Some(len))
    }
    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        _index: u32,
        variant: &'static str,
        _len: usize,
    ) -> Result_<Self::SerializeTupleVariant> {
        self.out.push('{');
        escape_into(self.out, variant);
        self.out.push_str(":[");
        Ok(Compound {
            ser: self,
            first: true,
            closer: ']',
        })
        // Note: the trailing '}' for the variant wrapper is emitted in `end`
        // via the two-character closer trick below; see SerializeTupleVariant.
    }
    fn serialize_map(self, _len: Option<usize>) -> Result_<Self::SerializeMap> {
        self.out.push('{');
        Ok(Compound {
            ser: self,
            first: true,
            closer: '}',
        })
    }
    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result_<Self::SerializeStruct> {
        self.out.push('{');
        Ok(Compound {
            ser: self,
            first: true,
            closer: '}',
        })
    }
    fn serialize_struct_variant(
        self,
        _name: &'static str,
        _index: u32,
        variant: &'static str,
        _len: usize,
    ) -> Result_<Self::SerializeStructVariant> {
        self.out.push('{');
        escape_into(self.out, variant);
        self.out.push_str(":{");
        Ok(Compound {
            ser: self,
            first: true,
            closer: '}',
        })
        // Same note as tuple variants: outer '}' handled in `end`.
    }
}

impl<'a, 'b> ser::SerializeSeq for Compound<'a, 'b> {
    type Ok = ();
    type Error = JsonError;
    fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result_ {
        self.comma();
        value.serialize(&mut *self.ser)
    }
    fn end(self) -> Result_ {
        self.ser.out.push(self.closer);
        Ok(())
    }
}

impl<'a, 'b> ser::SerializeTuple for Compound<'a, 'b> {
    type Ok = ();
    type Error = JsonError;
    fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result_ {
        ser::SerializeSeq::serialize_element(self, value)
    }
    fn end(self) -> Result_ {
        ser::SerializeSeq::end(self)
    }
}

impl<'a, 'b> ser::SerializeTupleStruct for Compound<'a, 'b> {
    type Ok = ();
    type Error = JsonError;
    fn serialize_field<T: ?Sized + Serialize>(&mut self, value: &T) -> Result_ {
        ser::SerializeSeq::serialize_element(self, value)
    }
    fn end(self) -> Result_ {
        ser::SerializeSeq::end(self)
    }
}

impl<'a, 'b> ser::SerializeTupleVariant for Compound<'a, 'b> {
    type Ok = ();
    type Error = JsonError;
    fn serialize_field<T: ?Sized + Serialize>(&mut self, value: &T) -> Result_ {
        ser::SerializeSeq::serialize_element(self, value)
    }
    fn end(self) -> Result_ {
        self.ser.out.push(self.closer);
        self.ser.out.push('}'); // close the {"variant": ...} wrapper
        Ok(())
    }
}

impl<'a, 'b> ser::SerializeMap for Compound<'a, 'b> {
    type Ok = ();
    type Error = JsonError;
    fn serialize_key<T: ?Sized + Serialize>(&mut self, key: &T) -> Result_ {
        self.comma();
        // JSON object keys must be strings; serialize the key and require it
        // produced a string literal.
        let before = self.ser.out.len();
        key.serialize(&mut *self.ser)?;
        if !self.ser.out[before..].starts_with('"') {
            // Wrap non-string keys (e.g. integers) in quotes, as serde_json does.
            let raw = self.ser.out.split_off(before);
            escape_into(self.ser.out, &raw);
        }
        self.ser.out.push(':');
        Ok(())
    }
    fn serialize_value<T: ?Sized + Serialize>(&mut self, value: &T) -> Result_ {
        value.serialize(&mut *self.ser)
    }
    fn end(self) -> Result_ {
        self.ser.out.push(self.closer);
        Ok(())
    }
}

impl<'a, 'b> ser::SerializeStruct for Compound<'a, 'b> {
    type Ok = ();
    type Error = JsonError;
    fn serialize_field<T: ?Sized + Serialize>(&mut self, key: &'static str, value: &T) -> Result_ {
        self.comma();
        escape_into(self.ser.out, key);
        self.ser.out.push(':');
        value.serialize(&mut *self.ser)
    }
    fn end(self) -> Result_ {
        self.ser.out.push(self.closer);
        Ok(())
    }
}

impl<'a, 'b> ser::SerializeStructVariant for Compound<'a, 'b> {
    type Ok = ();
    type Error = JsonError;
    fn serialize_field<T: ?Sized + Serialize>(&mut self, key: &'static str, value: &T) -> Result_ {
        ser::SerializeStruct::serialize_field(self, key, value)
    }
    fn end(self) -> Result_ {
        self.ser.out.push(self.closer);
        self.ser.out.push('}'); // close the {"variant": {...}} wrapper
        Ok(())
    }
}

/// A parsed JSON value — the consumer-side counterpart of
/// [`to_json_string`] for replaying committed artifacts.
///
/// Integers keep their exact bits: a token with no sign, fraction or
/// exponent parses into [`JsonValue::Uint`] (and a negative one into
/// [`JsonValue::Int`]), so `u64` RNG seeds round-trip losslessly where a
/// float-only representation would truncate above 2⁵³. Object key order is
/// preserved.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Non-negative integer literal (exact).
    Uint(u64),
    /// Negative integer literal (exact).
    Int(i64),
    /// Any literal with a fraction or exponent.
    Float(f64),
    /// String literal (escapes decoded).
    Str(String),
    /// Array.
    Array(Vec<JsonValue>),
    /// Object, in source key order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// The value as an exact `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            JsonValue::Uint(v) => Some(v),
            JsonValue::Int(v) => u64::try_from(v).ok(),
            _ => None,
        }
    }

    /// The value as a `usize`, if it is a non-negative integer that fits.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|v| usize::try_from(v).ok())
    }

    /// The value as an `f64` (any numeric variant).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            JsonValue::Uint(v) => Some(v as f64),
            JsonValue::Int(v) => Some(v as f64),
            JsonValue::Float(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            JsonValue::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The value as an object (key/value pairs in source order).
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}

/// Parses a complete JSON document; trailing non-whitespace is an error.
pub fn parse_json(text: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing content at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            // Collect the raw run up to the next escape or closing quote;
            // str::from_utf8 keeps multi-byte characters intact.
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid UTF-8 in string".to_string())?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            // Surrogate pairs are out of scope: the emitter
                            // never produces them (only control characters).
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| "invalid \\u codepoint".to_string())?,
                            );
                        }
                        other => return Err(format!("unknown escape \\{}", other as char)),
                    }
                }
                _ => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if integral {
            if let Some(digits) = text.strip_prefix('-') {
                if !digits.is_empty() {
                    if let Ok(v) = text.parse::<i64>() {
                        return Ok(JsonValue::Int(v));
                    }
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(JsonValue::Uint(v));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::Float)
            .map_err(|_| format!("invalid number {text:?} at byte {start}"))
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Serialize;
    use std::collections::BTreeMap;

    #[derive(Serialize)]
    struct Report {
        name: String,
        nodes: u32,
        costs: Vec<u64>,
        ratio: f64,
        note: Option<String>,
    }

    #[test]
    fn struct_roundtrip_shape() {
        let r = Report {
            name: "fig1".into(),
            nodes: 100,
            costs: vec![1, 2, 3],
            ratio: 0.5,
            note: None,
        };
        let s = to_json_string(&r).unwrap();
        assert_eq!(
            s,
            r#"{"name":"fig1","nodes":100,"costs":[1,2,3],"ratio":0.5,"note":null}"#
        );
    }

    #[test]
    fn escaping() {
        let s = to_json_string(&"a\"b\\c\nd").unwrap();
        assert_eq!(s, r#""a\"b\\c\nd""#);
    }

    #[test]
    fn map_with_integer_keys() {
        let mut m = BTreeMap::new();
        m.insert(1u32, "one");
        m.insert(2u32, "two");
        let s = to_json_string(&m).unwrap();
        assert_eq!(s, r#"{"1":"one","2":"two"}"#);
    }

    #[derive(Serialize)]
    enum Algo {
        Oblivious,
        Rbma { b: u32 },
        Pair(u32, u32),
    }

    #[test]
    fn enum_variants() {
        assert_eq!(to_json_string(&Algo::Oblivious).unwrap(), r#""Oblivious""#);
        assert_eq!(
            to_json_string(&Algo::Rbma { b: 6 }).unwrap(),
            r#"{"Rbma":{"b":6}}"#
        );
        assert_eq!(
            to_json_string(&Algo::Pair(1, 2)).unwrap(),
            r#"{"Pair":[1,2]}"#
        );
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(to_json_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_json_string(&f64::INFINITY).unwrap(), "null");
    }

    #[test]
    fn nested_options_and_tuples() {
        let v: (Option<u8>, Option<u8>, bool) = (Some(3), None, true);
        assert_eq!(to_json_string(&v).unwrap(), "[3,null,true]");
    }

    #[test]
    fn parse_scalars() {
        assert_eq!(parse_json("null").unwrap(), JsonValue::Null);
        assert_eq!(parse_json(" true ").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse_json("false").unwrap(), JsonValue::Bool(false));
        assert_eq!(parse_json("42").unwrap(), JsonValue::Uint(42));
        assert_eq!(parse_json("-7").unwrap(), JsonValue::Int(-7));
        assert_eq!(parse_json("1.5").unwrap(), JsonValue::Float(1.5));
        assert_eq!(parse_json("2e3").unwrap(), JsonValue::Float(2000.0));
        assert_eq!(
            parse_json(r#""a\nb\"c""#).unwrap(),
            JsonValue::Str("a\nb\"c".into())
        );
        assert_eq!(parse_json(r#""A""#).unwrap(), JsonValue::Str("A".into()));
    }

    #[test]
    fn parse_u64_seeds_exactly() {
        // Above 2^53: a float round-trip would corrupt these.
        let seed = 0xDEAD_BEEF_CAFE_F00Du64;
        let text = to_json_string(&seed).unwrap();
        assert_eq!(parse_json(&text).unwrap().as_u64(), Some(seed));
        assert_eq!(
            parse_json("18446744073709551615").unwrap(),
            JsonValue::Uint(u64::MAX)
        );
    }

    #[test]
    fn parse_compound_round_trip() {
        #[derive(Serialize)]
        struct Entry {
            name: String,
            seeds: Vec<u64>,
            ratio: f64,
            tag: Option<bool>,
        }
        let text = to_json_string(&Entry {
            name: "worst \"genome\"".into(),
            seeds: vec![1, u64::MAX],
            ratio: 2.25,
            tag: None,
        })
        .unwrap();
        let v = parse_json(&text).unwrap();
        assert_eq!(v.get("name").unwrap().as_str(), Some("worst \"genome\""));
        let seeds: Vec<u64> = v
            .get("seeds")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|s| s.as_u64().unwrap())
            .collect();
        assert_eq!(seeds, vec![1, u64::MAX]);
        assert_eq!(v.get("ratio").unwrap().as_f64(), Some(2.25));
        assert_eq!(v.get("tag").unwrap(), &JsonValue::Null);
        // Enum variant shapes parse back too.
        let e = parse_json(r#"{"Rbma":{"b":6}}"#).unwrap();
        assert_eq!(e.get("Rbma").unwrap().get("b").unwrap().as_usize(), Some(6));
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in [
            "",
            "tru",
            "[1,",
            "{\"a\":}",
            "[1 2]",
            "\"unterminated",
            "1.2.3",
            "{,}",
            "42 x",
            "nullx",
        ] {
            assert!(parse_json(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn object_key_order_and_lookup() {
        let v = parse_json(r#"{"b":1,"a":2,"b":3}"#).unwrap();
        let keys: Vec<&str> = v
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, vec!["b", "a", "b"]);
        // First match wins.
        assert_eq!(v.get("b").unwrap().as_u64(), Some(1));
        assert!(v.get("missing").is_none());
    }
}

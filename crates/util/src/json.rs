//! A compact, dependency-free JSON serializer compatible with `serde`.
//!
//! `dcn-core` persists simulation reports as JSON. Pulling in a full JSON
//! crate is unnecessary for write-only output, so this module implements the
//! subset of the [`serde::Serializer`] contract that plain-old-data report
//! types exercise: primitives, strings, options, sequences, maps, structs,
//! and unit/newtype enum variants.
//!
//! Note: this is intentionally an emitter only. The one consumer-side
//! counterpart lives in `dcn-bench`'s shard module (`parse_table`), which
//! reassembles sharded benchmark artifacts **byte-for-byte** and therefore
//! depends on this emitter's exact escape set and float formatting
//! (shortest-round-trip `Display`) — keep the two in sync if either
//! changes.

use serde::ser::{self, Serialize};
use std::fmt::{self, Display, Write as FmtWrite};

/// Serialization error (only string formatting can fail, plus custom messages).
#[derive(Debug)]
pub struct JsonError(String);

impl Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json serialization error: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

impl ser::Error for JsonError {
    fn custom<T: Display>(msg: T) -> Self {
        JsonError(msg.to_string())
    }
}

/// Serializes any [`Serialize`] value to a compact JSON string.
pub fn to_json_string<T: Serialize>(value: &T) -> Result<String, JsonError> {
    let mut out = String::with_capacity(256);
    value.serialize(&mut JsonSerializer { out: &mut out })?;
    Ok(out)
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn float_into(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        // JSON has no Inf/NaN; emit null like serde_json's lossy mode.
        out.push_str("null");
    }
}

struct JsonSerializer<'a> {
    out: &'a mut String,
}

/// Compound serializer state shared by sequences, maps and structs.
struct Compound<'a, 'b> {
    ser: &'b mut JsonSerializer<'a>,
    first: bool,
    closer: char,
}

impl<'a, 'b> Compound<'a, 'b> {
    fn comma(&mut self) {
        if self.first {
            self.first = false;
        } else {
            self.ser.out.push(',');
        }
    }
}

type Result_<T = ()> = Result<T, JsonError>;

impl<'a, 'b> ser::Serializer for &'b mut JsonSerializer<'a> {
    type Ok = ();
    type Error = JsonError;
    type SerializeSeq = Compound<'a, 'b>;
    type SerializeTuple = Compound<'a, 'b>;
    type SerializeTupleStruct = Compound<'a, 'b>;
    type SerializeTupleVariant = Compound<'a, 'b>;
    type SerializeMap = Compound<'a, 'b>;
    type SerializeStruct = Compound<'a, 'b>;
    type SerializeStructVariant = Compound<'a, 'b>;

    fn serialize_bool(self, v: bool) -> Result_ {
        self.out.push_str(if v { "true" } else { "false" });
        Ok(())
    }
    fn serialize_i8(self, v: i8) -> Result_ {
        self.serialize_i64(v as i64)
    }
    fn serialize_i16(self, v: i16) -> Result_ {
        self.serialize_i64(v as i64)
    }
    fn serialize_i32(self, v: i32) -> Result_ {
        self.serialize_i64(v as i64)
    }
    fn serialize_i64(self, v: i64) -> Result_ {
        let _ = write!(self.out, "{v}");
        Ok(())
    }
    fn serialize_u8(self, v: u8) -> Result_ {
        self.serialize_u64(v as u64)
    }
    fn serialize_u16(self, v: u16) -> Result_ {
        self.serialize_u64(v as u64)
    }
    fn serialize_u32(self, v: u32) -> Result_ {
        self.serialize_u64(v as u64)
    }
    fn serialize_u64(self, v: u64) -> Result_ {
        let _ = write!(self.out, "{v}");
        Ok(())
    }
    fn serialize_f32(self, v: f32) -> Result_ {
        float_into(self.out, v as f64);
        Ok(())
    }
    fn serialize_f64(self, v: f64) -> Result_ {
        float_into(self.out, v);
        Ok(())
    }
    fn serialize_char(self, v: char) -> Result_ {
        let mut buf = [0u8; 4];
        escape_into(self.out, v.encode_utf8(&mut buf));
        Ok(())
    }
    fn serialize_str(self, v: &str) -> Result_ {
        escape_into(self.out, v);
        Ok(())
    }
    fn serialize_bytes(self, v: &[u8]) -> Result_ {
        use serde::ser::SerializeSeq;
        let mut seq = self.serialize_seq(Some(v.len()))?;
        for b in v {
            seq.serialize_element(b)?;
        }
        seq.end()
    }
    fn serialize_none(self) -> Result_ {
        self.out.push_str("null");
        Ok(())
    }
    fn serialize_some<T: ?Sized + Serialize>(self, value: &T) -> Result_ {
        value.serialize(self)
    }
    fn serialize_unit(self) -> Result_ {
        self.out.push_str("null");
        Ok(())
    }
    fn serialize_unit_struct(self, _name: &'static str) -> Result_ {
        self.serialize_unit()
    }
    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _index: u32,
        variant: &'static str,
    ) -> Result_ {
        self.serialize_str(variant)
    }
    fn serialize_newtype_struct<T: ?Sized + Serialize>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result_ {
        value.serialize(self)
    }
    fn serialize_newtype_variant<T: ?Sized + Serialize>(
        self,
        _name: &'static str,
        _index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result_ {
        self.out.push('{');
        escape_into(self.out, variant);
        self.out.push(':');
        value.serialize(&mut *self)?;
        self.out.push('}');
        Ok(())
    }
    fn serialize_seq(self, _len: Option<usize>) -> Result_<Self::SerializeSeq> {
        self.out.push('[');
        Ok(Compound {
            ser: self,
            first: true,
            closer: ']',
        })
    }
    fn serialize_tuple(self, len: usize) -> Result_<Self::SerializeTuple> {
        self.serialize_seq(Some(len))
    }
    fn serialize_tuple_struct(
        self,
        _name: &'static str,
        len: usize,
    ) -> Result_<Self::SerializeTupleStruct> {
        self.serialize_seq(Some(len))
    }
    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        _index: u32,
        variant: &'static str,
        _len: usize,
    ) -> Result_<Self::SerializeTupleVariant> {
        self.out.push('{');
        escape_into(self.out, variant);
        self.out.push_str(":[");
        Ok(Compound {
            ser: self,
            first: true,
            closer: ']',
        })
        // Note: the trailing '}' for the variant wrapper is emitted in `end`
        // via the two-character closer trick below; see SerializeTupleVariant.
    }
    fn serialize_map(self, _len: Option<usize>) -> Result_<Self::SerializeMap> {
        self.out.push('{');
        Ok(Compound {
            ser: self,
            first: true,
            closer: '}',
        })
    }
    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result_<Self::SerializeStruct> {
        self.out.push('{');
        Ok(Compound {
            ser: self,
            first: true,
            closer: '}',
        })
    }
    fn serialize_struct_variant(
        self,
        _name: &'static str,
        _index: u32,
        variant: &'static str,
        _len: usize,
    ) -> Result_<Self::SerializeStructVariant> {
        self.out.push('{');
        escape_into(self.out, variant);
        self.out.push_str(":{");
        Ok(Compound {
            ser: self,
            first: true,
            closer: '}',
        })
        // Same note as tuple variants: outer '}' handled in `end`.
    }
}

impl<'a, 'b> ser::SerializeSeq for Compound<'a, 'b> {
    type Ok = ();
    type Error = JsonError;
    fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result_ {
        self.comma();
        value.serialize(&mut *self.ser)
    }
    fn end(self) -> Result_ {
        self.ser.out.push(self.closer);
        Ok(())
    }
}

impl<'a, 'b> ser::SerializeTuple for Compound<'a, 'b> {
    type Ok = ();
    type Error = JsonError;
    fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result_ {
        ser::SerializeSeq::serialize_element(self, value)
    }
    fn end(self) -> Result_ {
        ser::SerializeSeq::end(self)
    }
}

impl<'a, 'b> ser::SerializeTupleStruct for Compound<'a, 'b> {
    type Ok = ();
    type Error = JsonError;
    fn serialize_field<T: ?Sized + Serialize>(&mut self, value: &T) -> Result_ {
        ser::SerializeSeq::serialize_element(self, value)
    }
    fn end(self) -> Result_ {
        ser::SerializeSeq::end(self)
    }
}

impl<'a, 'b> ser::SerializeTupleVariant for Compound<'a, 'b> {
    type Ok = ();
    type Error = JsonError;
    fn serialize_field<T: ?Sized + Serialize>(&mut self, value: &T) -> Result_ {
        ser::SerializeSeq::serialize_element(self, value)
    }
    fn end(self) -> Result_ {
        self.ser.out.push(self.closer);
        self.ser.out.push('}'); // close the {"variant": ...} wrapper
        Ok(())
    }
}

impl<'a, 'b> ser::SerializeMap for Compound<'a, 'b> {
    type Ok = ();
    type Error = JsonError;
    fn serialize_key<T: ?Sized + Serialize>(&mut self, key: &T) -> Result_ {
        self.comma();
        // JSON object keys must be strings; serialize the key and require it
        // produced a string literal.
        let before = self.ser.out.len();
        key.serialize(&mut *self.ser)?;
        if !self.ser.out[before..].starts_with('"') {
            // Wrap non-string keys (e.g. integers) in quotes, as serde_json does.
            let raw = self.ser.out.split_off(before);
            escape_into(self.ser.out, &raw);
        }
        self.ser.out.push(':');
        Ok(())
    }
    fn serialize_value<T: ?Sized + Serialize>(&mut self, value: &T) -> Result_ {
        value.serialize(&mut *self.ser)
    }
    fn end(self) -> Result_ {
        self.ser.out.push(self.closer);
        Ok(())
    }
}

impl<'a, 'b> ser::SerializeStruct for Compound<'a, 'b> {
    type Ok = ();
    type Error = JsonError;
    fn serialize_field<T: ?Sized + Serialize>(&mut self, key: &'static str, value: &T) -> Result_ {
        self.comma();
        escape_into(self.ser.out, key);
        self.ser.out.push(':');
        value.serialize(&mut *self.ser)
    }
    fn end(self) -> Result_ {
        self.ser.out.push(self.closer);
        Ok(())
    }
}

impl<'a, 'b> ser::SerializeStructVariant for Compound<'a, 'b> {
    type Ok = ();
    type Error = JsonError;
    fn serialize_field<T: ?Sized + Serialize>(&mut self, key: &'static str, value: &T) -> Result_ {
        ser::SerializeStruct::serialize_field(self, key, value)
    }
    fn end(self) -> Result_ {
        self.ser.out.push(self.closer);
        self.ser.out.push('}'); // close the {"variant": {...}} wrapper
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Serialize;
    use std::collections::BTreeMap;

    #[derive(Serialize)]
    struct Report {
        name: String,
        nodes: u32,
        costs: Vec<u64>,
        ratio: f64,
        note: Option<String>,
    }

    #[test]
    fn struct_roundtrip_shape() {
        let r = Report {
            name: "fig1".into(),
            nodes: 100,
            costs: vec![1, 2, 3],
            ratio: 0.5,
            note: None,
        };
        let s = to_json_string(&r).unwrap();
        assert_eq!(
            s,
            r#"{"name":"fig1","nodes":100,"costs":[1,2,3],"ratio":0.5,"note":null}"#
        );
    }

    #[test]
    fn escaping() {
        let s = to_json_string(&"a\"b\\c\nd").unwrap();
        assert_eq!(s, r#""a\"b\\c\nd""#);
    }

    #[test]
    fn map_with_integer_keys() {
        let mut m = BTreeMap::new();
        m.insert(1u32, "one");
        m.insert(2u32, "two");
        let s = to_json_string(&m).unwrap();
        assert_eq!(s, r#"{"1":"one","2":"two"}"#);
    }

    #[derive(Serialize)]
    enum Algo {
        Oblivious,
        Rbma { b: u32 },
        Pair(u32, u32),
    }

    #[test]
    fn enum_variants() {
        assert_eq!(to_json_string(&Algo::Oblivious).unwrap(), r#""Oblivious""#);
        assert_eq!(
            to_json_string(&Algo::Rbma { b: 6 }).unwrap(),
            r#"{"Rbma":{"b":6}}"#
        );
        assert_eq!(
            to_json_string(&Algo::Pair(1, 2)).unwrap(),
            r#"{"Pair":[1,2]}"#
        );
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(to_json_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_json_string(&f64::INFINITY).unwrap(), "null");
    }

    #[test]
    fn nested_options_and_tuples() {
        let v: (Option<u8>, Option<u8>, bool) = (Some(3), None, true);
        assert_eq!(to_json_string(&v).unwrap(), "[3,null,true]");
    }
}

//! Wall-clock stopwatch for the execution-time panels (Figs 1b-4b).

use std::time::{Duration, Instant};

/// A restartable stopwatch that can be paused and resumed.
///
/// The simulator pauses it around bookkeeping that the paper's methodology
/// excludes from the measured run time (e.g. checkpoint snapshotting).
#[derive(Clone, Debug)]
pub struct Stopwatch {
    accumulated: Duration,
    running_since: Option<Instant>,
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::new()
    }
}

impl Stopwatch {
    /// Creates a stopped stopwatch at zero.
    pub fn new() -> Self {
        Self {
            accumulated: Duration::ZERO,
            running_since: None,
        }
    }

    /// Creates and immediately starts a stopwatch.
    pub fn started() -> Self {
        Self {
            accumulated: Duration::ZERO,
            running_since: Some(Instant::now()),
        }
    }

    /// Starts (or resumes) the stopwatch; no-op if already running.
    pub fn start(&mut self) {
        if self.running_since.is_none() {
            self.running_since = Some(Instant::now());
        }
    }

    /// Pauses the stopwatch; no-op if already paused.
    pub fn pause(&mut self) {
        if let Some(since) = self.running_since.take() {
            self.accumulated += since.elapsed();
        }
    }

    /// Total accumulated time (including the current running span).
    pub fn elapsed(&self) -> Duration {
        match self.running_since {
            Some(since) => self.accumulated + since.elapsed(),
            None => self.accumulated,
        }
    }

    /// Total accumulated time in seconds.
    pub fn elapsed_secs(&self) -> f64 {
        self.elapsed().as_secs_f64()
    }

    /// Resets to zero; keeps running state.
    pub fn reset(&mut self) {
        self.accumulated = Duration::ZERO;
        if self.running_since.is_some() {
            self.running_since = Some(Instant::now());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread::sleep;

    #[test]
    fn accumulates_across_pause() {
        let mut sw = Stopwatch::new();
        sw.start();
        sleep(Duration::from_millis(5));
        sw.pause();
        let after_first = sw.elapsed();
        assert!(after_first >= Duration::from_millis(4));
        sleep(Duration::from_millis(10));
        // Paused time must not count.
        assert_eq!(sw.elapsed(), after_first);
        sw.start();
        sleep(Duration::from_millis(5));
        sw.pause();
        assert!(sw.elapsed() >= after_first + Duration::from_millis(4));
    }

    #[test]
    fn reset_zeroes() {
        let mut sw = Stopwatch::started();
        sleep(Duration::from_millis(2));
        sw.reset();
        assert!(sw.elapsed() < Duration::from_millis(2));
    }

    #[test]
    fn idempotent_start_pause() {
        let mut sw = Stopwatch::new();
        sw.pause(); // pause while stopped: no-op
        sw.start();
        sw.start(); // double start: no-op
        sw.pause();
        sw.pause();
        let e = sw.elapsed();
        assert_eq!(sw.elapsed(), e);
    }
}

//! Fx-style multiplicative hashing.
//!
//! A reimplementation of the well-known `FxHasher` used by rustc: a
//! fold-and-multiply hash that is extremely fast on small integer keys and
//! adequate for hash tables keyed by node ids and packed node pairs. It is
//! **not** HashDoS-resistant; the simulator only ever hashes its own data.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant (64-bit golden-ratio based, as used by rustc).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Fast non-cryptographic hasher for small keys.
///
/// Implements the fold-multiply scheme: `state = (state.rotate_left(5) ^ word)
/// * SEED` per ingested word.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let word = u64::from_le_bytes(chunk.try_into().expect("chunk of 8"));
            self.add_to_hash(word);
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(value: &T) -> u64 {
        FxBuildHasher::default().hash_one(value)
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&"hello"), hash_of(&"hello"));
    }

    #[test]
    fn distinguishes_values() {
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
        assert_ne!(hash_of(&(1u32, 2u32)), hash_of(&(2u32, 1u32)));
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i, i * i);
        }
        for i in 0..1000u64 {
            assert_eq!(m.get(&i), Some(&(i * i)));
        }
        assert_eq!(m.len(), 1000);
    }

    #[test]
    fn byte_stream_tail_handling() {
        // Writing the same logical bytes in different chunkings must agree
        // with a single write of the concatenation (Hasher contract is looser
        // than this, but our implementation keeps it for whole-slice writes).
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11]);
        assert_eq!(a.finish(), b.finish());
        // And differing tails must differ.
        let mut c = FxHasher::default();
        c.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 12]);
        assert_ne!(a.finish(), c.finish());
    }

    #[test]
    fn low_collision_on_packed_pairs() {
        // Packed (u32, u32) pairs as used for node pairs should not collide
        // in a 100-node universe.
        let mut seen = FxHashSet::default();
        for a in 0..100u64 {
            for b in (a + 1)..100u64 {
                seen.insert(hash_of(&((a << 32) | b)));
            }
        }
        assert_eq!(seen.len(), 100 * 99 / 2);
    }
}

//! # dcn-util
//!
//! Shared low-level utilities for the `rdcn` workspace.
//!
//! This crate is the performance substrate under every other crate in the
//! workspace. It deliberately has no dependency besides [`rand`]:
//!
//! * [`fxhash`] — an Fx-style multiplicative hasher plus [`FxHashMap`] /
//!   [`FxHashSet`] aliases. The workloads hash billions of small integer keys
//!   (packed node pairs), where SipHash is needlessly slow.
//! * [`indexed_set`] — [`IndexedSet`], a set with O(1) insert, remove,
//!   membership *and O(1) uniform random sampling*. The randomized marking
//!   algorithm at the heart of R-BMA needs to evict a uniformly random
//!   unmarked page per fault; this structure makes that O(1).
//! * [`stats`] — streaming statistics (Welford), summaries, Gini coefficient
//!   and least-squares regression used by trace analysis and the
//!   competitive-ratio experiments.
//! * [`csv`] — a minimal CSV emitter for benchmark series.
//! * [`json`] — a compact `serde`-compatible JSON writer used to persist
//!   simulation reports without pulling in a full JSON crate.
//! * [`timer`] — a [`timer::Stopwatch`] for the execution-time
//!   panels of the evaluation.
//! * [`rngx`] — SplitMix64 seed derivation so that every run in a sweep gets
//!   an independent but reproducible RNG stream, plus the shared seeded
//!   Fisher–Yates [`rngx::shuffle`] whose draw order the byte-identical
//!   stream guarantees rest on.
//! * [`failpoint`] — deterministic fault injection: named, seeded,
//!   replayable failure sites compiled out under `--cfg dcn_failpoints_off`.
//! * [`fsx`] — crash-safe filesystem primitives: atomic write-then-rename
//!   and an advisory create-new file lock.

pub mod csv;
pub mod failpoint;
pub mod fsx;
pub mod fxhash;
pub mod indexed_set;
pub mod json;
pub mod rngx;
pub mod stats;
pub mod timer;

pub use csv::CsvWriter;
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use indexed_set::IndexedSet;
pub use stats::{
    gini, linear_regression, percentile, summarize, zipf_weights, OnlineStats, Summary,
};
pub use timer::Stopwatch;

//! Deterministic fault injection for the sweep pipeline.
//!
//! A *failpoint* is a named hook compiled into a hot or fragile code path —
//! `failpoint::hit("sweep.job_claim")` — that does nothing until it is
//! *armed* with an action (panic, delay, injected error) and a trigger
//! (every hit, the Nth hit, or a seeded percentage of hits). Armed
//! schedules replay byte-for-byte: percentage triggers draw from a
//! per-failpoint SplitMix64 stream derived from a fixed base seed, so the
//! same `DCN_FAILPOINTS` string against the same workload fires at the
//! same hits every time.
//!
//! The design mirrors `dcn-telemetry`'s compile-out pattern: building with
//! `RUSTFLAGS="--cfg dcn_failpoints_off"` turns every function here into an
//! empty inlineable shell, so production builds can prove the layer absent.
//! In the default build a *disarmed* registry costs one relaxed atomic load
//! per hit — the `micro_batch` overhead point gates this staying
//! unmeasurable.
//!
//! # Arming grammar
//!
//! `DCN_FAILPOINTS` (or [`arm_list`]) takes a comma-separated list of
//! `name=action[@trigger]` clauses:
//!
//! ```text
//! sweep.job_claim=panic@5          panic on the 5th hit (once)
//! sim.chunk=delay:50ms@7%          sleep 50 ms on a seeded 7% of hits
//! shard.parse=error:injected       injected parse error on every eval
//! ```
//!
//! Actions: `panic`, `delay:<N>ms` (or bare `<N>` = milliseconds), and
//! `error[:message]`. `panic` and `delay` fire from [`hit`]; `error` is
//! only observable through [`eval`], which parser-style call sites use to
//! surface an injected failure as a structured `Err` instead of a panic.
//! Triggers: absent = every hit, `@N` = exactly the Nth hit, `@N%` =
//! each hit independently with probability N/100 from the seeded stream.
//! The base seed comes from `DCN_FAILPOINTS_SEED` (default 0) or
//! [`set_seed`].

use std::time::Duration;

/// Reports whether failpoint support is compiled into this build.
///
/// `false` means the crate was built with `--cfg dcn_failpoints_off` and
/// every registry function in this module is an empty shell.
#[inline]
pub const fn compiled() -> bool {
    cfg!(not(dcn_failpoints_off))
}

#[cfg(not(dcn_failpoints_off))]
mod imp {
    use super::{Action, Trigger};
    use crate::rngx;
    use std::collections::HashMap;
    use std::hash::{Hash, Hasher};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    pub(super) struct Point {
        pub(super) action: Action,
        pub(super) trigger: Trigger,
        /// Total times the site was reached while this point was armed.
        pub(super) hits: u64,
        /// Times the trigger matched and the action ran.
        pub(super) fired: u64,
        /// Per-point SplitMix64 state for `Trigger::Percent` draws.
        pub(super) rng: u64,
    }

    pub(super) struct Registry {
        pub(super) points: HashMap<String, Point>,
        pub(super) seed: u64,
    }

    /// Number of armed points, mirrored out of the mutex so a disarmed
    /// [`super::hit`] is a single relaxed load.
    pub(super) static ARMED: AtomicUsize = AtomicUsize::new(0);

    pub(super) static REGISTRY: Mutex<Option<Registry>> = Mutex::new(None);

    pub(super) fn with_registry<T>(f: impl FnOnce(&mut Registry) -> T) -> T {
        // A failpoint panic that unwinds through a caller currently holding
        // no lock still poisons this mutex if the panic started *inside*
        // the critical section; actions therefore always run after the
        // guard drops, and lock recovery here keeps the registry usable
        // across caught injected panics.
        let mut guard = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
        let reg = guard.get_or_insert_with(|| Registry {
            points: HashMap::new(),
            seed: std::env::var("DCN_FAILPOINTS_SEED")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(0),
        });
        f(reg)
    }

    pub(super) fn name_stream(name: &str) -> u64 {
        let mut h = crate::fxhash::FxHasher::default();
        name.hash(&mut h);
        h.finish()
    }

    /// Evaluates the trigger for one arrival at `name`; returns the action
    /// to execute, cloned out so the caller acts after the lock drops.
    pub(super) fn check(name: &str) -> Option<Action> {
        with_registry(|reg| {
            let point = reg.points.get_mut(name)?;
            point.hits += 1;
            let fire = match point.trigger {
                Trigger::Always => true,
                Trigger::Nth(n) => point.hits == n,
                Trigger::Percent(p) => rngx::splitmix64(&mut point.rng) % 100 < u64::from(p),
            };
            if fire {
                point.fired += 1;
                Some(point.action.clone())
            } else {
                None
            }
        })
    }

    pub(super) fn sync_armed_count(reg: &Registry) {
        ARMED.store(reg.points.len(), Ordering::Relaxed);
    }
}

/// What an armed failpoint does when its trigger matches.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Action {
    /// Panic with a message naming the failpoint.
    Panic,
    /// Sleep for the given duration, then continue.
    Delay(Duration),
    /// Surface the message through [`eval`]; ignored by [`hit`].
    Error(String),
}

/// When an armed failpoint's action runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Trigger {
    /// Every hit.
    Always,
    /// Exactly the Nth hit (1-based), once.
    Nth(u64),
    /// Each hit independently with probability N/100, drawn from the
    /// per-failpoint seeded stream.
    Percent(u8),
}

/// Marks an execution of the named failpoint site.
///
/// Disarmed (the common case) this is one relaxed atomic load. Armed with
/// `panic` it panics; armed with `delay` it sleeps; `error` actions are
/// inert here (use [`eval`] at sites that can return structured errors).
#[inline]
pub fn hit(name: &str) {
    #[cfg(not(dcn_failpoints_off))]
    {
        if imp::ARMED.load(std::sync::atomic::Ordering::Relaxed) == 0 {
            return;
        }
        hit_slow(name);
    }
    #[cfg(dcn_failpoints_off)]
    let _ = name;
}

#[cfg(not(dcn_failpoints_off))]
#[cold]
fn hit_slow(name: &str) {
    match imp::check(name) {
        Some(Action::Panic) => panic!("failpoint '{name}' fired: injected panic"),
        Some(Action::Delay(d)) => std::thread::sleep(d),
        Some(Action::Error(_)) | None => {}
    }
}

/// Like [`hit`], but lets `error`-armed failpoints inject a structured
/// failure: returns `Some(message)` when the trigger matches an `error`
/// action, which the call site should convert into its own `Err`.
///
/// `panic` and `delay` actions behave exactly as under [`hit`].
#[inline]
pub fn eval(name: &str) -> Option<String> {
    #[cfg(not(dcn_failpoints_off))]
    {
        if imp::ARMED.load(std::sync::atomic::Ordering::Relaxed) == 0 {
            return None;
        }
        return eval_slow(name);
    }
    #[cfg(dcn_failpoints_off)]
    {
        let _ = name;
        None
    }
}

#[cfg(not(dcn_failpoints_off))]
#[cold]
fn eval_slow(name: &str) -> Option<String> {
    match imp::check(name) {
        Some(Action::Panic) => panic!("failpoint '{name}' fired: injected panic"),
        Some(Action::Delay(d)) => {
            std::thread::sleep(d);
            None
        }
        Some(Action::Error(msg)) => Some(msg),
        None => None,
    }
}

/// Arms one failpoint programmatically. Re-arming a name resets its hit
/// and fire counts and its RNG stream.
pub fn arm(name: &str, action: Action, trigger: Trigger) {
    #[cfg(not(dcn_failpoints_off))]
    imp::with_registry(|reg| {
        let rng_seed = crate::rngx::derive_seed(reg.seed, imp::name_stream(name));
        reg.points.insert(
            name.to_string(),
            imp::Point {
                action,
                trigger,
                hits: 0,
                fired: 0,
                rng: rng_seed,
            },
        );
        imp::sync_armed_count(reg);
    });
    #[cfg(dcn_failpoints_off)]
    let _ = (name, action, trigger);
}

/// Arms failpoints from a comma-separated `name=action[@trigger]` list
/// (the `DCN_FAILPOINTS` grammar; see the module docs).
pub fn arm_list(spec: &str) -> Result<(), String> {
    for clause in spec.split(',') {
        let clause = clause.trim();
        if clause.is_empty() {
            continue;
        }
        let (name, rest) = clause
            .split_once('=')
            .ok_or_else(|| format!("failpoint clause '{clause}' is missing '='"))?;
        let (action, trigger) =
            parse_spec(rest).map_err(|e| format!("failpoint clause '{clause}': {e}"))?;
        arm(name.trim(), action, trigger);
    }
    Ok(())
}

/// Arms failpoints from the `DCN_FAILPOINTS` environment variable, if set.
/// Returns the number of clauses armed.
pub fn arm_from_env() -> Result<usize, String> {
    match std::env::var("DCN_FAILPOINTS") {
        Ok(spec) if !spec.trim().is_empty() => {
            let before = armed_count();
            arm_list(&spec)?;
            Ok(armed_count().saturating_sub(before).max(1))
        }
        _ => Ok(0),
    }
}

/// Parses `action[@trigger]`: `panic@3`, `delay:50ms@7%`, `error:msg`.
fn parse_spec(spec: &str) -> Result<(Action, Trigger), String> {
    // The trigger suffix is the part after the *last* '@' that parses as
    // a count or percentage, so error messages may contain '@'.
    let (action_str, trigger) = match spec.rsplit_once('@') {
        Some((head, tail)) if parse_trigger(tail).is_some() => (head, parse_trigger(tail).unwrap()),
        _ => (spec, Trigger::Always),
    };
    let action = if action_str == "panic" {
        Action::Panic
    } else if let Some(arg) = action_str.strip_prefix("delay:") {
        let ms: u64 = arg
            .strip_suffix("ms")
            .unwrap_or(arg)
            .parse()
            .map_err(|_| format!("bad delay duration '{arg}' (expected e.g. '50ms')"))?;
        Action::Delay(Duration::from_millis(ms))
    } else if action_str == "error" {
        Action::Error("injected failpoint error".to_string())
    } else if let Some(msg) = action_str.strip_prefix("error:") {
        Action::Error(msg.to_string())
    } else {
        return Err(format!(
            "unknown action '{action_str}' (expected panic, delay:<N>ms, or error[:msg])"
        ));
    };
    Ok((action, trigger))
}

fn parse_trigger(tail: &str) -> Option<Trigger> {
    if let Some(pct) = tail.strip_suffix('%') {
        let p: u8 = pct.parse().ok()?;
        (p <= 100).then_some(Trigger::Percent(p))
    } else {
        tail.parse().ok().map(Trigger::Nth)
    }
}

/// Disarms one failpoint; returns whether it was armed. Tests should
/// disarm exactly the names they armed so parallel tests don't interfere.
pub fn disarm(name: &str) -> bool {
    #[cfg(not(dcn_failpoints_off))]
    {
        imp::with_registry(|reg| {
            let removed = reg.points.remove(name).is_some();
            imp::sync_armed_count(reg);
            removed
        })
    }
    #[cfg(dcn_failpoints_off)]
    {
        let _ = name;
        false
    }
}

/// Disarms every failpoint.
pub fn disarm_all() {
    #[cfg(not(dcn_failpoints_off))]
    imp::with_registry(|reg| {
        reg.points.clear();
        imp::sync_armed_count(reg);
    });
}

/// Number of currently armed failpoints.
pub fn armed_count() -> usize {
    #[cfg(not(dcn_failpoints_off))]
    {
        imp::ARMED.load(std::sync::atomic::Ordering::Relaxed)
    }
    #[cfg(dcn_failpoints_off)]
    {
        0
    }
}

/// Hit count for a named failpoint since it was (re-)armed.
pub fn hits(name: &str) -> u64 {
    #[cfg(not(dcn_failpoints_off))]
    {
        imp::with_registry(|reg| reg.points.get(name).map_or(0, |p| p.hits))
    }
    #[cfg(dcn_failpoints_off)]
    {
        let _ = name;
        0
    }
}

/// Fire count for a named failpoint since it was (re-)armed.
pub fn fired(name: &str) -> u64 {
    #[cfg(not(dcn_failpoints_off))]
    {
        imp::with_registry(|reg| reg.points.get(name).map_or(0, |p| p.fired))
    }
    #[cfg(dcn_failpoints_off)]
    {
        let _ = name;
        0
    }
}

/// Sets the base seed for percentage-trigger draws. Takes effect for
/// failpoints armed afterwards; `DCN_FAILPOINTS_SEED` sets the initial
/// value.
pub fn set_seed(seed: u64) {
    #[cfg(not(dcn_failpoints_off))]
    imp::with_registry(|reg| reg.seed = seed);
    #[cfg(dcn_failpoints_off)]
    let _ = seed;
}

/// Snapshot of `(name, hits, fired)` for every armed failpoint, for
/// diagnostics and tests.
pub fn snapshot() -> Vec<(String, u64, u64)> {
    #[cfg(not(dcn_failpoints_off))]
    {
        let mut v: Vec<_> = imp::with_registry(|reg| {
            reg.points
                .iter()
                .map(|(k, p)| (k.clone(), p.hits, p.fired))
                .collect()
        });
        v.sort();
        v
    }
    #[cfg(dcn_failpoints_off)]
    {
        Vec::new()
    }
}

#[cfg(all(test, not(dcn_failpoints_off)))]
mod tests {
    use super::*;

    // Failpoint state is process-global; tests here use unique names and a
    // shared lock so they can run under the default parallel test runner
    // without observing each other's arming.
    use std::sync::Mutex;
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disarmed_hit_is_a_no_op() {
        let _g = locked();
        hit("test.never_armed");
        assert_eq!(eval("test.never_armed"), None);
        assert_eq!(hits("test.never_armed"), 0);
    }

    #[test]
    fn nth_trigger_fires_exactly_once() {
        let _g = locked();
        arm("test.nth", Action::Delay(Duration::ZERO), Trigger::Nth(3));
        for _ in 0..10 {
            hit("test.nth");
        }
        assert_eq!(hits("test.nth"), 10);
        assert_eq!(fired("test.nth"), 1);
        assert!(disarm("test.nth"));
    }

    #[test]
    fn panic_action_panics_with_the_failpoint_name() {
        let _g = locked();
        arm("test.panic", Action::Panic, Trigger::Always);
        let r = std::panic::catch_unwind(|| hit("test.panic"));
        disarm("test.panic");
        let payload = r.expect_err("armed panic failpoint must panic");
        let msg = payload.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("test.panic"), "payload: {msg}");
    }

    #[test]
    fn eval_surfaces_error_actions_and_hit_ignores_them() {
        let _g = locked();
        arm(
            "test.err",
            Action::Error("boom".to_string()),
            Trigger::Always,
        );
        hit("test.err"); // inert
        assert_eq!(eval("test.err").as_deref(), Some("boom"));
        disarm("test.err");
    }

    #[test]
    fn percent_trigger_replays_byte_for_byte() {
        let _g = locked();
        let run = || {
            set_seed(99);
            arm(
                "test.pct",
                Action::Delay(Duration::ZERO),
                Trigger::Percent(30),
            );
            let fires: Vec<u64> = (0..200)
                .map(|_| {
                    hit("test.pct");
                    fired("test.pct")
                })
                .collect();
            disarm("test.pct");
            fires
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "seeded percent schedule must replay identically");
        let total = *a.last().unwrap();
        assert!(
            (30..=90).contains(&total),
            "~30% of 200 hits should fire, got {total}"
        );
    }

    #[test]
    fn arm_list_parses_the_env_grammar() {
        let _g = locked();
        arm_list("test.a=panic@5, test.b=delay:50ms@7%, test.c=error:bad byte").unwrap();
        assert!(armed_count() >= 3);
        let snap = snapshot();
        assert!(snap.iter().any(|(n, _, _)| n == "test.a"));
        disarm("test.a");
        disarm("test.b");
        disarm("test.c");

        assert!(arm_list("nonsense").is_err());
        assert!(arm_list("x=frobnicate").is_err());
        assert!(arm_list("x=delay:abc").is_err());
    }

    #[test]
    fn rearming_resets_counts() {
        let _g = locked();
        arm("test.rearm", Action::Delay(Duration::ZERO), Trigger::Nth(1));
        hit("test.rearm");
        assert_eq!(fired("test.rearm"), 1);
        arm("test.rearm", Action::Delay(Duration::ZERO), Trigger::Nth(1));
        assert_eq!(hits("test.rearm"), 0);
        assert_eq!(fired("test.rearm"), 0);
        disarm("test.rearm");
    }
}

//! Marking with next-use **predictions** — the paper's §5 future-work
//! direction (“algorithms which can leverage certain predictions about
//! future demands, without losing the worst-case guarantees”).
//!
//! [`PredictiveMarking`] keeps the marking phase structure (which is what
//! gives marking algorithms their worst-case guarantee) but replaces the
//! *uniform* eviction choice by “evict the unmarked page with the farthest
//! **predicted** next use” — the eviction rule of Belady applied to
//! predictions, in the spirit of learning-augmented marking (Lykouris &
//! Vassilvitskii; Rohatgi). With perfect predictions it tracks Belady's
//! choices inside each phase; with garbage predictions it is still a marking
//! algorithm and inherits the O(k) worst case of any marking scheme (the
//! phase structure never evicts a page requested earlier in the phase).

use crate::policy::{Access, PageId, PagingPolicy};
use dcn_util::{FxHashMap, IndexedSet};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// A source of next-use predictions.
pub trait Predictor {
    /// Predicted next time (abstract step counter) at which `page` will be
    /// requested, given the current time `now`. Larger = later;
    /// `u64::MAX` = never again.
    fn predict_next_use(&mut self, page: PageId, now: u64) -> u64;
}

/// An oracle built from the true sequence, with optional multiplicative
/// noise — `noise = 0.0` gives perfect predictions, larger values blur them.
#[derive(Clone, Debug)]
pub struct NoisyOracle {
    /// page -> sorted positions at which it occurs.
    occurrences: FxHashMap<PageId, Vec<u64>>,
    noise: f64,
    rng: SmallRng,
}

impl NoisyOracle {
    /// Builds the oracle from the full request sequence.
    pub fn new(sequence: &[PageId], noise: f64, seed: u64) -> Self {
        assert!(noise >= 0.0, "noise must be non-negative");
        let mut occurrences: FxHashMap<PageId, Vec<u64>> = FxHashMap::default();
        for (i, &p) in sequence.iter().enumerate() {
            occurrences.entry(p).or_default().push(i as u64);
        }
        Self {
            occurrences,
            noise,
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl Predictor for NoisyOracle {
    fn predict_next_use(&mut self, page: PageId, now: u64) -> u64 {
        let truth = match self.occurrences.get(&page) {
            None => u64::MAX,
            Some(positions) => {
                let idx = positions.partition_point(|&t| t <= now);
                positions.get(idx).copied().unwrap_or(u64::MAX)
            }
        };
        if truth == u64::MAX || self.noise == 0.0 {
            return truth;
        }
        // Multiplicative noise: distort the *gap* until next use.
        let gap = (truth - now).max(1) as f64;
        let factor = 1.0 + self.noise * (self.rng.random_range(-1.0..1.0f64));
        now.saturating_add((gap * factor.max(0.0)).round() as u64)
            .max(now + 1)
    }
}

/// Marking algorithm whose eviction choice follows predictions.
#[derive(Debug)]
pub struct PredictiveMarking<P: Predictor> {
    capacity: usize,
    marked: IndexedSet<PageId>,
    unmarked: IndexedSet<PageId>,
    predictor: P,
    now: u64,
}

impl<P: Predictor> PredictiveMarking<P> {
    /// Creates an empty cache driven by `predictor`.
    pub fn new(capacity: usize, predictor: P) -> Self {
        assert!(capacity >= 1, "capacity must be positive");
        Self {
            capacity,
            marked: IndexedSet::with_capacity(capacity),
            unmarked: IndexedSet::with_capacity(capacity),
            predictor,
            now: 0,
        }
    }

    /// Current internal time (number of accesses processed).
    pub fn now(&self) -> u64 {
        self.now
    }
}

impl<P: Predictor> PagingPolicy for PredictiveMarking<P> {
    fn capacity(&self) -> usize {
        self.capacity
    }

    fn len(&self) -> usize {
        self.marked.len() + self.unmarked.len()
    }

    fn contains(&self, page: PageId) -> bool {
        self.marked.contains(&page) || self.unmarked.contains(&page)
    }

    fn access(&mut self, page: PageId) -> Access {
        let now = self.now;
        self.now += 1;
        if self.marked.contains(&page) {
            return Access::Hit;
        }
        if self.unmarked.remove(&page) {
            self.marked.insert(page);
            return Access::Hit;
        }
        let mut evicted = Vec::new();
        if self.len() == self.capacity {
            if self.unmarked.is_empty() {
                for p in self.marked.drain_to_vec() {
                    self.unmarked.insert(p);
                }
            }
            // Evict the unmarked page with the farthest predicted next use.
            let victim = self
                .unmarked
                .iter()
                .map(|&p| (self.predictor.predict_next_use(p, now), p))
                .max()
                .map(|(_, p)| p)
                .expect("full cache must have an unmarked page after phase reset");
            self.unmarked.remove(&victim);
            evicted.push(victim);
        }
        self.marked.insert(page);
        Access::Fault { evicted }
    }

    fn reset(&mut self) {
        self.marked.clear();
        self.unmarked.clear();
        self.now = 0;
    }

    fn cached_pages(&self) -> Vec<PageId> {
        self.marked
            .iter()
            .chain(self.unmarked.iter())
            .copied()
            .collect()
    }

    fn invalidate(&mut self, page: PageId) -> bool {
        self.marked.remove(&page) || self.unmarked.remove(&page)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::belady::Belady;
    use crate::marking::Marking;
    use crate::sim::run_policy;
    use rand::rngs::SmallRng;
    use rand::{RngExt, SeedableRng};

    fn random_zipfy_sequence(len: usize, universe: u64, seed: u64) -> Vec<PageId> {
        // Crude skewed sequence: page j requested with weight 1/(j+1).
        let mut rng = SmallRng::seed_from_u64(seed);
        let weights: Vec<f64> = (0..universe).map(|j| 1.0 / (j + 1) as f64).collect();
        let total: f64 = weights.iter().sum();
        (0..len)
            .map(|_| {
                let mut x = rng.random_range(0.0..total);
                for (j, w) in weights.iter().enumerate() {
                    if x < *w {
                        return j as PageId;
                    }
                    x -= w;
                }
                universe - 1
            })
            .collect()
    }

    #[test]
    fn perfect_predictions_beat_plain_marking() {
        let seq = random_zipfy_sequence(4000, 30, 11);
        let cap = 8;
        let oracle = NoisyOracle::new(&seq, 0.0, 0);
        let predictive = run_policy(&mut PredictiveMarking::new(cap, oracle), &seq).faults;
        // Average plain marking over a few seeds.
        let plain: u64 = (0..5)
            .map(|s| run_policy(&mut Marking::new(cap, s), &seq).faults)
            .sum::<u64>()
            / 5;
        assert!(
            predictive <= plain,
            "perfect predictions should not lose: predictive={predictive} plain={plain}"
        );
    }

    #[test]
    fn perfect_predictions_close_to_opt() {
        let seq = random_zipfy_sequence(4000, 20, 5);
        let cap = 6;
        let oracle = NoisyOracle::new(&seq, 0.0, 0);
        let predictive = run_policy(&mut PredictiveMarking::new(cap, oracle), &seq).faults;
        let opt = Belady::total_faults(cap, &seq);
        // Marking constraints keep it from exactly matching OPT, but with
        // perfect predictions it should be within a factor 2 on easy inputs.
        assert!(
            (predictive as f64) <= 2.0 * opt as f64 + 10.0,
            "predictive={predictive} opt={opt}"
        );
    }

    #[test]
    fn noisy_predictions_still_respect_capacity_and_phases() {
        let seq = random_zipfy_sequence(2000, 25, 3);
        let oracle = NoisyOracle::new(&seq, 5.0, 9); // heavy noise
        let mut p = PredictiveMarking::new(5, oracle);
        for &page in &seq {
            p.access(page);
            assert!(p.len() <= 5);
        }
    }

    #[test]
    fn oracle_predicts_truth_without_noise() {
        let seq: Vec<PageId> = vec![3, 1, 3, 2, 3];
        let mut o = NoisyOracle::new(&seq, 0.0, 0);
        assert_eq!(o.predict_next_use(3, 0), 2);
        assert_eq!(o.predict_next_use(3, 2), 4);
        assert_eq!(o.predict_next_use(3, 4), u64::MAX);
        assert_eq!(o.predict_next_use(7, 0), u64::MAX);
    }
}

//! Segmented LRU: a probationary segment absorbs one-hit wonders, a
//! protected segment keeps re-referenced pages. A classic scan-resistant
//! refinement of LRU, here as an additional deterministic reference point.

use crate::policy::{Access, PageId, PagingPolicy};
use dcn_util::FxHashMap;
use std::collections::BTreeMap;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Segment {
    Probation,
    Protected,
}

/// Segmented LRU cache.
#[derive(Clone, Debug)]
pub struct Slru {
    capacity: usize,
    protected_cap: usize,
    seg_of: FxHashMap<PageId, (Segment, u64)>,
    probation: BTreeMap<u64, PageId>,
    protected: BTreeMap<u64, PageId>,
    clock: u64,
}

impl Slru {
    /// Creates an SLRU cache; `protected_fraction` of the capacity is
    /// reserved for re-referenced pages (clamped to `[0, capacity-1]` so the
    /// probationary segment always exists).
    pub fn new(capacity: usize, protected_fraction: f64) -> Self {
        assert!(capacity >= 1, "capacity must be positive");
        assert!((0.0..=1.0).contains(&protected_fraction));
        let protected_cap =
            ((capacity as f64 * protected_fraction).round() as usize).min(capacity - 1);
        Self {
            capacity,
            protected_cap,
            seg_of: FxHashMap::default(),
            probation: BTreeMap::new(),
            protected: BTreeMap::new(),
            clock: 0,
        }
    }

    fn insert_into(&mut self, page: PageId, seg: Segment) {
        self.clock += 1;
        self.seg_of.insert(page, (seg, self.clock));
        match seg {
            Segment::Probation => self.probation.insert(self.clock, page),
            Segment::Protected => self.protected.insert(self.clock, page),
        };
    }

    fn remove_entry(&mut self, page: PageId) -> Option<Segment> {
        let (seg, stamp) = self.seg_of.remove(&page)?;
        match seg {
            Segment::Probation => self.probation.remove(&stamp),
            Segment::Protected => self.protected.remove(&stamp),
        };
        Some(seg)
    }

    /// Demotes the protected LRU into probation if protected is over cap.
    fn rebalance_protected(&mut self) {
        while self.protected.len() > self.protected_cap {
            let (&stamp, &page) = self.protected.iter().next().expect("non-empty");
            self.protected.remove(&stamp);
            self.seg_of.remove(&page);
            self.insert_into(page, Segment::Probation);
        }
    }
}

impl PagingPolicy for Slru {
    fn capacity(&self) -> usize {
        self.capacity
    }

    fn len(&self) -> usize {
        self.seg_of.len()
    }

    fn contains(&self, page: PageId) -> bool {
        self.seg_of.contains_key(&page)
    }

    fn access(&mut self, page: PageId) -> Access {
        if let Some(&(seg, _)) = self.seg_of.get(&page) {
            // Hit: promote to protected MRU.
            self.remove_entry(page);
            let _ = seg;
            self.insert_into(page, Segment::Protected);
            self.rebalance_protected();
            return Access::Hit;
        }
        let mut evicted = Vec::new();
        if self.len() == self.capacity {
            // Evict probationary LRU; if probation is empty, protected LRU.
            let victim = if let Some((&stamp, &p)) = self.probation.iter().next() {
                self.probation.remove(&stamp);
                p
            } else {
                let (&stamp, &p) = self.protected.iter().next().expect("cache is full");
                self.protected.remove(&stamp);
                p
            };
            self.seg_of.remove(&victim);
            evicted.push(victim);
        }
        self.insert_into(page, Segment::Probation);
        Access::Fault { evicted }
    }

    fn reset(&mut self) {
        self.seg_of.clear();
        self.probation.clear();
        self.protected.clear();
        self.clock = 0;
    }

    fn cached_pages(&self) -> Vec<PageId> {
        self.seg_of.keys().copied().collect()
    }

    fn invalidate(&mut self, page: PageId) -> bool {
        self.remove_entry(page).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::run_policy;

    #[test]
    fn one_hit_wonders_evicted_first() {
        let mut s = Slru::new(4, 0.5);
        s.access(1);
        s.access(1); // 1 re-referenced -> protected
        s.access(2);
        s.access(3);
        s.access(4);
        // Cache full: {1 protected, 2,3,4 probation}. Miss on 5 evicts the
        // probationary LRU (2), never the protected 1.
        let acc = s.access(5);
        assert_eq!(acc.evicted(), &[2]);
        assert!(s.contains(1));
    }

    #[test]
    fn protected_overflow_demotes() {
        let mut s = Slru::new(4, 0.25); // protected cap 1
        s.access(1);
        s.access(1);
        s.access(2);
        s.access(2); // 2 promoted; 1 demoted to probation
        s.access(3);
        s.access(4);
        let acc = s.access(5);
        // Probationary LRU is 1 (demoted earliest).
        assert_eq!(acc.evicted(), &[1]);
        assert!(s.contains(2));
    }

    #[test]
    fn capacity_invariant_under_stress() {
        let mut s = Slru::new(5, 0.6);
        for i in 0..5000u64 {
            s.access(i.wrapping_mul(0x9E3779B97F4A7C15) % 23);
            assert!(s.len() <= 5);
        }
    }

    #[test]
    fn scan_resistance_beats_lru() {
        // Hot set of 3 pages + long scans of cold pages: SLRU keeps the hot
        // set protected, LRU flushes it on every scan.
        let mut seq = Vec::new();
        for round in 0..200u64 {
            for _ in 0..3 {
                seq.push(round % 3); // hot pages 0..3, re-referenced often
            }
            seq.push(100 + round); // cold scan page, never reused
        }
        let slru = run_policy(&mut Slru::new(4, 0.75), &seq).faults;
        let lru = run_policy(&mut crate::lru::Lru::new(4), &seq).faults;
        assert!(
            slru <= lru,
            "SLRU {slru} should not fault more than LRU {lru}"
        );
    }

    #[test]
    fn invalidate_consistent() {
        let mut s = Slru::new(3, 0.5);
        s.access(1);
        s.access(1);
        assert!(s.invalidate(1));
        assert!(!s.contains(1));
        assert!(!s.invalidate(1));
        assert_eq!(s.len(), 0);
    }
}

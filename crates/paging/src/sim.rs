//! Driving sequences through policies and measuring fault counts.

use crate::policy::{PageId, PagingPolicy};
use dcn_util::FxHashSet;

/// Fault/hit tally of a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PagingStats {
    /// Requests that missed (page fetched, cost 1 each).
    pub faults: u64,
    /// Requests served from cache.
    pub hits: u64,
    /// Total pages evicted.
    pub evictions: u64,
}

impl PagingStats {
    /// Total requests processed.
    pub fn requests(&self) -> u64 {
        self.faults + self.hits
    }

    /// Fraction of requests that hit (0 for the empty run).
    pub fn hit_rate(&self) -> f64 {
        let n = self.requests();
        if n == 0 {
            0.0
        } else {
            self.hits as f64 / n as f64
        }
    }
}

/// Feeds `sequence` through `policy`, tallying faults, and asserting the
/// capacity invariant after every access.
pub fn run_policy<P: PagingPolicy + ?Sized>(policy: &mut P, sequence: &[PageId]) -> PagingStats {
    let mut stats = PagingStats::default();
    for &page in sequence {
        let acc = policy.access(page);
        debug_assert!(
            policy.len() <= policy.capacity(),
            "capacity invariant violated"
        );
        debug_assert!(policy.contains(page), "fetch-on-fault invariant violated");
        if acc.is_fault() {
            stats.faults += 1;
            stats.evictions += acc.evicted().len() as u64;
        } else {
            stats.hits += 1;
        }
    }
    stats
}

/// Number of *k-phases* in a sequence: the greedy partition into maximal
/// segments containing at most `k` distinct pages. Any paging algorithm with
/// cache size `k` faults at least once per phase after the first (lower
/// bound device of the marking analysis).
pub fn phase_count(sequence: &[PageId], k: usize) -> usize {
    assert!(k >= 1);
    let mut phases = 0;
    let mut distinct: FxHashSet<PageId> = FxHashSet::default();
    for &p in sequence {
        if distinct.contains(&p) {
            continue;
        }
        if distinct.len() == k {
            phases += 1;
            distinct.clear();
        }
        distinct.insert(p);
    }
    if !distinct.is_empty() {
        phases += 1;
    }
    phases
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fifo::Fifo;
    use crate::lru::Lru;
    use crate::marking::Marking;

    #[test]
    fn stats_accumulate() {
        let mut lru = Lru::new(2);
        let stats = run_policy(&mut lru, &[1, 2, 1, 3, 1]);
        // faults: 1,2,3; hits: 1,1.
        assert_eq!(stats.faults, 3);
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.requests(), 5);
        assert!((stats.hit_rate() - 0.4).abs() < 1e-12);
        assert_eq!(stats.evictions, 1); // only the access to 3 evicted
    }

    #[test]
    fn phases_greedy_partition() {
        // k=2: [1,2] [3,1] [2] -> 3 phases.
        assert_eq!(phase_count(&[1, 2, 1, 3, 1, 2], 2), 3);
        assert_eq!(phase_count(&[], 3), 0);
        assert_eq!(phase_count(&[5, 5, 5], 1), 1);
        assert_eq!(phase_count(&[1, 2, 3], 1), 3);
    }

    #[test]
    fn all_policies_fault_at_least_once_per_phase() {
        use rand::rngs::SmallRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(21);
        let seq: Vec<PageId> = (0..500).map(|_| rng.random_range(0..9u64)).collect();
        let k = 4;
        let phases = phase_count(&seq, k) as u64;
        for faults in [
            run_policy(&mut Lru::new(k), &seq).faults,
            run_policy(&mut Fifo::new(k), &seq).faults,
            run_policy(&mut Marking::new(k, 77), &seq).faults,
        ] {
            assert!(
                faults + 1 >= phases,
                "faults {faults} < phases {phases} - 1"
            );
        }
    }
}

//! The paging-policy contract shared by all cache replacement algorithms.

/// Identifier of a page. In the R-BMA reduction a page is the packed id of
/// the *partner* node of a cached pair; in the standalone paging experiments
/// it is an arbitrary small integer.
pub type PageId = u64;

/// Result of a single page access under fetch-on-fault semantics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Access {
    /// The page was already cached; no cost.
    Hit,
    /// The page was fetched (cost 1); `evicted` lists pages removed to make
    /// room. For most policies this has length 0 (cache not yet full) or 1;
    /// flush-when-full may evict many at once.
    Fault { evicted: Vec<PageId> },
}

impl Access {
    /// Whether this access was a fault.
    pub fn is_fault(&self) -> bool {
        matches!(self, Access::Fault { .. })
    }

    /// Evicted pages (empty slice on a hit).
    pub fn evicted(&self) -> &[PageId] {
        match self {
            Access::Hit => &[],
            Access::Fault { evicted } => evicted,
        }
    }
}

/// An online paging algorithm over a cache of fixed capacity.
///
/// Model: requests arrive one at a time; a requested page **must** be in the
/// cache after the access (no bypassing); fetching costs 1; evictions are
/// free. This is the cost model of Sleator–Tarjan \[70\] that Theorem 2 builds
/// on; the two differences to the matching cost model (bypassing, eviction
/// cost) are absorbed by the reduction in `dcn-core` as in the paper's proof.
pub trait PagingPolicy {
    /// Cache capacity (the `b` of (b,a)-paging).
    fn capacity(&self) -> usize;

    /// Number of currently cached pages (≤ capacity).
    fn len(&self) -> usize;

    /// Whether the cache is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether `page` is cached.
    fn contains(&self, page: PageId) -> bool;

    /// Processes a request for `page`, fetching it on a fault.
    fn access(&mut self, page: PageId) -> Access;

    /// Forgets all cached pages (and any internal state such as marks).
    fn reset(&mut self);

    /// Snapshot of cached pages in unspecified order (diagnostics/tests).
    fn cached_pages(&self) -> Vec<PageId>;

    /// Evicts `page` if cached, returning whether it was. Policies that keep
    /// auxiliary state must stay consistent. Used by callers that prune
    /// caches externally (e.g. R-BMA's strict-invariant mode).
    fn invalidate(&mut self, page: PageId) -> bool;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_inspectors() {
        assert!(!Access::Hit.is_fault());
        assert!(Access::Hit.evicted().is_empty());
        let f = Access::Fault {
            evicted: vec![3, 4],
        };
        assert!(f.is_fault());
        assert_eq!(f.evicted(), &[3, 4]);
    }
}

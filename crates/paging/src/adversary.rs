//! Adversarial request sequences for paging — the engines of the
//! lower-bound experiment (Abl. D in DESIGN.md).
//!
//! Two classical nemeses over a universe of `k + 1` pages:
//!
//! * [`uniform_sequence`] — i.i.d. uniform requests. Against *any* algorithm
//!   with cache size `k`, each request misses with probability ≥ 1/(k+1),
//!   while OPT faults only ~once per k-phase (phase length ≈ (k+1)·H_k);
//!   randomized marking matches the resulting Θ(log k) ratio.
//! * [`Chaser`] — queries the concrete *deterministic* policy for its cache
//!   contents and always requests the one uncached page, forcing a fault on
//!   every request; OPT still faults only ~once per phase, giving the Θ(k)
//!   ratio that separates deterministic from randomized algorithms — the
//!   paper's headline gap.

use crate::policy::{PageId, PagingPolicy};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// I.i.d. uniform sequence over pages `0..=k` (`k+1` pages).
pub fn uniform_sequence(k: usize, len: usize, seed: u64) -> Vec<PageId> {
    assert!(k >= 1);
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..len).map(|_| rng.random_range(0..=(k as u64))).collect()
}

/// Adaptive adversary that defeats deterministic policies: it always
/// requests the unique page (from a `k+1` universe) missing from the cache.
pub struct Chaser {
    universe: Vec<PageId>,
}

impl Chaser {
    /// Universe `0..=k`.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1);
        Self {
            universe: (0..=(k as u64)).collect(),
        }
    }

    /// Next request: a page not cached by `policy` (the smallest, for
    /// determinism). Falls back to page 0 if everything is cached (cannot
    /// happen when `policy.capacity() == k`).
    pub fn next_request<P: PagingPolicy + ?Sized>(&self, policy: &P) -> PageId {
        self.universe
            .iter()
            .copied()
            .find(|&p| !policy.contains(p))
            .unwrap_or(0)
    }

    /// Generates a length-`len` adaptive sequence against `policy`, feeding
    /// each request immediately, and returns (sequence, faults).
    pub fn drive<P: PagingPolicy + ?Sized>(
        &self,
        policy: &mut P,
        len: usize,
    ) -> (Vec<PageId>, u64) {
        let mut seq = Vec::with_capacity(len);
        let mut faults = 0;
        for _ in 0..len {
            let p = self.next_request(policy);
            if policy.access(p).is_fault() {
                faults += 1;
            }
            seq.push(p);
        }
        (seq, faults)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::belady::Belady;
    use crate::lru::Lru;
    use crate::marking::Marking;
    use crate::sim::run_policy;

    #[test]
    fn chaser_forces_fault_every_request() {
        let k = 5;
        let mut lru = Lru::new(k);
        let (seq, faults) = Chaser::new(k).drive(&mut lru, 400);
        assert_eq!(faults, 400);
        assert_eq!(seq.len(), 400);
    }

    #[test]
    fn deterministic_ratio_scales_linearly_but_marking_logarithmically() {
        // The separation the paper is named after, in miniature.
        let k = 16;
        let len = 20_000;
        let mut lru = Lru::new(k);
        let (seq, lru_faults) = Chaser::new(k).drive(&mut lru, len);
        let opt = Belady::total_faults(k, &seq);
        let det_ratio = lru_faults as f64 / opt as f64;
        // On the chaser sequence LRU pays ~k per phase while OPT pays ~1.
        assert!(
            det_ratio > k as f64 * 0.5,
            "deterministic ratio {det_ratio} too small"
        );

        // Randomized marking on the oblivious uniform nemesis: ratio ~2 H_k.
        let useq = uniform_sequence(k, len, 7);
        let mark_faults: u64 = (0..5)
            .map(|s| run_policy(&mut Marking::new(k, s), &useq).faults)
            .sum::<u64>()
            / 5;
        let uopt = Belady::total_faults(k, &useq);
        let rand_ratio = mark_faults as f64 / uopt as f64;
        let h_k: f64 = (1..=k).map(|i| 1.0 / i as f64).sum();
        assert!(
            rand_ratio < 2.0 * h_k + 1.0,
            "marking ratio {rand_ratio} exceeds 2 H_k + 1 = {}",
            2.0 * h_k + 1.0
        );
        assert!(
            rand_ratio < det_ratio,
            "randomized {rand_ratio} should beat deterministic {det_ratio}"
        );
    }

    #[test]
    fn uniform_sequence_uses_whole_universe() {
        let seq = uniform_sequence(4, 10_000, 3);
        let distinct: std::collections::HashSet<_> = seq.iter().collect();
        assert_eq!(distinct.len(), 5);
        assert!(seq.iter().all(|&p| p <= 4));
    }

    #[test]
    fn chaser_is_deterministic() {
        let k = 4;
        let mut a = Lru::new(k);
        let mut b = Lru::new(k);
        let (sa, _) = Chaser::new(k).drive(&mut a, 100);
        let (sb, _) = Chaser::new(k).drive(&mut b, 100);
        assert_eq!(sa, sb);
    }
}

//! Flush-when-full: the simplest marking-family policy — on a fault with a
//! full cache, evict *everything*. `k`-competitive, and a useful stress case
//! for callers because `Access::Fault::evicted` can contain many pages.

use crate::policy::{Access, PageId, PagingPolicy};
use dcn_util::FxHashSet;

/// Flush-when-full cache.
#[derive(Clone, Debug)]
pub struct Fwf {
    capacity: usize,
    cached: FxHashSet<PageId>,
}

impl Fwf {
    /// Creates an empty flush-when-full cache.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "capacity must be positive");
        Self {
            capacity,
            cached: FxHashSet::default(),
        }
    }
}

impl PagingPolicy for Fwf {
    fn capacity(&self) -> usize {
        self.capacity
    }

    fn len(&self) -> usize {
        self.cached.len()
    }

    fn contains(&self, page: PageId) -> bool {
        self.cached.contains(&page)
    }

    fn access(&mut self, page: PageId) -> Access {
        if self.cached.contains(&page) {
            return Access::Hit;
        }
        let mut evicted = Vec::new();
        if self.cached.len() == self.capacity {
            evicted.extend(self.cached.drain());
        }
        self.cached.insert(page);
        Access::Fault { evicted }
    }

    fn reset(&mut self) {
        self.cached.clear();
    }

    fn cached_pages(&self) -> Vec<PageId> {
        self.cached.iter().copied().collect()
    }

    fn invalidate(&mut self, page: PageId) -> bool {
        self.cached.remove(&page)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flushes_all_when_full() {
        let mut f = Fwf::new(3);
        f.access(1);
        f.access(2);
        f.access(3);
        let acc = f.access(4);
        let mut ev = acc.evicted().to_vec();
        ev.sort_unstable();
        assert_eq!(ev, vec![1, 2, 3]);
        assert_eq!(f.len(), 1);
        assert!(f.contains(4));
    }

    #[test]
    fn no_flush_below_capacity() {
        let mut f = Fwf::new(3);
        f.access(1);
        let acc = f.access(2);
        assert!(acc.evicted().is_empty());
    }
}

//! The randomized **marking** algorithm (Fiat et al. \[28\]; Young \[75\]).
//!
//! Pages are *marked* or *unmarked*. A request to a cached page marks it. On
//! a fault with a full cache, if every cached page is marked a new *phase*
//! begins (all marks are cleared); then a **uniformly random unmarked** page
//! is evicted, and the requested page is fetched and marked.
//!
//! Competitive ratio: `2·H_k` against an equal-size offline optimum, and
//! `2·ln(b/(b−a+1)) + O(1)` in the resource-augmented (b,a) setting — the
//! bound Corollary 3 of the paper plugs into the matching reduction. The
//! algorithm itself is identical in both settings; the `a` only appears in
//! the analysis.
//!
//! Every operation is O(1) expected time thanks to [`IndexedSet`]'s O(1)
//! uniform sampling — this is what makes R-BMA's serve path constant-time
//! and underlies the execution-time gap to BMA in Figs. 1b–4b.

use crate::policy::{Access, PageId, PagingPolicy};
use dcn_util::IndexedSet;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Randomized marking paging algorithm.
///
/// ```
/// use dcn_paging::{Marking, PagingPolicy};
///
/// let mut cache = Marking::new(2, 42);
/// assert!(cache.access(1).is_fault()); // cold miss
/// assert!(cache.access(2).is_fault());
/// assert!(!cache.access(1).is_fault()); // hit, page marked
/// let fault = cache.access(3); // full: evicts a random unmarked page
/// assert_eq!(fault.evicted().len(), 1);
/// assert!(cache.len() <= cache.capacity());
/// ```
#[derive(Clone, Debug)]
pub struct Marking {
    capacity: usize,
    marked: IndexedSet<PageId>,
    unmarked: IndexedSet<PageId>,
    rng: SmallRng,
    phases: u64,
}

impl Marking {
    /// Creates an empty cache of the given capacity with a seeded RNG.
    pub fn new(capacity: usize, seed: u64) -> Self {
        assert!(capacity >= 1, "capacity must be positive");
        Self {
            capacity,
            marked: IndexedSet::with_capacity(capacity),
            unmarked: IndexedSet::with_capacity(capacity),
            rng: SmallRng::seed_from_u64(seed),
            phases: 0,
        }
    }

    /// Number of completed phase transitions (diagnostics; the k-phase
    /// structure is the backbone of the marking analysis).
    pub fn phase_transitions(&self) -> u64 {
        self.phases
    }

    /// Whether `page` is currently marked.
    pub fn is_marked(&self, page: PageId) -> bool {
        self.marked.contains(&page)
    }
}

impl PagingPolicy for Marking {
    fn capacity(&self) -> usize {
        self.capacity
    }

    fn len(&self) -> usize {
        self.marked.len() + self.unmarked.len()
    }

    fn contains(&self, page: PageId) -> bool {
        self.marked.contains(&page) || self.unmarked.contains(&page)
    }

    fn access(&mut self, page: PageId) -> Access {
        if self.marked.contains(&page) {
            return Access::Hit;
        }
        if self.unmarked.remove(&page) {
            self.marked.insert(page);
            return Access::Hit;
        }
        // Fault.
        let mut evicted = Vec::new();
        if self.len() == self.capacity {
            if self.unmarked.is_empty() {
                // New phase: clear all marks.
                self.phases += 1;
                for p in self.marked.drain_to_vec() {
                    self.unmarked.insert(p);
                }
            }
            let victim = self
                .unmarked
                .sample_remove(&mut self.rng)
                .expect("full cache must have an unmarked page after phase reset");
            evicted.push(victim);
        }
        self.marked.insert(page);
        Access::Fault { evicted }
    }

    fn reset(&mut self) {
        self.marked.clear();
        self.unmarked.clear();
        self.phases = 0;
    }

    fn cached_pages(&self) -> Vec<PageId> {
        self.marked
            .iter()
            .chain(self.unmarked.iter())
            .copied()
            .collect()
    }

    fn invalidate(&mut self, page: PageId) -> bool {
        self.marked.remove(&page) || self.unmarked.remove(&page)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_cache_without_eviction() {
        let mut m = Marking::new(3, 0);
        for p in 0..3 {
            match m.access(p) {
                Access::Fault { evicted } => assert!(evicted.is_empty()),
                Access::Hit => panic!("unexpected hit"),
            }
        }
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn hits_after_fill() {
        let mut m = Marking::new(3, 0);
        for p in 0..3 {
            m.access(p);
        }
        for p in 0..3 {
            assert_eq!(m.access(p), Access::Hit);
        }
    }

    #[test]
    fn evicts_exactly_one_when_full() {
        let mut m = Marking::new(2, 1);
        m.access(0);
        m.access(1);
        let acc = m.access(2);
        assert!(acc.is_fault());
        assert_eq!(acc.evicted().len(), 1);
        assert_eq!(m.len(), 2);
        assert!(m.contains(2));
    }

    #[test]
    fn never_evicts_marked_pages_within_phase() {
        // Capacity 3; access 0,1 (marked), then a run of new pages. Page 0
        // and 1 were marked in the current phase; the first eviction of the
        // phase must take the only unmarked page.
        let mut m = Marking::new(3, 7);
        m.access(0);
        m.access(1);
        m.access(2);
        m.access(0); // re-mark (hit)
        m.access(1); // re-mark (hit)
                     // All three are marked now (2 marked at fetch). Fault on 3 starts a
                     // new phase; any of 0,1,2 may go. But *within* the new phase, 3 is
                     // marked, so the next fault cannot evict 3.
        let first = m.access(3);
        assert!(first.is_fault());
        let second = m.access(4);
        assert!(second.is_fault());
        assert!(
            !second.evicted().contains(&3),
            "marked page 3 evicted within phase"
        );
        assert!(m.contains(3) && m.contains(4));
    }

    #[test]
    fn phase_counting() {
        let mut m = Marking::new(2, 3);
        m.access(0);
        m.access(1);
        assert_eq!(m.phase_transitions(), 0);
        m.access(2); // all marked -> new phase
        assert_eq!(m.phase_transitions(), 1);
    }

    #[test]
    fn deterministic_under_seed() {
        let run = |seed: u64| {
            let mut m = Marking::new(4, seed);
            let mut faults = 0;
            let mut trace = Vec::new();
            for i in 0..2000u64 {
                let p = i.wrapping_mul(0x9E37_79B9_7F4A_7C15) % 9;
                let acc = m.access(p);
                if acc.is_fault() {
                    faults += 1;
                }
                trace.extend_from_slice(acc.evicted());
            }
            (faults, trace)
        };
        assert_eq!(run(5), run(5));
        // Different seeds will (with overwhelming probability) evict differently.
        assert_ne!(run(5).1, run(6).1);
    }

    #[test]
    fn invalidate_removes_any_state() {
        let mut m = Marking::new(2, 0);
        m.access(0);
        m.access(1);
        assert!(m.invalidate(0));
        assert!(!m.contains(0));
        assert_eq!(m.len(), 1);
        assert!(!m.invalidate(0));
        // Cache has room again: next fault must not evict.
        let acc = m.access(9);
        assert!(acc.is_fault() && acc.evicted().is_empty());
    }

    #[test]
    fn reset_clears_everything() {
        let mut m = Marking::new(2, 0);
        m.access(0);
        m.access(1);
        m.access(2);
        m.reset();
        assert_eq!(m.len(), 0);
        assert_eq!(m.phase_transitions(), 0);
        assert!(!m.contains(2));
    }
}

//! **DenseMarking** — the flat-layout randomized marking cache behind
//! R-BMA's batched serve loop.
//!
//! [`Marking`](crate::Marking) keeps its marked/unmarked sets in generic
//! hash-indexed [`IndexedSet`](dcn_util::IndexedSet)s because standalone
//! paging experiments use arbitrary `u64` page ids. In the R-BMA reduction,
//! however, page ids are *partner rack ids* — a dense universe `0..n` known
//! at construction — so the hash index can be replaced by flat
//! index-addressed arrays: a `slot` table (page → dense-vector position), a
//! cached-page **bitset** and a mark **bitset**. Every access is then a
//! couple of bit probes plus at most one swap-remove in a dense vector: no
//! hashing, no pointer chasing, and — via [`DenseMarking::access_dense`] —
//! no per-fault `Vec` allocation (marking evicts at most one page).
//!
//! Behavioral contract: **draw-for-draw identical to
//! [`Marking`](crate::Marking)** under the same seed. The dense vectors
//! evolve exactly like `IndexedSet`'s storage (append on insert,
//! swap-remove on removal; the phase reset moves the marked vector
//! wholesale, preserving order), and the victim draw consumes one
//! `random_range(0..len)` from the same position of the same seeded
//! stream — so swapping `Marking` for `DenseMarking` inside R-BMA changes
//! no simulated cost. `tests` pins this equivalence access by access.

use crate::policy::{Access, PageId, PagingPolicy};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// How many raw RNG words one refill pulls into the draw buffer. Small
/// enough that a cloned cache carries negligible pre-drawn state, large
/// enough to amortize the generator's state load/store across faults.
const RNG_BLOCK: usize = 8;

/// Result of one access on the allocation-free path: marking evicts at most
/// one page per fault, so no `Vec` is needed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DenseAccess {
    /// The page was cached (and is now marked).
    Hit,
    /// The page was fetched; `evicted` is the victim, if the cache was full.
    Fault {
        /// Page evicted to make room (`None` while the cache fills up).
        evicted: Option<PageId>,
    },
}

impl DenseAccess {
    /// Whether this access was a fault.
    #[inline]
    pub fn is_fault(self) -> bool {
        matches!(self, DenseAccess::Fault { .. })
    }
}

#[inline]
fn bit(bits: &[u64], i: usize) -> bool {
    bits[i >> 6] >> (i & 63) & 1 != 0
}

#[inline]
fn set_bit(bits: &mut [u64], i: usize) {
    bits[i >> 6] |= 1 << (i & 63);
}

#[inline]
fn clear_bit(bits: &mut [u64], i: usize) {
    bits[i >> 6] &= !(1 << (i & 63));
}

/// Randomized marking over a dense page universe `0..num_pages`, flat
/// layout, allocation-free accesses.
#[derive(Clone, Debug)]
pub struct DenseMarking {
    capacity: usize,
    num_pages: usize,
    /// Dense list of marked pages (insertion order, swap-removed).
    marked_items: Vec<PageId>,
    /// Dense list of unmarked pages (insertion order, swap-removed); the
    /// eviction victim is drawn uniformly from this vector.
    unmarked_items: Vec<PageId>,
    /// Page → position in whichever dense list holds it.
    slot: Vec<u32>,
    /// Bitset: page currently cached.
    cached: Vec<u64>,
    /// Bitset: page currently marked (implies cached).
    marked: Vec<u64>,
    rng: SmallRng,
    /// Precomputed rejection zones for the eviction draw, indexed by span
    /// (`zones[s]` for `1 ≤ s ≤ capacity`): the largest draw the
    /// rejection sampler accepts for that span. Hoisting the two modulos
    /// out of the per-fault hot path changes nothing about which draws
    /// are accepted — `tests::replays_marking_access_for_access` pins it.
    zones: Vec<u64>,
    /// Block-refilled scratch of raw RNG words for the eviction draws
    /// (the "per-chunk draw buffer" of the specials fast path). Buffering
    /// only *prefetches* the very words `random_range` would pull one at
    /// a time, in order, so the byte stream is untouched by construction.
    /// Note spans of 1 consume **no** word (the sampler early-returns 0),
    /// exactly as the unbuffered path.
    words: [u64; RNG_BLOCK],
    /// Next unconsumed index into `words` (`RNG_BLOCK` = buffer empty).
    word_pos: usize,
    phases: u64,
}

impl DenseMarking {
    /// Empty cache of `capacity` over pages `0..num_pages`, seeded RNG.
    pub fn new(capacity: usize, num_pages: usize, seed: u64) -> Self {
        assert!(capacity >= 1, "capacity must be positive");
        let words = num_pages.div_ceil(64).max(1);
        // zones[0] is a pad; zones[1] is never consulted (span-1 draws
        // return 0 without sampling, mirroring the generic sampler).
        let zones = (0..=capacity as u64)
            .map(|s| {
                if s == 0 {
                    0
                } else {
                    u64::MAX - (u64::MAX - s + 1) % s
                }
            })
            .collect();
        Self {
            capacity,
            num_pages,
            marked_items: Vec::with_capacity(capacity),
            unmarked_items: Vec::with_capacity(capacity),
            slot: vec![0; num_pages],
            cached: vec![0; words],
            marked: vec![0; words],
            rng: SmallRng::seed_from_u64(seed),
            zones,
            words: [0; RNG_BLOCK],
            word_pos: RNG_BLOCK,
            phases: 0,
        }
    }

    /// Size of the page universe.
    pub fn num_pages(&self) -> usize {
        self.num_pages
    }

    /// Number of completed phase transitions (diagnostics).
    pub fn phase_transitions(&self) -> u64 {
        self.phases
    }

    /// Whether `page` is currently marked.
    #[inline]
    pub fn is_marked(&self, page: PageId) -> bool {
        bit(&self.marked, page as usize)
    }

    /// Swap-removes the page at `idx` of `items`, fixing the moved slot.
    #[inline]
    fn swap_remove(items: &mut Vec<PageId>, slot: &mut [u32], idx: usize) -> PageId {
        let victim = items.swap_remove(idx);
        if idx < items.len() {
            slot[items[idx] as usize] = idx as u32;
        }
        victim
    }

    /// One indexed pass over both bitsets: `(cached, marked)` for `page`.
    /// Read-only — callers hoist this ahead of the mutating paths (the
    /// R-BMA specials fast path probes both endpoints' slots up front).
    #[inline]
    pub fn probe(&self, page: PageId) -> (bool, bool) {
        let i = page as usize;
        debug_assert!(i < self.num_pages, "page {page} outside dense universe");
        (bit(&self.cached, i), bit(&self.marked, i))
    }

    /// The hit half of [`Self::access_dense`] with the cached probe already
    /// done by the caller: marks `page`, moving it from the unmarked to the
    /// marked list if needed. `page` **must** be cached.
    #[inline]
    pub fn mark_cached_hit(&mut self, page: PageId) {
        let i = page as usize;
        debug_assert!(bit(&self.cached, i), "page {page} is not cached");
        if !bit(&self.marked, i) {
            let idx = self.slot[i] as usize;
            Self::swap_remove(&mut self.unmarked_items, &mut self.slot, idx);
            set_bit(&mut self.marked, i);
            self.slot[i] = self.marked_items.len() as u32;
            self.marked_items.push(page);
        }
    }

    /// Draws a uniform victim index in `0..len` from the buffered word
    /// stream — byte-for-byte the words (and rejections) `random_range`
    /// would consume, with the rejection zone looked up instead of
    /// recomputed. `len == 1` consumes nothing, as in the generic sampler.
    #[inline]
    fn draw_index(&mut self, len: usize) -> usize {
        if len == 1 {
            return 0;
        }
        let zone = self.zones[len];
        loop {
            if self.word_pos == RNG_BLOCK {
                for w in &mut self.words {
                    *w = self.rng.next_u64();
                }
                self.word_pos = 0;
            }
            let draw = self.words[self.word_pos];
            self.word_pos += 1;
            if draw <= zone {
                return (draw % len as u64) as usize;
            }
        }
    }

    /// Processes one access without allocating; see [`DenseAccess`].
    #[inline]
    pub fn access_dense(&mut self, page: PageId) -> DenseAccess {
        let i = page as usize;
        debug_assert!(i < self.num_pages, "page {page} outside dense universe");
        if bit(&self.cached, i) {
            self.mark_cached_hit(page);
            return DenseAccess::Hit;
        }
        // Fault.
        let mut evicted = None;
        if self.marked_items.len() + self.unmarked_items.len() == self.capacity {
            if self.unmarked_items.is_empty() {
                // New phase: all marks drop; the marked list becomes the
                // unmarked list wholesale (order — and therefore the future
                // victim draws — exactly as Marking's drain-and-reinsert).
                self.phases += 1;
                std::mem::swap(&mut self.marked_items, &mut self.unmarked_items);
                for &p in &self.unmarked_items {
                    clear_bit(&mut self.marked, p as usize);
                }
            }
            let idx = self.draw_index(self.unmarked_items.len());
            let victim = Self::swap_remove(&mut self.unmarked_items, &mut self.slot, idx);
            clear_bit(&mut self.cached, victim as usize);
            evicted = Some(victim);
        }
        set_bit(&mut self.cached, i);
        set_bit(&mut self.marked, i);
        self.slot[i] = self.marked_items.len() as u32;
        self.marked_items.push(page);
        DenseAccess::Fault { evicted }
    }
}

impl PagingPolicy for DenseMarking {
    fn capacity(&self) -> usize {
        self.capacity
    }

    fn len(&self) -> usize {
        self.marked_items.len() + self.unmarked_items.len()
    }

    fn contains(&self, page: PageId) -> bool {
        (page as usize) < self.num_pages && bit(&self.cached, page as usize)
    }

    fn access(&mut self, page: PageId) -> Access {
        match self.access_dense(page) {
            DenseAccess::Hit => Access::Hit,
            DenseAccess::Fault { evicted } => Access::Fault {
                evicted: evicted.into_iter().collect(),
            },
        }
    }

    fn reset(&mut self) {
        self.marked_items.clear();
        self.unmarked_items.clear();
        self.cached.fill(0);
        self.marked.fill(0);
        self.phases = 0;
    }

    fn cached_pages(&self) -> Vec<PageId> {
        self.marked_items
            .iter()
            .chain(self.unmarked_items.iter())
            .copied()
            .collect()
    }

    fn invalidate(&mut self, page: PageId) -> bool {
        let i = page as usize;
        if i >= self.num_pages || !bit(&self.cached, i) {
            return false;
        }
        let idx = self.slot[i] as usize;
        if bit(&self.marked, i) {
            Self::swap_remove(&mut self.marked_items, &mut self.slot, idx);
            clear_bit(&mut self.marked, i);
        } else {
            Self::swap_remove(&mut self.unmarked_items, &mut self.slot, idx);
        }
        clear_bit(&mut self.cached, i);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Marking;
    use rand::RngExt;

    /// The hard contract: DenseMarking replays Marking access for access —
    /// same hits, same faults, same victims, same phase count — because
    /// both consume the same seeded draws over identically-ordered dense
    /// storage. This is what lets R-BMA swap layouts without changing any
    /// simulated cost.
    #[test]
    fn replays_marking_access_for_access() {
        for seed in [0u64, 1, 9, 0xFEED] {
            for (capacity, universe) in [(2usize, 5usize), (4, 16), (8, 64), (3, 100)] {
                let mut reference = Marking::new(capacity, seed);
                let mut dense = DenseMarking::new(capacity, universe, seed);
                let mut walk = SmallRng::seed_from_u64(seed ^ 0xA5A5);
                for step in 0..5_000u32 {
                    let page = walk.random_range(0..universe as u64);
                    let expected = reference.access(page);
                    let got = dense.access(page);
                    assert_eq!(got, expected, "divergence at step {step} (seed {seed})");
                    assert_eq!(dense.len(), reference.len());
                    assert_eq!(dense.is_marked(page), reference.is_marked(page));
                }
                assert_eq!(dense.phase_transitions(), reference.phase_transitions());
                let mut a = dense.cached_pages();
                let mut b = reference.cached_pages();
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn probe_and_mark_hit_match_access_on_cached_pages() {
        // Mixing the hoisted hit path (probe + mark_cached_hit) with full
        // accesses must leave state and RNG stream identical to always
        // calling access_dense: hits never draw, so streams cannot diverge.
        for seed in [2u64, 11] {
            let universe = 24usize;
            let mut reference = DenseMarking::new(5, universe, seed);
            let mut hoisted = DenseMarking::new(5, universe, seed);
            let mut walk = SmallRng::seed_from_u64(seed ^ 0x5C5C);
            for _ in 0..3_000u32 {
                let page = walk.random_range(0..universe as u64);
                let expected = reference.access_dense(page);
                let (cached, _) = hoisted.probe(page);
                if cached {
                    hoisted.mark_cached_hit(page);
                    assert_eq!(expected, DenseAccess::Hit);
                } else {
                    assert_eq!(hoisted.access_dense(page), expected);
                }
                assert_eq!(hoisted.cached_pages(), reference.cached_pages());
            }
        }
    }

    #[test]
    fn invalidate_matches_marking() {
        for seed in [3u64, 7] {
            let universe = 32usize;
            let mut reference = Marking::new(4, seed);
            let mut dense = DenseMarking::new(4, universe, seed);
            let mut walk = SmallRng::seed_from_u64(seed);
            for _ in 0..2_000u32 {
                let page = walk.random_range(0..universe as u64);
                if walk.random_range(0..5u32) == 0 {
                    assert_eq!(dense.invalidate(page), reference.invalidate(page));
                } else {
                    assert_eq!(dense.access(page), reference.access(page));
                }
            }
        }
    }

    #[test]
    fn dense_access_is_alloc_free_shape() {
        // Fill, then fault with eviction: the dense path reports at most
        // one victim inline.
        let mut m = DenseMarking::new(2, 8, 1);
        assert_eq!(m.access_dense(0), DenseAccess::Fault { evicted: None });
        assert_eq!(m.access_dense(1), DenseAccess::Fault { evicted: None });
        assert_eq!(m.access_dense(0), DenseAccess::Hit);
        match m.access_dense(2) {
            DenseAccess::Fault { evicted: Some(v) } => assert!(v < 2),
            other => panic!("expected eviction, got {other:?}"),
        }
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn reset_clears_everything() {
        let mut m = DenseMarking::new(2, 8, 0);
        m.access(0);
        m.access(1);
        m.access(2);
        m.reset();
        assert_eq!(m.len(), 0);
        assert_eq!(m.phase_transitions(), 0);
        assert!(!m.contains(2));
        assert!(!m.is_marked(2));
    }

    #[test]
    fn contains_is_bounds_safe() {
        let m = DenseMarking::new(2, 4, 0);
        assert!(!m.contains(9_999), "out-of-universe pages are just absent");
    }
}

//! CLOCK (second-chance) — the classic constant-overhead LRU approximation
//! used by real operating systems.

use crate::policy::{Access, PageId, PagingPolicy};
use dcn_util::FxHashMap;

/// CLOCK replacement: pages sit on a circular buffer with a reference bit;
/// the hand clears bits until it finds an unreferenced victim.
#[derive(Clone, Debug)]
pub struct Clock {
    capacity: usize,
    /// Circular buffer slots: (page, referenced). `None` = free slot.
    slots: Vec<Option<(PageId, bool)>>,
    slot_of: FxHashMap<PageId, usize>,
    hand: usize,
    used: usize,
}

impl Clock {
    /// Creates an empty CLOCK cache.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "capacity must be positive");
        Self {
            capacity,
            slots: vec![None; capacity],
            slot_of: FxHashMap::default(),
            hand: 0,
            used: 0,
        }
    }

    fn advance(&mut self) {
        self.hand = (self.hand + 1) % self.capacity;
    }
}

impl PagingPolicy for Clock {
    fn capacity(&self) -> usize {
        self.capacity
    }

    fn len(&self) -> usize {
        self.used
    }

    fn contains(&self, page: PageId) -> bool {
        self.slot_of.contains_key(&page)
    }

    fn access(&mut self, page: PageId) -> Access {
        if let Some(&slot) = self.slot_of.get(&page) {
            if let Some(entry) = self.slots[slot].as_mut() {
                entry.1 = true;
            }
            return Access::Hit;
        }
        let mut evicted = Vec::new();
        if self.used == self.capacity {
            // Sweep: give referenced pages a second chance.
            loop {
                match self.slots[self.hand].as_mut() {
                    Some(entry) if entry.1 => {
                        entry.1 = false;
                        self.advance();
                    }
                    Some(entry) => {
                        let victim = entry.0;
                        self.slots[self.hand] = None;
                        self.slot_of.remove(&victim);
                        self.used -= 1;
                        evicted.push(victim);
                        break;
                    }
                    None => self.advance(), // hole left by invalidate()
                }
            }
        }
        // Place into the first free slot from the hand onward.
        while self.slots[self.hand].is_some() {
            self.advance();
        }
        self.slots[self.hand] = Some((page, true));
        self.slot_of.insert(page, self.hand);
        self.used += 1;
        self.advance();
        Access::Fault { evicted }
    }

    fn reset(&mut self) {
        self.slots.iter_mut().for_each(|s| *s = None);
        self.slot_of.clear();
        self.hand = 0;
        self.used = 0;
    }

    fn cached_pages(&self) -> Vec<PageId> {
        self.slot_of.keys().copied().collect()
    }

    fn invalidate(&mut self, page: PageId) -> bool {
        match self.slot_of.remove(&page) {
            Some(slot) => {
                self.slots[slot] = None;
                self.used -= 1;
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_fill_and_hit() {
        let mut c = Clock::new(3);
        assert!(c.access(1).is_fault());
        assert!(c.access(2).is_fault());
        assert_eq!(c.access(1), Access::Hit);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn second_chance_spares_referenced() {
        let mut c = Clock::new(2);
        c.access(1);
        c.access(2);
        c.access(1); // reference 1
                     // Fault: hand sweeps, clears 1's bit... both were inserted with
                     // bit=true, so the sweep clears both and evicts the first
                     // unreferenced slot it revisits (slot of 1 cleared first, then 2
                     // cleared, then 1 evicted on second pass? No: after clearing both,
                     // hand returns to slot 0 which is now unreferenced -> evict).
        let acc = c.access(3);
        assert_eq!(acc.evicted().len(), 1);
        assert!(c.contains(3));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut c = Clock::new(4);
        for i in 0..200u64 {
            c.access(i % 9);
            assert!(c.len() <= 4);
        }
    }

    #[test]
    fn invalidate_leaves_hole_then_reuses() {
        let mut c = Clock::new(3);
        c.access(1);
        c.access(2);
        c.access(3);
        assert!(c.invalidate(2));
        assert_eq!(c.len(), 2);
        let acc = c.access(4);
        assert!(
            acc.is_fault() && acc.evicted().is_empty(),
            "hole must be reused"
        );
        assert_eq!(c.len(), 3);
    }
}

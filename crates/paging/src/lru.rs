//! Least-recently-used eviction — the classic `k`-competitive deterministic
//! policy (Sleator–Tarjan \[70\]).

use crate::policy::{Access, PageId, PagingPolicy};
use dcn_util::FxHashMap;
use std::collections::BTreeMap;

/// LRU cache: evicts the page whose last access is oldest.
///
/// Implemented as a monotone timestamp per page plus an ordered index from
/// timestamp to page; all operations are O(log b).
#[derive(Clone, Debug)]
pub struct Lru {
    capacity: usize,
    stamp_of: FxHashMap<PageId, u64>,
    by_stamp: BTreeMap<u64, PageId>,
    clock: u64,
}

impl Lru {
    /// Creates an empty LRU cache.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "capacity must be positive");
        Self {
            capacity,
            stamp_of: FxHashMap::default(),
            by_stamp: BTreeMap::new(),
            clock: 0,
        }
    }

    fn touch(&mut self, page: PageId) {
        self.clock += 1;
        if let Some(old) = self.stamp_of.insert(page, self.clock) {
            self.by_stamp.remove(&old);
        }
        self.by_stamp.insert(self.clock, page);
    }
}

impl PagingPolicy for Lru {
    fn capacity(&self) -> usize {
        self.capacity
    }

    fn len(&self) -> usize {
        self.stamp_of.len()
    }

    fn contains(&self, page: PageId) -> bool {
        self.stamp_of.contains_key(&page)
    }

    fn access(&mut self, page: PageId) -> Access {
        if self.contains(page) {
            self.touch(page);
            return Access::Hit;
        }
        let mut evicted = Vec::new();
        if self.len() == self.capacity {
            let (&oldest, &victim) = self.by_stamp.iter().next().expect("cache is full");
            self.by_stamp.remove(&oldest);
            self.stamp_of.remove(&victim);
            evicted.push(victim);
        }
        self.touch(page);
        Access::Fault { evicted }
    }

    fn reset(&mut self) {
        self.stamp_of.clear();
        self.by_stamp.clear();
        self.clock = 0;
    }

    fn cached_pages(&self) -> Vec<PageId> {
        self.stamp_of.keys().copied().collect()
    }

    fn invalidate(&mut self, page: PageId) -> bool {
        match self.stamp_of.remove(&page) {
            Some(stamp) => {
                self.by_stamp.remove(&stamp);
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recent() {
        let mut lru = Lru::new(2);
        lru.access(1);
        lru.access(2);
        lru.access(1); // 2 is now least recent
        let acc = lru.access(3);
        assert_eq!(acc.evicted(), &[2]);
        assert!(lru.contains(1) && lru.contains(3));
    }

    #[test]
    fn cyclic_scan_thrashes() {
        // Universe of capacity+1 pages accessed cyclically: LRU faults on
        // every access after warmup — its textbook worst case.
        let mut lru = Lru::new(3);
        let mut faults = 0;
        for i in 0..40u64 {
            if lru.access(i % 4).is_fault() {
                faults += 1;
            }
        }
        assert_eq!(faults, 40);
    }

    #[test]
    fn repeated_hits() {
        let mut lru = Lru::new(2);
        lru.access(7);
        for _ in 0..10 {
            assert_eq!(lru.access(7), Access::Hit);
        }
        assert_eq!(lru.len(), 1);
    }

    #[test]
    fn invalidate_then_reuse() {
        let mut lru = Lru::new(2);
        lru.access(1);
        lru.access(2);
        assert!(lru.invalidate(1));
        let acc = lru.access(3);
        assert!(acc.is_fault() && acc.evicted().is_empty());
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn reset_empties() {
        let mut lru = Lru::new(2);
        lru.access(1);
        lru.reset();
        assert_eq!(lru.len(), 0);
        assert!(!lru.contains(1));
    }
}

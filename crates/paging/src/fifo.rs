//! First-in-first-out eviction.

use crate::policy::{Access, PageId, PagingPolicy};
use dcn_util::FxHashSet;
use std::collections::VecDeque;

/// FIFO cache: evicts the page fetched longest ago, regardless of use.
#[derive(Clone, Debug)]
pub struct Fifo {
    capacity: usize,
    queue: VecDeque<PageId>,
    cached: FxHashSet<PageId>,
}

impl Fifo {
    /// Creates an empty FIFO cache.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "capacity must be positive");
        Self {
            capacity,
            queue: VecDeque::with_capacity(capacity),
            cached: FxHashSet::default(),
        }
    }
}

impl PagingPolicy for Fifo {
    fn capacity(&self) -> usize {
        self.capacity
    }

    fn len(&self) -> usize {
        self.cached.len()
    }

    fn contains(&self, page: PageId) -> bool {
        self.cached.contains(&page)
    }

    fn access(&mut self, page: PageId) -> Access {
        if self.cached.contains(&page) {
            return Access::Hit;
        }
        let mut evicted = Vec::new();
        if self.cached.len() == self.capacity {
            // Skip queue entries already invalidated externally.
            while let Some(victim) = self.queue.pop_front() {
                if self.cached.remove(&victim) {
                    evicted.push(victim);
                    break;
                }
            }
        }
        self.cached.insert(page);
        self.queue.push_back(page);
        Access::Fault { evicted }
    }

    fn reset(&mut self) {
        self.queue.clear();
        self.cached.clear();
    }

    fn cached_pages(&self) -> Vec<PageId> {
        self.cached.iter().copied().collect()
    }

    fn invalidate(&mut self, page: PageId) -> bool {
        // Lazy removal from the queue: stale entries are skipped at eviction.
        self.cached.remove(&page)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_in_arrival_order() {
        let mut f = Fifo::new(2);
        f.access(1);
        f.access(2);
        f.access(1); // hit: does NOT refresh FIFO position
        let acc = f.access(3);
        assert_eq!(acc.evicted(), &[1]);
    }

    #[test]
    fn hit_keeps_size() {
        let mut f = Fifo::new(2);
        f.access(1);
        assert_eq!(f.access(1), Access::Hit);
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn invalidate_is_lazy_but_correct() {
        let mut f = Fifo::new(2);
        f.access(1);
        f.access(2);
        assert!(f.invalidate(1));
        assert_eq!(f.len(), 1);
        // Room now: no eviction even though queue still holds a stale 1.
        let acc = f.access(3);
        assert!(acc.evicted().is_empty());
        // Next eviction must take 2 (1's queue entry is stale).
        let acc = f.access(4);
        assert_eq!(acc.evicted(), &[2]);
    }

    #[test]
    fn reset_empties() {
        let mut f = Fifo::new(2);
        f.access(1);
        f.reset();
        assert!(f.is_empty());
    }
}

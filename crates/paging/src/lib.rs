//! # dcn-paging
//!
//! The **paging substrate** behind R-BMA. Theorem 2 of the paper reduces the
//! uniform (b,a)-matching problem to (b,a)-**paging**: one paging instance per
//! node whose cache (capacity `b`) holds the node pairs incident to it. The
//! randomized marking algorithm ([`Marking`]) plugged into that reduction
//! gives the `O(log(b/(b−a+1)))`-competitive uniform algorithm; Lemma 1 runs
//! the reduction in reverse to obtain the lower bound.
//!
//! The crate implements the classic paging model: a cache of fixed capacity,
//! fetch-on-fault (no bypassing), unit fault cost, free evictions — exactly
//! the model the paper's Theorem 2 adapts (§2.2 discusses the two cost-model
//! differences and handles them inside the proof; the reduction code in
//! `dcn-core` mirrors that).
//!
//! Policies:
//!
//! * [`Marking`] — randomized marking (Fiat et al. \[28\]); also the
//!   (b,a)-variant of Young \[75\] (the algorithm is identical, only the
//!   analysis compares against a smaller offline cache).
//! * [`DenseMarking`] — the same algorithm over a dense page universe
//!   known at construction (R-BMA's per-rack caches hold partner rack
//!   ids): flat index-addressed slot tables plus cached/marked bitsets,
//!   and an allocation-free access path. Draw-for-draw identical to
//!   [`Marking`] under the same seed (tested), so the two are
//!   interchangeable without changing simulated costs. Callers that can
//!   prove an access is a cached hit (R-BMA's matched-and-unmarked
//!   specials gate) may take the `mark_cached_hit` entry directly,
//!   skipping the probe/fault machinery with identical observable state.
//! * [`Lru`], [`Fifo`], [`Fwf`], [`RandomEvict`], [`Lfu`], [`Clock`] —
//!   deterministic and randomized baselines.
//! * [`Belady`] — the offline optimum (farthest-in-future), used as the
//!   denominator of empirical competitive ratios.
//! * [`PredictiveMarking`] — marking with next-use predictions (the paper's
//!   §5 future-work direction), robust to prediction noise.
//!
//! [`adversary`] generates nemesis sequences: the uniform random sequence
//! over `k+1` pages (hard for randomized algorithms) and a *chaser* that
//! defeats any deterministic policy by always requesting an uncached page.
//! These drive the Θ(b) vs Θ(log b) separation experiment.

pub mod adversary;
pub mod belady;
pub mod clock;
pub mod competitive;
pub mod dense;
pub mod fifo;
pub mod fwf;
pub mod lfu;
pub mod lru;
pub mod marking;
pub mod policy;
pub mod predictive;
pub mod random_evict;
pub mod sim;
pub mod slru;

pub use belady::Belady;
pub use clock::Clock;
pub use competitive::{empirical_ratio, marking_ratio, young_bound};
pub use dense::{DenseAccess, DenseMarking};
pub use fifo::Fifo;
pub use fwf::Fwf;
pub use lfu::Lfu;
pub use lru::Lru;
pub use marking::Marking;
pub use policy::{Access, PageId, PagingPolicy};
pub use predictive::{NoisyOracle, PredictiveMarking, Predictor};
pub use random_evict::RandomEvict;
pub use sim::{phase_count, run_policy, PagingStats};
pub use slru::Slru;

//! Empirical competitive-ratio harness: fault counts of online policies
//! normalized by the offline optimum, including the resource-augmented
//! (b,a) setting of the paper's analysis.

use crate::belady::Belady;
use crate::policy::{PageId, PagingPolicy};
use crate::sim::run_policy;

/// Empirical competitive ratio of `policy` (cache size as constructed)
/// against Belady with cache size `opt_capacity` — set it below the
/// policy's capacity for the (b,a)-augmented comparison of Young \[75\].
///
/// Returns `faults(policy) / faults(OPT_a)`; `f64::INFINITY` if OPT never
/// faults while the policy does.
pub fn empirical_ratio<P: PagingPolicy + ?Sized>(
    policy: &mut P,
    opt_capacity: usize,
    sequence: &[PageId],
) -> f64 {
    let online = run_policy(policy, sequence).faults;
    let opt = Belady::total_faults(opt_capacity, sequence);
    if opt == 0 {
        if online == 0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        online as f64 / opt as f64
    }
}

/// Averaged empirical ratio of randomized marking over `seeds` runs.
pub fn marking_ratio(capacity: usize, opt_capacity: usize, sequence: &[PageId], seeds: u64) -> f64 {
    assert!(seeds >= 1);
    let total: f64 = (0..seeds)
        .map(|s| {
            empirical_ratio(
                &mut crate::marking::Marking::new(capacity, s),
                opt_capacity,
                sequence,
            )
        })
        .sum();
    total / seeds as f64
}

/// The theoretical (b,a)-paging bound the paper plugs into Corollary 3:
/// `2·ln(b/(b−a+1)) + O(1)`; exposed so experiments can plot measured vs
/// predicted. Returns the bound without the additive constant.
pub fn young_bound(b: usize, a: usize) -> f64 {
    assert!(a >= 1 && a <= b);
    2.0 * ((b as f64) / (b as f64 - a as f64 + 1.0)).ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::uniform_sequence;
    use crate::lru::Lru;

    #[test]
    fn ratio_at_least_one_for_online_policies() {
        let seq = uniform_sequence(6, 20_000, 3);
        let r = empirical_ratio(&mut Lru::new(6), 6, &seq);
        assert!(r >= 1.0, "online cannot beat OPT, got {r}");
    }

    #[test]
    fn augmentation_reduces_marking_ratio() {
        // Same online cache b; OPT restricted to a < b gets weaker, so the
        // measured ratio must drop as a decreases.
        let b = 12;
        let seq = uniform_sequence(b, 40_000, 5);
        let full = marking_ratio(b, b, &seq, 3);
        let augmented = marking_ratio(b, b / 2, &seq, 3);
        assert!(
            augmented < full,
            "(b, b/2) ratio {augmented} should be below (b,b) ratio {full}"
        );
    }

    #[test]
    fn marking_respects_young_bound_on_uniform_nemesis() {
        for (b, a) in [(8usize, 8usize), (16, 16), (16, 8)] {
            let seq = uniform_sequence(b, 50_000, 7);
            let measured = marking_ratio(b, a, &seq, 5);
            // Additive slack for the O(1) term and finite-length effects.
            let bound = young_bound(b, a) + 2.5;
            assert!(
                measured <= bound,
                "(b={b}, a={a}): measured {measured} > bound {bound}"
            );
        }
    }

    #[test]
    fn young_bound_shape() {
        assert!(young_bound(16, 16) > young_bound(16, 8));
        assert!((young_bound(16, 1) - 0.0).abs() < 1e-12);
        // (b,b): 2 ln b.
        assert!((young_bound(10, 10) - 2.0 * (10f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn augmented_opt_dominates_thrashing_policy() {
        // Cyclic scan over 4 pages: LRU with cache 2 faults on every
        // request, while OPT with cache 4 pays only the 4 cold faults.
        let seq: Vec<u64> = (0..4).cycle().take(100).collect();
        let r = empirical_ratio(&mut Lru::new(2), 4, &seq);
        assert!((r - 25.0).abs() < 1e-9, "expected 100/4, got {r}");
    }
}

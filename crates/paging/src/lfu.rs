//! Least-frequently-used eviction with LRU tie-breaking.
//!
//! Not competitive in the worst case, but a natural frequency-based
//! reference point for skewed datacenter workloads.

use crate::policy::{Access, PageId, PagingPolicy};
use dcn_util::FxHashMap;
use std::collections::BTreeSet;

/// LFU cache; ties between equal frequencies are broken toward the least
/// recently used page.
#[derive(Clone, Debug, Default)]
pub struct Lfu {
    capacity: usize,
    /// page -> (frequency, last-access stamp)
    info: FxHashMap<PageId, (u64, u64)>,
    /// ordered (frequency, stamp, page)
    order: BTreeSet<(u64, u64, PageId)>,
    clock: u64,
}

impl Lfu {
    /// Creates an empty LFU cache.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "capacity must be positive");
        Self {
            capacity,
            ..Default::default()
        }
    }

    fn bump(&mut self, page: PageId, freq: u64) {
        self.clock += 1;
        if let Some(&(f, s)) = self.info.get(&page) {
            self.order.remove(&(f, s, page));
        }
        self.info.insert(page, (freq, self.clock));
        self.order.insert((freq, self.clock, page));
    }
}

impl PagingPolicy for Lfu {
    fn capacity(&self) -> usize {
        self.capacity
    }

    fn len(&self) -> usize {
        self.info.len()
    }

    fn contains(&self, page: PageId) -> bool {
        self.info.contains_key(&page)
    }

    fn access(&mut self, page: PageId) -> Access {
        if let Some(&(f, _)) = self.info.get(&page) {
            self.bump(page, f + 1);
            return Access::Hit;
        }
        let mut evicted = Vec::new();
        if self.info.len() == self.capacity {
            let &(f, s, victim) = self.order.iter().next().expect("cache is full");
            self.order.remove(&(f, s, victim));
            self.info.remove(&victim);
            evicted.push(victim);
        }
        self.bump(page, 1);
        Access::Fault { evicted }
    }

    fn reset(&mut self) {
        self.info.clear();
        self.order.clear();
        self.clock = 0;
    }

    fn cached_pages(&self) -> Vec<PageId> {
        self.info.keys().copied().collect()
    }

    fn invalidate(&mut self, page: PageId) -> bool {
        match self.info.remove(&page) {
            Some((f, s)) => {
                self.order.remove(&(f, s, page));
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_frequent() {
        let mut l = Lfu::new(2);
        l.access(1);
        l.access(1);
        l.access(1);
        l.access(2);
        let acc = l.access(3);
        assert_eq!(
            acc.evicted(),
            &[2],
            "page 2 (freq 1) should go before page 1 (freq 3)"
        );
    }

    #[test]
    fn lru_tiebreak() {
        let mut l = Lfu::new(2);
        l.access(1);
        l.access(2); // both freq 1; 1 older
        let acc = l.access(3);
        assert_eq!(acc.evicted(), &[1]);
    }

    #[test]
    fn frequency_survives_hits() {
        let mut l = Lfu::new(3);
        for _ in 0..5 {
            l.access(9);
        }
        l.access(1);
        l.access(2);
        // Fault: 9 must survive (freq 5).
        l.access(3);
        assert!(l.contains(9));
    }

    #[test]
    fn invalidate_consistent() {
        let mut l = Lfu::new(2);
        l.access(1);
        l.access(2);
        assert!(l.invalidate(1));
        assert!(!l.contains(1));
        let acc = l.access(3);
        assert!(acc.evicted().is_empty());
    }
}

//! Uniform random eviction (the RAND policy) — memoryless randomized
//! baseline, `k`-competitive.

use crate::policy::{Access, PageId, PagingPolicy};
use dcn_util::IndexedSet;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Evicts a uniformly random cached page on each fault with a full cache.
#[derive(Clone, Debug)]
pub struct RandomEvict {
    capacity: usize,
    cached: IndexedSet<PageId>,
    rng: SmallRng,
}

impl RandomEvict {
    /// Creates an empty cache with a seeded RNG.
    pub fn new(capacity: usize, seed: u64) -> Self {
        assert!(capacity >= 1, "capacity must be positive");
        Self {
            capacity,
            cached: IndexedSet::with_capacity(capacity),
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl PagingPolicy for RandomEvict {
    fn capacity(&self) -> usize {
        self.capacity
    }

    fn len(&self) -> usize {
        self.cached.len()
    }

    fn contains(&self, page: PageId) -> bool {
        self.cached.contains(&page)
    }

    fn access(&mut self, page: PageId) -> Access {
        if self.cached.contains(&page) {
            return Access::Hit;
        }
        let mut evicted = Vec::new();
        if self.cached.len() == self.capacity {
            evicted.push(
                self.cached
                    .sample_remove(&mut self.rng)
                    .expect("full cache"),
            );
        }
        self.cached.insert(page);
        Access::Fault { evicted }
    }

    fn reset(&mut self) {
        self.cached.clear();
    }

    fn cached_pages(&self) -> Vec<PageId> {
        self.cached.iter().copied().collect()
    }

    fn invalidate(&mut self, page: PageId) -> bool {
        self.cached.remove(&page)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_respected() {
        let mut r = RandomEvict::new(4, 11);
        for i in 0..100 {
            r.access(i);
            assert!(r.len() <= 4);
        }
    }

    #[test]
    fn evicted_page_is_gone() {
        let mut r = RandomEvict::new(2, 5);
        r.access(1);
        r.access(2);
        let acc = r.access(3);
        let victim = acc.evicted()[0];
        assert!(!r.contains(victim));
        assert!(r.contains(3));
    }

    #[test]
    fn seeded_determinism() {
        let run = |seed| {
            let mut r = RandomEvict::new(3, seed);
            (0..500u64)
                .map(|i| r.access(i % 7).is_fault())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
    }
}

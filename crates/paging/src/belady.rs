//! Belady's offline optimum (farthest-in-future eviction).
//!
//! Given the whole request sequence in advance, evicting the cached page
//! whose next use lies farthest in the future minimizes the number of
//! faults in the fetch-on-fault model. This is `Opt` in the empirical
//! competitive-ratio experiments: the denominator of every ratio.

use crate::policy::{Access, PageId, PagingPolicy};
use dcn_util::FxHashMap;
use std::collections::BTreeSet;

const NEVER: u64 = u64::MAX;

/// Offline optimal paging for a fixed sequence.
///
/// Construct with the full sequence, then call [`PagingPolicy::access`] with
/// exactly that sequence, in order. Accessing out of order panics.
#[derive(Clone, Debug)]
pub struct Belady {
    capacity: usize,
    seq: Vec<PageId>,
    /// next[i] = next position after i at which seq[i] is requested.
    next: Vec<u64>,
    pos: usize,
    /// cached page -> its current next-use key in `order`.
    cached: FxHashMap<PageId, u64>,
    /// ordered (next_use, page); the max element is the eviction victim.
    order: BTreeSet<(u64, PageId)>,
}

impl Belady {
    /// Precomputes next-use indices for `sequence`.
    pub fn new(capacity: usize, sequence: &[PageId]) -> Self {
        assert!(capacity >= 1, "capacity must be positive");
        let mut next = vec![NEVER; sequence.len()];
        let mut last_seen: FxHashMap<PageId, usize> = FxHashMap::default();
        for (i, &p) in sequence.iter().enumerate().rev() {
            if let Some(&j) = last_seen.get(&p) {
                next[i] = j as u64;
            }
            last_seen.insert(p, i);
        }
        Self {
            capacity,
            seq: sequence.to_vec(),
            next,
            pos: 0,
            cached: FxHashMap::default(),
            order: BTreeSet::new(),
        }
    }

    /// Runs the whole sequence, returning the total number of faults.
    pub fn total_faults(capacity: usize, sequence: &[PageId]) -> u64 {
        let mut b = Self::new(capacity, sequence);
        sequence
            .iter()
            .map(|&p| u64::from(b.access(p).is_fault()))
            .sum()
    }

    /// Position of the next expected request.
    pub fn position(&self) -> usize {
        self.pos
    }
}

impl PagingPolicy for Belady {
    fn capacity(&self) -> usize {
        self.capacity
    }

    fn len(&self) -> usize {
        self.cached.len()
    }

    fn contains(&self, page: PageId) -> bool {
        self.cached.contains_key(&page)
    }

    fn access(&mut self, page: PageId) -> Access {
        assert!(
            self.pos < self.seq.len(),
            "accessed past the end of the fixed sequence"
        );
        assert_eq!(
            self.seq[self.pos], page,
            "access out of order at position {}",
            self.pos
        );
        let next_use = self.next[self.pos];
        self.pos += 1;

        if let Some(&old_key) = self.cached.get(&page) {
            self.order.remove(&(old_key, page));
            self.cached.insert(page, next_use);
            self.order.insert((next_use, page));
            return Access::Hit;
        }
        let mut evicted = Vec::new();
        if self.cached.len() == self.capacity {
            let &(key, victim) = self.order.iter().next_back().expect("cache is full");
            self.order.remove(&(key, victim));
            self.cached.remove(&victim);
            evicted.push(victim);
        }
        self.cached.insert(page, next_use);
        self.order.insert((next_use, page));
        Access::Fault { evicted }
    }

    fn reset(&mut self) {
        self.pos = 0;
        self.cached.clear();
        self.order.clear();
    }

    fn cached_pages(&self) -> Vec<PageId> {
        self.cached.keys().copied().collect()
    }

    fn invalidate(&mut self, page: PageId) -> bool {
        match self.cached.remove(&page) {
            Some(key) => {
                self.order.remove(&(key, page));
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lru::Lru;
    use crate::sim::run_policy;

    #[test]
    fn textbook_example() {
        // Classic example: OPT on 0 1 2 0 1 3 0 1 with k=3 faults 4 times:
        // 0,1,2 cold; 3 evicts 2 (farthest); 0,1 hits.
        let seq = [0, 1, 2, 0, 1, 3, 0, 1];
        assert_eq!(Belady::total_faults(3, &seq), 4);
    }

    #[test]
    fn never_worse_than_lru_on_random_sequences() {
        use rand::rngs::SmallRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(99);
        for trial in 0..30 {
            let universe = 2 + (trial % 7);
            let seq: Vec<PageId> = (0..300).map(|_| rng.random_range(0..universe)).collect();
            for cap in 1..=4usize {
                let opt = Belady::total_faults(cap, &seq);
                let lru = run_policy(&mut Lru::new(cap), &seq).faults;
                assert!(
                    opt <= lru,
                    "OPT {opt} > LRU {lru} (cap {cap}, trial {trial})"
                );
            }
        }
    }

    /// Exhaustive optimal fault count via DP over cache states (tiny inputs).
    fn brute_force_opt(capacity: usize, seq: &[PageId]) -> u64 {
        use std::collections::HashMap;
        // State: sorted cache contents. Value: min faults so far.
        let mut states: HashMap<Vec<PageId>, u64> = HashMap::new();
        states.insert(Vec::new(), 0);
        for &p in seq {
            let mut nxt: HashMap<Vec<PageId>, u64> = HashMap::new();
            let consider = |cache: Vec<PageId>, cost: u64, nxt: &mut HashMap<Vec<PageId>, u64>| {
                let entry = nxt.entry(cache).or_insert(u64::MAX);
                *entry = (*entry).min(cost);
            };
            for (cache, &cost) in &states {
                if cache.contains(&p) {
                    consider(cache.clone(), cost, &mut nxt);
                } else if cache.len() < capacity {
                    let mut c = cache.clone();
                    c.push(p);
                    c.sort_unstable();
                    consider(c, cost + 1, &mut nxt);
                } else {
                    for out in 0..cache.len() {
                        let mut c = cache.clone();
                        c[out] = p;
                        c.sort_unstable();
                        consider(c, cost + 1, &mut nxt);
                    }
                }
            }
            states = nxt;
        }
        states.values().copied().min().unwrap()
    }

    #[test]
    fn matches_brute_force_on_small_instances() {
        use rand::rngs::SmallRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(4242);
        for _ in 0..40 {
            let seq: Vec<PageId> = (0..12).map(|_| rng.random_range(0..5u64)).collect();
            for cap in 1..=3usize {
                assert_eq!(
                    Belady::total_faults(cap, &seq),
                    brute_force_opt(cap, &seq),
                    "cap {cap}, seq {seq:?}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn rejects_out_of_order_access() {
        let mut b = Belady::new(2, &[1, 2, 3]);
        b.access(2);
    }

    #[test]
    fn reset_allows_replay() {
        let seq = [0u64, 1, 2, 0, 1, 3];
        let mut b = Belady::new(2, &seq);
        let first: Vec<bool> = seq.iter().map(|&p| b.access(p).is_fault()).collect();
        b.reset();
        let second: Vec<bool> = seq.iter().map(|&p| b.access(p).is_fault()).collect();
        assert_eq!(first, second);
    }
}

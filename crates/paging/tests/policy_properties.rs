//! Property-based tests applied uniformly to *every* paging policy: the
//! model invariants of fetch-on-fault paging must hold on arbitrary request
//! sequences, interleaved with arbitrary invalidations.

use dcn_paging::{
    Belady, Clock, Fifo, Fwf, Lfu, Lru, Marking, NoisyOracle, PageId, PagingPolicy,
    PredictiveMarking, RandomEvict, Slru,
};
use proptest::prelude::*;

fn policies(cap: usize, seq: &[PageId]) -> Vec<(&'static str, Box<dyn PagingPolicy>)> {
    vec![
        ("lru", Box::new(Lru::new(cap))),
        ("fifo", Box::new(Fifo::new(cap))),
        ("fwf", Box::new(Fwf::new(cap))),
        ("lfu", Box::new(Lfu::new(cap))),
        ("clock", Box::new(Clock::new(cap))),
        ("slru", Box::new(Slru::new(cap, 0.5))),
        ("marking", Box::new(Marking::new(cap, 42))),
        ("random", Box::new(RandomEvict::new(cap, 42))),
        (
            "predictive",
            Box::new(PredictiveMarking::new(cap, NoisyOracle::new(seq, 0.5, 7))),
        ),
        ("belady", Box::new(Belady::new(cap, seq))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_policies_satisfy_model_invariants(
        seq in prop::collection::vec(0u64..20, 1..400),
        cap in 1usize..8,
    ) {
        for (name, mut policy) in policies(cap, &seq) {
            let mut faults = 0u64;
            for &p in &seq {
                let before = policy.contains(p);
                let acc = policy.access(p);
                // Fault iff the page was absent.
                prop_assert_eq!(acc.is_fault(), !before, "{}: fault/contains mismatch", name);
                // Fetch-on-fault: page present afterwards.
                prop_assert!(policy.contains(p), "{}: page absent after access", name);
                // Capacity.
                prop_assert!(policy.len() <= cap, "{}: capacity exceeded", name);
                // Evicted pages are gone and were distinct from the request.
                for &e in acc.evicted() {
                    prop_assert!(!policy.contains(e), "{}: evicted page still cached", name);
                    prop_assert!(e != p, "{}: evicted the requested page", name);
                }
                faults += acc.is_fault() as u64;
            }
            // Cold-start lower bound: at least min(distinct, cap) faults.
            let distinct = seq.iter().collect::<std::collections::HashSet<_>>().len();
            prop_assert!(
                faults as usize >= distinct.min(cap),
                "{}: too few faults", name
            );
            // cached_pages agrees with len.
            prop_assert_eq!(policy.cached_pages().len(), policy.len(), "{}", name);
        }
    }

    #[test]
    fn invalidate_keeps_policies_consistent(
        ops in prop::collection::vec((0u64..12, any::<bool>()), 1..300),
        cap in 1usize..6,
    ) {
        // Belady excluded: invalidation breaks its fixed-sequence contract.
        let seq: Vec<PageId> = ops.iter().map(|&(p, _)| p).collect();
        for (name, mut policy) in policies(cap, &seq).into_iter().filter(|(n, _)| *n != "belady") {
            for &(p, invalidate_after) in &ops {
                policy.access(p);
                if invalidate_after {
                    let was = policy.contains(p);
                    let removed = policy.invalidate(p);
                    prop_assert_eq!(removed, was, "{}: invalidate return value", name);
                    prop_assert!(!policy.contains(p), "{}: page alive after invalidate", name);
                }
                prop_assert!(policy.len() <= cap, "{}: capacity after invalidate", name);
            }
        }
    }

    #[test]
    fn belady_lower_bounds_every_policy(
        seq in prop::collection::vec(0u64..10, 10..300),
        cap in 1usize..6,
    ) {
        let opt = Belady::total_faults(cap, &seq);
        for (name, mut policy) in policies(cap, &seq).into_iter().filter(|(n, _)| *n != "belady") {
            let mut faults = 0u64;
            for &p in &seq {
                faults += policy.access(p).is_fault() as u64;
            }
            prop_assert!(
                faults >= opt,
                "{name}: {faults} faults below OPT {opt} — Belady not optimal?"
            );
        }
    }

    #[test]
    fn reset_restores_initial_behaviour(
        seq in prop::collection::vec(0u64..15, 1..200),
        cap in 1usize..6,
    ) {
        for (name, mut policy) in policies(cap, &seq) {
            let first: Vec<bool> = seq.iter().map(|&p| policy.access(p).is_fault()).collect();
            policy.reset();
            prop_assert_eq!(policy.len(), 0, "{}: reset left pages", name);
            let second: Vec<bool> = seq.iter().map(|&p| policy.access(p).is_fault()).collect();
            // Deterministic policies replay identically; randomized ones may
            // diverge after the first eviction, but the total fault count
            // stays within the phase bound — here we only check the strong
            // property for the deterministic ones.
            if !matches!(name, "marking" | "random" | "predictive") {
                prop_assert_eq!(&first, &second, "{}: replay after reset differs", name);
            }
        }
    }
}

//! Serializable run reports and cross-seed aggregation.

use dcn_util::json::JsonValue;
use serde::Serialize;

/// Cumulative state snapshot at a checkpoint (one x-axis point of the
/// paper's figures).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize)]
pub struct Checkpoint {
    /// Requests processed so far.
    pub requests: u64,
    /// Cumulative routing cost (1 per matched request, `ℓ_e` otherwise) —
    /// the y-axis of Figs. 1a–4a and 1c–4c.
    pub routing_cost: u64,
    /// Cumulative reconfiguration cost (α per matching change).
    pub reconfig_cost: u64,
    /// Number of matching-edge insertions + removals so far.
    pub reconfigurations: u64,
    /// Requests served over a matching edge so far.
    pub matched_requests: u64,
    /// Wall-clock seconds spent in the serve loop so far — the y-axis of
    /// Figs. 1b–4b.
    pub elapsed_secs: f64,
}

impl Checkpoint {
    /// Routing + reconfiguration cost (the objective of §1.1).
    pub fn total_cost(&self) -> u64 {
        self.routing_cost + self.reconfig_cost
    }

    /// Fraction of requests served over matching edges.
    pub fn matched_fraction(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.matched_requests as f64 / self.requests as f64
        }
    }

    /// Parses a checkpoint from a parsed JSON object (inverse of the
    /// `Serialize` impl; see [`RunReport::from_json`]).
    pub fn from_json_value(v: &JsonValue) -> Result<Self, String> {
        let u = |key: &str| {
            v.get(key)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("checkpoint field '{key}' missing or not an integer"))
        };
        Ok(Checkpoint {
            requests: u("requests")?,
            routing_cost: u("routing_cost")?,
            reconfig_cost: u("reconfig_cost")?,
            reconfigurations: u("reconfigurations")?,
            matched_requests: u("matched_requests")?,
            elapsed_secs: v
                .get("elapsed_secs")
                .and_then(JsonValue::as_f64)
                .ok_or("checkpoint field 'elapsed_secs' missing or not a number")?,
        })
    }
}

/// Full result of one simulation run.
#[derive(Clone, Debug, Serialize)]
pub struct RunReport {
    /// Algorithm label (figure legend entry).
    pub algorithm: String,
    /// Trace name.
    pub trace: String,
    /// Degree bound b ("cache size" in the paper's terminology).
    pub b: usize,
    /// Reconfiguration cost α.
    pub alpha: u64,
    /// RNG seed of this run.
    pub seed: u64,
    /// Snapshots at the configured request counts.
    pub checkpoints: Vec<Checkpoint>,
    /// Final state (== last checkpoint if one lands on the trace end).
    pub total: Checkpoint,
}

impl RunReport {
    /// Serializes to a compact JSON string.
    pub fn to_json(&self) -> String {
        dcn_util::json::to_json_string(self).expect("report serialization cannot fail")
    }

    /// Parses a report back from [`RunReport::to_json`] output.
    ///
    /// The round trip is **exact**: integer fields parse as `u64`, and
    /// `elapsed_secs` survives because the writer emits the shortest
    /// round-trip decimal for finite floats. `from_json(r.to_json())`
    /// re-serializes to the identical bytes — the run journal's digest
    /// check and the `--resume` byte-identity contract both rest on this
    /// (pinned in tests).
    pub fn from_json(text: &str) -> Result<Self, String> {
        Self::from_json_value(&dcn_util::json::parse_json(text)?)
    }

    /// Parses a report from an already-parsed JSON object.
    pub fn from_json_value(v: &JsonValue) -> Result<Self, String> {
        let s = |key: &str| {
            v.get(key)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("report field '{key}' missing or not a string"))
        };
        let u = |key: &str| {
            v.get(key)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("report field '{key}' missing or not an integer"))
        };
        let checkpoints = v
            .get("checkpoints")
            .and_then(JsonValue::as_array)
            .ok_or("report field 'checkpoints' missing or not an array")?
            .iter()
            .map(Checkpoint::from_json_value)
            .collect::<Result<Vec<_>, _>>()?;
        let total =
            Checkpoint::from_json_value(v.get("total").ok_or("report field 'total' missing")?)?;
        Ok(RunReport {
            algorithm: s("algorithm")?,
            trace: s("trace")?,
            b: u("b")? as usize,
            alpha: u("alpha")?,
            seed: u("seed")?,
            checkpoints,
            total,
        })
    }
}

/// Mean ± stddev series aggregated over seeds (the paper averages 5 runs).
#[derive(Clone, Debug, Serialize)]
pub struct AveragedSeries {
    /// Legend label.
    pub label: String,
    /// X values (request counts).
    pub x: Vec<u64>,
    /// Mean y per checkpoint.
    pub y_mean: Vec<f64>,
    /// Sample standard deviation per checkpoint.
    pub y_std: Vec<f64>,
}

impl AveragedSeries {
    /// Aggregates one metric across reports that share checkpoints.
    ///
    /// Panics if the reports have inconsistent checkpoint grids.
    pub fn from_reports(
        label: impl Into<String>,
        reports: &[RunReport],
        metric: impl Fn(&Checkpoint) -> f64,
    ) -> Self {
        assert!(!reports.is_empty(), "need at least one report");
        let x: Vec<u64> = reports[0].checkpoints.iter().map(|c| c.requests).collect();
        for r in reports {
            let rx: Vec<u64> = r.checkpoints.iter().map(|c| c.requests).collect();
            assert_eq!(rx, x, "checkpoint grids differ between runs");
        }
        let mut y_mean = Vec::with_capacity(x.len());
        let mut y_std = Vec::with_capacity(x.len());
        for i in 0..x.len() {
            let samples: Vec<f64> = reports.iter().map(|r| metric(&r.checkpoints[i])).collect();
            let s = dcn_util::summarize(&samples);
            y_mean.push(s.mean);
            y_std.push(s.stddev);
        }
        Self {
            label: label.into(),
            x,
            y_mean,
            y_std,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk_report(costs: &[u64]) -> RunReport {
        let checkpoints: Vec<Checkpoint> = costs
            .iter()
            .enumerate()
            .map(|(i, &c)| Checkpoint {
                requests: (i as u64 + 1) * 100,
                routing_cost: c,
                ..Default::default()
            })
            .collect();
        RunReport {
            algorithm: "X".into(),
            trace: "t".into(),
            b: 6,
            alpha: 10,
            seed: 0,
            total: *checkpoints.last().unwrap(),
            checkpoints,
        }
    }

    #[test]
    fn checkpoint_helpers() {
        let c = Checkpoint {
            requests: 10,
            routing_cost: 30,
            reconfig_cost: 5,
            matched_requests: 4,
            ..Default::default()
        };
        assert_eq!(c.total_cost(), 35);
        assert!((c.matched_fraction() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn averaging_across_seeds() {
        let a = mk_report(&[100, 200]);
        let b = mk_report(&[120, 240]);
        let s = AveragedSeries::from_reports("R-BMA", &[a, b], |c| c.routing_cost as f64);
        assert_eq!(s.x, vec![100, 200]);
        assert_eq!(s.y_mean, vec![110.0, 220.0]);
        assert!(s.y_std[0] > 0.0);
    }

    #[test]
    fn json_emission() {
        let r = mk_report(&[1]);
        let j = r.to_json();
        assert!(j.contains("\"algorithm\":\"X\""));
        assert!(j.contains("\"routing_cost\":1"));
    }

    #[test]
    fn json_round_trip_is_byte_exact() {
        // The journal contract: parse(to_json) re-serializes identically,
        // including an "ugly" float elapsed and max-range integers.
        let mut r = mk_report(&[17, u64::MAX]);
        r.seed = u64::MAX;
        r.total.elapsed_secs = 0.1 + 0.2; // 0.30000000000000004
        r.checkpoints[0].elapsed_secs = 1.0 / 3.0;
        let j = r.to_json();
        let back = RunReport::from_json(&j).unwrap();
        assert_eq!(back.to_json(), j, "round trip must be byte-identical");
        assert_eq!(back.seed, u64::MAX);
        assert_eq!(back.checkpoints.len(), 2);
    }

    #[test]
    fn from_json_names_the_missing_field() {
        let err = RunReport::from_json("{\"algorithm\":\"X\"}").unwrap_err();
        assert!(
            err.contains("checkpoints"),
            "error should name the field: {err}"
        );
        assert!(RunReport::from_json("not json").is_err());
    }

    #[test]
    #[should_panic(expected = "checkpoint grids differ")]
    fn mismatched_grids_detected() {
        let a = mk_report(&[1, 2]);
        let b = mk_report(&[1]);
        AveragedSeries::from_reports("x", &[a, b], |c| c.routing_cost as f64);
    }
}

//! **BMA** — the deterministic online b-matching baseline (Bienkowski,
//! Fuchssteiner, Marcinkowski, Schmid \[11\]; PERFORMANCE 2020), which the
//! paper benchmarks R-BMA against in §3.
//!
//! Reconstruction (the reproduced paper states the algorithm's properties —
//! deterministic, Θ(b)-competitive, rent-or-buy — but not its pseudocode;
//! DESIGN.md documents this substitution): a per-pair counter accumulates
//! the routing cost paid on the fixed network. When a pair's counter
//! reaches the reconfiguration cost α, the pair has "paid for" an optical
//! link and is bought into the matching; if an endpoint is at capacity the
//! incident matching edge with the oldest last use is evicted
//! deterministically. Counters reset on insertion and eviction. Any
//! deterministic rent-or-buy scheme of this shape is O(b)-competitive and
//! Ω(b) on the §2.4 star nemesis, which is the property the comparison
//! exercises.
//!
//! Implementation note (execution-time fidelity, Figs. 1b–4b): evicting the
//! least-recently-used *incident* edge deterministically requires a
//! per-node recency index, so every request to a matched pair updates the
//! indexes at both endpoints, while R-BMA's ordinary-request path is a
//! single counter bump. This per-hit upkeep — inherent to deterministic
//! recency-based eviction — is what makes BMA slower per request and more
//! sensitive to `b` than R-BMA, the effect §3.2 reports. The upkeep itself
//! is now O(1): the recency index is a flat intrusive LRU threaded through
//! the matching's fixed-stride adjacency
//! ([`dcn_matching::recency::LruBMatching`] — a hit is two list splices,
//! eviction a head read), replacing the per-rack `BTreeMap` whose O(log b)
//! rebalancing used to dominate BMA's hit path. The algorithm is generic
//! over the index ([`BmaWith`]); [`BmaBTree`] instantiates it over the
//! historical B-tree structure as the equivalence oracle — same victims,
//! same reports, pinned by tests and asserted live by the `scaling` target.

use crate::batch::PairBuckets;
use crate::parallel::IntraPool;
use crate::scheduler::{BatchOutcome, OnlineScheduler, ServeOutcome};
use dcn_matching::{BMatching, BTreeRecencyMatching, LruBMatching, RecencyMatching};
use dcn_telemetry::{Counter, Telemetry};
use dcn_topology::{DistanceMatrix, NodeId, Pair};
use dcn_util::FxHashMap;
use std::sync::Arc;

/// Sentinel for "no deferred LRU touch pending" in [`BmaPairState`].
const NO_TOUCH: u32 = u32::MAX;

/// Per-distinct-pair slab entry of the bucketed serve pass.
///
/// The interesting field is `last_touch`: instead of splicing the recency
/// lists on every hit, the bucketed pass only *stamps* the hit's request
/// index here and defers the splice. Deferred touches are flushed — one
/// splice per pair per flush interval, in last-occurrence order — right
/// before every buy (the only point that reads recency) and at chunk end,
/// so a run of k hits costs one splice instead of k while the LRU state is
/// exact wherever it is observed.
#[derive(Clone, Copy, Debug)]
struct BmaPairState {
    /// Whether the pair is currently a matching edge.
    matched: bool,
    /// Routing cost of the next request (1 or the simulator dm's `ℓ_e`).
    cost: u32,
    /// Rent accrued per miss (the scheduler's own `ℓ_e`).
    rent: u32,
    /// Rent-or-buy counter, advanced in the slab, written back per chunk.
    counter: u64,
    /// Request index of the newest unflushed hit, or [`NO_TOUCH`].
    last_touch: u32,
}

/// Deterministic rent-or-buy online b-matching over a pluggable recency
/// index. Use [`Bma`] (flat intrusive LRU) in production; [`BmaBTree`] is
/// the reference oracle.
pub struct BmaWith<M: RecencyMatching> {
    dm: Arc<DistanceMatrix>,
    alpha: u64,
    /// Accumulated fixed-network cost per unmatched pair.
    counters: FxHashMap<Pair, u64>,
    /// Matching + per-endpoint recency (LRU victim selection).
    index: M,
    /// Reusable chunk-bucketing scratch for the batched serve path.
    buckets: PairBuckets<BmaPairState>,
    /// Local event recorders, drained by `telemetry_flush` (hits are bulk
    /// adds at loop ends; only buy/evict/splice events pay a per-event
    /// bump — all of them off the per-request fast path).
    stats: BmaStats,
}

/// BMA's telemetry recorders (ZSTs under `--cfg dcn_telemetry_off`).
#[derive(Default)]
struct BmaStats {
    /// Requests that arrived on a matching edge.
    hits: Counter,
    /// LRU list-splice operations (immediate touches on the unsorted
    /// path, deferred flushes on the bucketed one — the §3.2 upkeep).
    splices: Counter,
    /// Rent-or-buy threshold crossings (edge insertions).
    buys: Counter,
    /// Deterministic LRU evictions.
    evictions: Counter,
    /// Chunks whose bucketing scan ran sharded across an `IntraPool`.
    sharded_chunks: Counter,
}

/// BMA over the flat intrusive LRU — the production instantiation.
pub type Bma = BmaWith<LruBMatching>;

/// BMA over the historical per-rack `BTreeMap` recency — the reference
/// oracle the flat instantiation is required to match decision for
/// decision (same victims, byte-identical seeded `RunReport`s). Reports
/// under the same `"BMA"` name so reports compare equal field by field.
pub type BmaBTree = BmaWith<BTreeRecencyMatching>;

impl<M: RecencyMatching> BmaWith<M> {
    /// Creates BMA with degree cap `b` and reconfiguration cost `alpha`.
    pub fn new(dm: Arc<DistanceMatrix>, b: usize, alpha: u64) -> Self {
        assert!(alpha >= 1, "alpha must be at least 1");
        let n = dm.num_racks();
        Self {
            dm,
            alpha,
            counters: FxHashMap::default(),
            index: M::new(n, b),
            buckets: PairBuckets::default(),
            stats: BmaStats::default(),
        }
    }

    /// The rent-or-buy miss path: pay `ℓ_e`, accumulate, buy at α.
    /// Returns `(added, removed)`.
    #[inline]
    fn serve_miss(&mut self, pair: Pair, ell: u64) -> (u32, u32) {
        let counter = self.counters.entry(pair).or_insert(0);
        *counter += ell;
        if *counter < self.alpha {
            return (0, 0);
        }
        self.counters.remove(&pair);
        self.stats.buys.bump();

        // Buy the edge; make room deterministically.
        let mut removed = 0;
        for node in [pair.lo(), pair.hi()] {
            if self.index.matching().degree(node) >= self.index.matching().cap() {
                self.evict_lru_at(node);
                removed += 1;
            }
        }
        self.index.insert_mru(pair);
        (1, removed)
    }

    /// Evicts the least-recently-used matching edge at `node`.
    fn evict_lru_at(&mut self, node: NodeId) -> Pair {
        let victim = self
            .index
            .lru_edge(node)
            .expect("eviction requested at a node with no matching edges");
        self.index.remove(victim);
        self.counters.remove(&victim);
        self.stats.evictions.bump();
        victim
    }

    /// Applies deferred LRU touches for requests `range` of `batch`, in
    /// request order, splicing each pair once at its newest stamped hit.
    ///
    /// Correct because between flush points nothing reads recency (reads
    /// happen only at buys, immediately *after* a flush) and nothing is
    /// inserted or evicted — so replaying only the *last* touch of each
    /// pair, in position order, leaves the lists in exactly the state
    /// per-request touching would have.
    fn flush_touches(
        index: &mut M,
        buckets: &PairBuckets<BmaPairState>,
        slab: &mut [BmaPairState],
        batch: &[Pair],
        range: std::ops::Range<usize>,
        splices: &mut Counter,
    ) {
        for j in range {
            let id = buckets.id_at(j);
            if slab[id].last_touch == j as u32 {
                slab[id].last_touch = NO_TOUCH;
                let hit = index.touch_hit(batch[j]);
                debug_assert!(hit, "deferred touch on an unmatched pair");
                splices.bump();
            }
        }
    }

    /// The bucketed batch pass: per-distinct-pair reads amortized through
    /// [`PairBuckets`], per-hit recency upkeep deferred to flush points
    /// (see [`BmaPairState`]); byte-identical accounting to the unsorted
    /// fused loop.
    fn serve_batch_bucketed(
        &mut self,
        batch: &[Pair],
        dm: &DistanceMatrix,
        acc: &mut BatchOutcome,
        pool: Option<&IntraPool>,
    ) {
        let n = self.dm.num_racks();
        let mut buckets = std::mem::take(&mut self.buckets);
        let ok = {
            let index = &self.index;
            let own_dm = &self.dm;
            let counters = &self.counters;
            buckets.bucket(
                batch,
                n,
                |pair| {
                    if index.matching().contains(pair) {
                        BmaPairState {
                            matched: true,
                            cost: 1,
                            rent: 0,
                            counter: 0,
                            last_touch: NO_TOUCH,
                        }
                    } else {
                        BmaPairState {
                            matched: false,
                            cost: dm.ell(pair) as u32,
                            rent: own_dm.ell(pair) as u32,
                            counter: counters.get(&pair).copied().unwrap_or(0),
                            last_touch: NO_TOUCH,
                        }
                    }
                },
                pool,
            )
        };
        if !ok {
            self.buckets = buckets;
            return self.serve_batch_unsorted(batch, dm, acc);
        }
        let mut slab = buckets.take_slab();
        let cap = self.index.matching().cap();
        let mut matched_total = 0u64;
        let mut routing = 0u64;
        let mut flushed = 0usize;
        for (i, &pair) in batch.iter().enumerate() {
            let id = buckets.id_at(i);
            let s = &mut slab[id];
            if s.matched {
                matched_total += 1;
                routing += 1;
                s.last_touch = i as u32;
                continue;
            }
            routing += s.cost as u64;
            s.counter += s.rent as u64;
            if s.counter < self.alpha {
                continue;
            }
            // Buy: the only point that reads recency — settle it first.
            Self::flush_touches(
                &mut self.index,
                &buckets,
                &mut slab,
                batch,
                flushed..i,
                &mut self.stats.splices,
            );
            flushed = i;
            self.counters.remove(&pair);
            self.stats.buys.bump();
            let mut removed = 0u32;
            for node in [pair.lo(), pair.hi()] {
                if self.index.matching().degree(node) >= cap {
                    let victim = self.evict_lru_at(node);
                    removed += 1;
                    if let Some(vid) = buckets.id_of(victim) {
                        slab[vid] = BmaPairState {
                            matched: false,
                            cost: dm.ell(victim) as u32,
                            rent: self.dm.ell(victim) as u32,
                            counter: 0,
                            last_touch: NO_TOUCH,
                        };
                    }
                }
            }
            self.index.insert_mru(pair);
            acc.added += 1;
            acc.removed += removed as u64;
            let s = &mut slab[id];
            s.matched = true;
            s.cost = 1;
            s.counter = 0;
            s.last_touch = NO_TOUCH;
        }
        Self::flush_touches(
            &mut self.index,
            &buckets,
            &mut slab,
            batch,
            flushed..batch.len(),
            &mut self.stats.splices,
        );
        self.stats.hits.add(matched_total);
        acc.matched += matched_total;
        acc.routing_cost += routing;
        // Write the advanced rent counters back, once per distinct pair.
        // Matched pairs never carry counter entries (buy and evict both
        // clear them), so only unmatched slab entries are reconciled.
        for (idx, &pair) in buckets.distinct().iter().enumerate() {
            let s = &slab[idx];
            if s.matched {
                continue;
            }
            if s.counter > 0 {
                self.counters.insert(pair, s.counter);
            } else {
                self.counters.remove(&pair);
            }
        }
        buckets.restore_slab(slab);
        self.buckets = buckets;
    }
}

impl<M: RecencyMatching> OnlineScheduler for BmaWith<M> {
    fn name(&self) -> &str {
        "BMA"
    }

    fn cap(&self) -> usize {
        self.index.matching().cap()
    }

    fn serve(&mut self, pair: Pair) -> ServeOutcome {
        // The membership check and the recency refresh are one fused
        // operation (on the flat index, the membership scan already locates
        // the intrusive list node).
        if self.index.touch_hit(pair) {
            self.stats.hits.bump();
            self.stats.splices.bump();
            return ServeOutcome {
                was_matched: true,
                added: 0,
                removed: 0,
            };
        }
        // Pay ℓ_e on the fixed network; accumulate toward the buy threshold.
        let ell = self.dm.ell(pair) as u64;
        let (added, removed) = self.serve_miss(pair, ell);
        ServeOutcome {
            was_matched: false,
            added,
            removed,
        }
    }

    /// Unsorted batched serve (the PR 5 fused loop): hits stay on the
    /// immediate recency-upkeep path — two O(1) splices per hit — while
    /// batching shrinks the dispatch/accounting overhead around it.
    /// Routing is charged from the simulator's `dm`, renting from the
    /// scheduler's own (the same matrix in every sweep, so the second read
    /// hits the just-warmed line).
    fn serve_batch_unsorted(
        &mut self,
        batch: &[Pair],
        dm: &DistanceMatrix,
        acc: &mut BatchOutcome,
    ) {
        let mut matched = 0u64;
        let mut routing = 0u64;
        for &pair in batch {
            if self.index.touch_hit(pair) {
                matched += 1;
                routing += 1;
            } else {
                let ell = dm.ell(pair) as u64;
                routing += ell;
                let (added, removed) = self.serve_miss(pair, self.dm.ell(pair) as u64);
                acc.added += added as u64;
                acc.removed += removed as u64;
            }
        }
        self.stats.hits.add(matched);
        self.stats.splices.add(matched);
        acc.matched += matched;
        acc.routing_cost += routing;
    }

    /// Bucketed batched serve: per-pair reads amortized, per-hit LRU
    /// splices deferred to flush points (a run of k hits is one splice);
    /// byte-identical to the unsorted path.
    /// Default batched serve: the fused loop. BMA's hit path is already a
    /// single fused membership-probe-plus-splice, so the bucketed pass's
    /// extra scan and flush passes cost more than the deferred splices
    /// save; the bucketed engine pays for itself only when the scan is
    /// sharded across an [`IntraPool`] ([`Self::serve_batch_sharded`]),
    /// which stays byte-identical to this loop (asserted live by the
    /// scaling target and the lockstep recency test).
    fn serve_batch(&mut self, batch: &[Pair], dm: &DistanceMatrix, acc: &mut BatchOutcome) {
        self.serve_batch_unsorted(batch, dm, acc);
    }

    /// Bucketed batched serve with the preprocessing scan sharded by
    /// rack-pair ownership across `pool`; byte-identical at any width.
    fn serve_batch_sharded(
        &mut self,
        batch: &[Pair],
        dm: &DistanceMatrix,
        pool: &IntraPool,
        acc: &mut BatchOutcome,
    ) {
        if pool.width() > 1 {
            self.stats.sharded_chunks.bump();
        }
        self.serve_batch_bucketed(batch, dm, acc, Some(pool));
    }

    fn matching(&self) -> &BMatching {
        self.index.matching()
    }

    fn telemetry_flush(&mut self, sink: &Telemetry) {
        sink.add_counter("bma.hits", self.stats.hits.take());
        sink.add_counter("bma.lru_splices", self.stats.splices.take());
        sink.add_counter("bma.buys", self.stats.buys.take());
        sink.add_counter("bma.evictions", self.stats.evictions.take());
        sink.add_counter("bma.sharded_chunks", self.stats.sharded_chunks.take());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(n: usize) -> Arc<DistanceMatrix> {
        Arc::new(DistanceMatrix::uniform(n))
    }

    #[test]
    fn buys_after_alpha_worth_of_cost() {
        // Uniform distances (ℓ = 1), α = 3: third miss triggers the buy.
        let mut bma = Bma::new(uniform(4), 1, 3);
        let p = Pair::new(0, 1);
        assert_eq!(bma.serve(p).added, 0);
        assert_eq!(bma.serve(p).added, 0);
        let out = bma.serve(p);
        assert_eq!(out.added, 1);
        assert!(!out.was_matched, "the buying request itself still paid ℓ");
        assert!(bma.serve(p).was_matched);
    }

    #[test]
    fn longer_paths_buy_faster() {
        // ℓ = 4, α = 8: two misses suffice (2·4 ≥ 8).
        let net = dcn_topology::builders::fat_tree(4);
        let dm = Arc::new(DistanceMatrix::between_racks(&net));
        let cross_pod = Pair::new(0, 7);
        assert_eq!(dm.ell(cross_pod), 4);
        let mut bma = Bma::new(dm, 1, 8);
        assert_eq!(bma.serve(cross_pod).added, 0);
        assert_eq!(bma.serve(cross_pod).added, 1);
    }

    #[test]
    fn eviction_is_lru_and_deterministic() {
        let mut bma = Bma::new(uniform(5), 1, 1);
        // α=1: every first miss buys. Edge {0,1}, then {0,2} evicts {0,1}.
        assert_eq!(bma.serve(Pair::new(0, 1)).added, 1);
        let out = bma.serve(Pair::new(0, 2));
        assert_eq!((out.added, out.removed), (1, 1));
        assert!(bma.matching().contains(Pair::new(0, 2)));
        assert!(!bma.matching().contains(Pair::new(0, 1)));
    }

    #[test]
    fn recency_protects_hot_edges() {
        let mut bma = Bma::new(uniform(6), 2, 1);
        bma.serve(Pair::new(0, 1));
        bma.serve(Pair::new(0, 2));
        // Refresh {0,1} via a hit, then insert {0,3}: LRU victim is {0,2}.
        bma.serve(Pair::new(0, 1));
        bma.serve(Pair::new(0, 3));
        assert!(bma.matching().contains(Pair::new(0, 1)));
        assert!(!bma.matching().contains(Pair::new(0, 2)));
        assert!(bma.matching().contains(Pair::new(0, 3)));
    }

    #[test]
    fn degree_bound_holds_under_stress() {
        let n = 10;
        let b = 3;
        let mut bma = Bma::new(uniform(n), b, 2);
        for i in 0..5000u32 {
            let a = i % n as u32;
            let c = (i.wrapping_mul(2654435761) % (n as u32 - 1) + a + 1) % n as u32;
            if a == c {
                continue;
            }
            bma.serve(Pair::new(a, c));
        }
        bma.matching().assert_valid();
        bma.index.assert_valid();
    }

    #[test]
    fn counter_resets_on_eviction() {
        let mut bma = Bma::new(uniform(4), 1, 2);
        let p01 = Pair::new(0, 1);
        let p02 = Pair::new(0, 2);
        // Buy {0,1} (2 misses), then buy {0,2} (2 misses) evicting {0,1}.
        bma.serve(p01);
        bma.serve(p01);
        bma.serve(p02);
        bma.serve(p02);
        assert!(bma.matching().contains(p02));
        // {0,1} must need the full 2 misses again.
        assert_eq!(bma.serve(p01).added, 0);
        assert_eq!(bma.serve(p01).added, 1);
    }

    /// Drives both instantiations in lock step and requires identical
    /// outcomes, matchings, and recency orders at every step — the
    /// decision-for-decision equivalence the flattening must preserve.
    fn assert_lockstep_equivalent(requests: &[Pair], n: usize, b: usize, alpha: u64) {
        let dm = uniform(n);
        let mut flat = Bma::new(dm.clone(), b, alpha);
        let mut tree = BmaBTree::new(dm, b, alpha);
        for (i, &r) in requests.iter().enumerate() {
            let a = flat.serve(r);
            let c = tree.serve(r);
            assert_eq!(a, c, "outcome diverged at request {i} ({r})");
            for v in 0..n as NodeId {
                assert_eq!(
                    flat.index.recency_order(v),
                    tree.index.recency_order(v),
                    "recency order diverged at request {i}, rack {v}"
                );
            }
        }
        assert_eq!(flat.matching().len(), tree.matching().len());
        flat.index.assert_valid();
    }

    #[test]
    fn flat_and_btree_instantiations_are_decision_identical() {
        let n = 12u32;
        let requests: Vec<Pair> = (0..6000u32)
            .filter_map(|i| {
                let a = i % n;
                let c = (a + 1 + i.wrapping_mul(40503) % (n - 1)) % n;
                (a != c).then(|| Pair::new(a, c))
            })
            .collect();
        assert_lockstep_equivalent(&requests, n as usize, 2, 3);
        assert_lockstep_equivalent(&requests, n as usize, 4, 1);
    }

    #[test]
    fn flat_and_btree_reports_are_identical_across_batch_sizes() {
        // End-to-end: the full simulator pipeline must produce the same
        // report from both instantiations, batched and unbatched.
        use crate::simulator::{run, SimConfig};
        use dcn_traces::RequestSource;
        let net = dcn_topology::builders::fat_tree_with_racks(20);
        let dm = Arc::new(DistanceMatrix::between_racks(&net));
        let mut source = dcn_traces::zipf_pair_source(20, 8_000, 1.2, 3);
        let trace = source.materialize();
        let base = SimConfig {
            checkpoints: vec![1_000, 4_321, 8_000],
            ..Default::default()
        };
        for batch_size in [1usize, 7, 1024] {
            let config = base.clone().with_batch_size(batch_size);
            let mut flat = Bma::new(dm.clone(), 4, 10);
            let a = run(&mut flat, &dm, 10, &trace.requests, &config);
            let mut tree = BmaBTree::new(dm.clone(), 4, 10);
            let b = run(&mut tree, &dm, 10, &trace.requests, &config);
            assert_eq!(a.algorithm, b.algorithm);
            assert_eq!(a.total.routing_cost, b.total.routing_cost);
            assert_eq!(a.total.reconfigurations, b.total.reconfigurations);
            assert_eq!(a.total.matched_requests, b.total.matched_requests);
            assert_eq!(a.checkpoints.len(), b.checkpoints.len());
            for (x, y) in a.checkpoints.iter().zip(&b.checkpoints) {
                assert_eq!(x.requests, y.requests);
                assert_eq!(x.routing_cost, y.routing_cost);
                assert_eq!(x.reconfig_cost, y.reconfig_cost);
                assert_eq!(x.matched_requests, y.matched_requests);
            }
        }
    }

    #[test]
    fn run_aware_lru_upkeep_matches_btree_per_request() {
        // The deferred-touch (run-aware) bucketed path must leave the LRU in
        // exactly the state per-request serving leaves it: drive the flat
        // index through `serve_batch_bucketed` (touches flushed at buy
        // points and chunk ends) against a BmaBTree served request by
        // request, and require identical outcomes AND identical recency
        // orders on every rack after every chunk — duplicate runs included.
        use crate::scheduler::BatchOutcome;
        let n = 10usize;
        let dm = uniform(n);
        // Duplicate-heavy stream: hot pairs repeat in runs so a single
        // flush stands in for many touches.
        let mut requests = Vec::new();
        let mut x = 0x9E3779B97F4A7C15u64;
        while requests.len() < 5_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let a = (x % n as u64) as u32;
            let b = ((x >> 16) % n as u64) as u32;
            if a == b {
                continue;
            }
            let p = Pair::new(a, b);
            for _ in 0..=(x >> 32) % 6 {
                requests.push(p);
            }
        }
        for chunk_len in [1usize, 3, 64, 997] {
            let mut flat = Bma::new(dm.clone(), 2, 4);
            let mut tree = BmaBTree::new(dm.clone(), 2, 4);
            let mut flat_acc = BatchOutcome::default();
            let mut tree_acc = BatchOutcome::default();
            for (ci, chunk) in requests.chunks(chunk_len).enumerate() {
                flat.serve_batch_bucketed(chunk, &dm, &mut flat_acc, None);
                for &r in chunk {
                    let o = tree.serve(r);
                    tree_acc.record(r, o, &dm);
                }
                assert_eq!(flat_acc, tree_acc, "accounting diverged at chunk {ci}");
                for v in 0..n as NodeId {
                    assert_eq!(
                        flat.index.recency_order(v),
                        tree.index.recency_order(v),
                        "recency order diverged after chunk {ci} (len {chunk_len}), rack {v}"
                    );
                }
            }
            flat.index.assert_valid();
            assert_eq!(flat.matching().len(), tree.matching().len());
        }
    }

    #[test]
    fn recency_indexes_stay_consistent() {
        let n = 12;
        let mut bma = Bma::new(uniform(n), 2, 1);
        for i in 0..4000u32 {
            let a = i % n as u32;
            let c = (a + 1 + i.wrapping_mul(40503) % (n as u32 - 1)) % n as u32;
            if a == c {
                continue;
            }
            bma.serve(Pair::new(a, c));
        }
        // Every matched edge appears in both endpoints' recency lists, and
        // the intrusive slab is internally consistent.
        bma.index.assert_valid();
        let mut listed = 0;
        for v in 0..n as NodeId {
            for pair in bma.index.recency_order(v) {
                assert!(bma.matching().contains(pair));
                listed += 1;
            }
        }
        assert_eq!(listed, 2 * bma.matching().len());
    }
}

//! **BMA** — the deterministic online b-matching baseline (Bienkowski,
//! Fuchssteiner, Marcinkowski, Schmid \[11\]; PERFORMANCE 2020), which the
//! paper benchmarks R-BMA against in §3.
//!
//! Reconstruction (the reproduced paper states the algorithm's properties —
//! deterministic, Θ(b)-competitive, rent-or-buy — but not its pseudocode;
//! DESIGN.md documents this substitution): a per-pair counter accumulates
//! the routing cost paid on the fixed network. When a pair's counter
//! reaches the reconfiguration cost α, the pair has "paid for" an optical
//! link and is bought into the matching; if an endpoint is at capacity the
//! incident matching edge with the oldest last use is evicted
//! deterministically. Counters reset on insertion and eviction. Any
//! deterministic rent-or-buy scheme of this shape is O(b)-competitive and
//! Ω(b) on the §2.4 star nemesis, which is the property the comparison
//! exercises.
//!
//! Implementation note (execution-time fidelity, Figs. 1b–4b): evicting the
//! least-recently-used *incident* edge deterministically requires a
//! per-node recency index. We maintain one ordered index per rack, so every
//! request to a matched pair updates the indexes at both endpoints
//! (O(log b) each), while R-BMA's ordinary-request path is a single counter
//! bump. This per-hit upkeep — inherent to deterministic recency-based
//! eviction — is what makes BMA slower per request and more sensitive to
//! `b` than R-BMA, the effect §3.2 reports.

use crate::scheduler::{BatchOutcome, OnlineScheduler, ServeOutcome};
use dcn_matching::BMatching;
use dcn_topology::{DistanceMatrix, NodeId, Pair};
use dcn_util::FxHashMap;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Deterministic rent-or-buy online b-matching.
pub struct Bma {
    dm: Arc<DistanceMatrix>,
    alpha: u64,
    /// Accumulated fixed-network cost per unmatched pair.
    counters: FxHashMap<Pair, u64>,
    /// Last-use stamp of each matching edge.
    stamp_of: FxHashMap<Pair, u64>,
    /// Per-rack recency index over incident matching edges: the first entry
    /// is the LRU eviction victim at that rack.
    recency: Vec<BTreeMap<u64, Pair>>,
    clock: u64,
    matching: BMatching,
}

impl Bma {
    /// Creates BMA with degree cap `b` and reconfiguration cost `alpha`.
    pub fn new(dm: Arc<DistanceMatrix>, b: usize, alpha: u64) -> Self {
        assert!(alpha >= 1, "alpha must be at least 1");
        let n = dm.num_racks();
        Self {
            dm,
            alpha,
            counters: FxHashMap::default(),
            stamp_of: FxHashMap::default(),
            recency: vec![BTreeMap::new(); n],
            clock: 0,
            matching: BMatching::new(n, b),
        }
    }

    /// Refreshes the recency of matched edge `pair` at both endpoints.
    fn touch(&mut self, pair: Pair) {
        self.clock += 1;
        if let Some(old) = self.stamp_of.insert(pair, self.clock) {
            self.recency[pair.lo() as usize].remove(&old);
            self.recency[pair.hi() as usize].remove(&old);
        }
        self.recency[pair.lo() as usize].insert(self.clock, pair);
        self.recency[pair.hi() as usize].insert(self.clock, pair);
    }

    /// The rent-or-buy miss path: pay `ℓ_e`, accumulate, buy at α.
    /// Returns `(added, removed)`.
    #[inline]
    fn serve_miss(&mut self, pair: Pair, ell: u64) -> (u32, u32) {
        let counter = self.counters.entry(pair).or_insert(0);
        *counter += ell;
        if *counter < self.alpha {
            return (0, 0);
        }
        self.counters.remove(&pair);

        // Buy the edge; make room deterministically.
        let mut removed = 0;
        for node in [pair.lo(), pair.hi()] {
            if self.matching.degree(node) >= self.matching.cap() {
                self.evict_lru_at(node);
                removed += 1;
            }
        }
        self.matching.insert(pair);
        self.touch(pair);
        (1, removed)
    }

    /// Evicts the least-recently-used matching edge at `node`.
    fn evict_lru_at(&mut self, node: NodeId) -> Pair {
        let (&stamp, &victim) = self.recency[node as usize]
            .iter()
            .next()
            .expect("eviction requested at a node with no matching edges");
        self.recency[victim.lo() as usize].remove(&stamp);
        self.recency[victim.hi() as usize].remove(&stamp);
        self.stamp_of.remove(&victim);
        self.matching.remove(victim);
        self.counters.remove(&victim);
        victim
    }
}

impl OnlineScheduler for Bma {
    fn name(&self) -> &str {
        "BMA"
    }

    fn cap(&self) -> usize {
        self.matching.cap()
    }

    fn serve(&mut self, pair: Pair) -> ServeOutcome {
        if self.matching.contains(pair) {
            self.touch(pair);
            return ServeOutcome {
                was_matched: true,
                added: 0,
                removed: 0,
            };
        }
        // Pay ℓ_e on the fixed network; accumulate toward the buy threshold.
        let ell = self.dm.ell(pair) as u64;
        let (added, removed) = self.serve_miss(pair, ell);
        ServeOutcome {
            was_matched: false,
            added,
            removed,
        }
    }

    /// Batched serve with fused accounting: hits stay on the recency-upkeep
    /// path that makes BMA's per-request cost inherently heavier than
    /// R-BMA's — batching shrinks the dispatch/accounting overhead around
    /// it, not the upkeep itself. Routing is charged from the simulator's
    /// `dm`, renting from the scheduler's own (the same matrix in every
    /// sweep, so the second read hits the just-warmed line).
    fn serve_batch(&mut self, batch: &[Pair], dm: &DistanceMatrix, acc: &mut BatchOutcome) {
        let mut matched = 0u64;
        let mut routing = 0u64;
        for &pair in batch {
            if self.matching.contains(pair) {
                self.touch(pair);
                matched += 1;
                routing += 1;
            } else {
                let ell = dm.ell(pair) as u64;
                routing += ell;
                let (added, removed) = self.serve_miss(pair, self.dm.ell(pair) as u64);
                acc.added += added as u64;
                acc.removed += removed as u64;
            }
        }
        acc.matched += matched;
        acc.routing_cost += routing;
    }

    fn matching(&self) -> &BMatching {
        &self.matching
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(n: usize) -> Arc<DistanceMatrix> {
        Arc::new(DistanceMatrix::uniform(n))
    }

    #[test]
    fn buys_after_alpha_worth_of_cost() {
        // Uniform distances (ℓ = 1), α = 3: third miss triggers the buy.
        let mut bma = Bma::new(uniform(4), 1, 3);
        let p = Pair::new(0, 1);
        assert_eq!(bma.serve(p).added, 0);
        assert_eq!(bma.serve(p).added, 0);
        let out = bma.serve(p);
        assert_eq!(out.added, 1);
        assert!(!out.was_matched, "the buying request itself still paid ℓ");
        assert!(bma.serve(p).was_matched);
    }

    #[test]
    fn longer_paths_buy_faster() {
        // ℓ = 4, α = 8: two misses suffice (2·4 ≥ 8).
        let net = dcn_topology::builders::fat_tree(4);
        let dm = Arc::new(DistanceMatrix::between_racks(&net));
        let cross_pod = Pair::new(0, 7);
        assert_eq!(dm.ell(cross_pod), 4);
        let mut bma = Bma::new(dm, 1, 8);
        assert_eq!(bma.serve(cross_pod).added, 0);
        assert_eq!(bma.serve(cross_pod).added, 1);
    }

    #[test]
    fn eviction_is_lru_and_deterministic() {
        let mut bma = Bma::new(uniform(5), 1, 1);
        // α=1: every first miss buys. Edge {0,1}, then {0,2} evicts {0,1}.
        assert_eq!(bma.serve(Pair::new(0, 1)).added, 1);
        let out = bma.serve(Pair::new(0, 2));
        assert_eq!((out.added, out.removed), (1, 1));
        assert!(bma.matching().contains(Pair::new(0, 2)));
        assert!(!bma.matching().contains(Pair::new(0, 1)));
    }

    #[test]
    fn recency_protects_hot_edges() {
        let mut bma = Bma::new(uniform(6), 2, 1);
        bma.serve(Pair::new(0, 1));
        bma.serve(Pair::new(0, 2));
        // Refresh {0,1} via a hit, then insert {0,3}: LRU victim is {0,2}.
        bma.serve(Pair::new(0, 1));
        bma.serve(Pair::new(0, 3));
        assert!(bma.matching().contains(Pair::new(0, 1)));
        assert!(!bma.matching().contains(Pair::new(0, 2)));
        assert!(bma.matching().contains(Pair::new(0, 3)));
    }

    #[test]
    fn degree_bound_holds_under_stress() {
        let n = 10;
        let b = 3;
        let mut bma = Bma::new(uniform(n), b, 2);
        for i in 0..5000u32 {
            let a = i % n as u32;
            let c = (i.wrapping_mul(2654435761) % (n as u32 - 1) + a + 1) % n as u32;
            if a == c {
                continue;
            }
            bma.serve(Pair::new(a, c));
        }
        bma.matching().assert_valid();
    }

    #[test]
    fn counter_resets_on_eviction() {
        let mut bma = Bma::new(uniform(4), 1, 2);
        let p01 = Pair::new(0, 1);
        let p02 = Pair::new(0, 2);
        // Buy {0,1} (2 misses), then buy {0,2} (2 misses) evicting {0,1}.
        bma.serve(p01);
        bma.serve(p01);
        bma.serve(p02);
        bma.serve(p02);
        assert!(bma.matching().contains(p02));
        // {0,1} must need the full 2 misses again.
        assert_eq!(bma.serve(p01).added, 0);
        assert_eq!(bma.serve(p01).added, 1);
    }

    #[test]
    fn recency_indexes_stay_consistent() {
        let n = 12;
        let mut bma = Bma::new(uniform(n), 2, 1);
        for i in 0..4000u32 {
            let a = i % n as u32;
            let c = (a + 1 + i.wrapping_mul(40503) % (n as u32 - 1)) % n as u32;
            if a == c {
                continue;
            }
            bma.serve(Pair::new(a, c));
        }
        // Every matched edge appears in both endpoints' recency trees with
        // the stamp recorded in stamp_of, and nothing else does.
        let mut tree_edges = 0;
        for v in 0..n {
            for (stamp, pair) in &bma.recency[v] {
                assert_eq!(bma.stamp_of.get(pair), Some(stamp), "stale stamp at {v}");
                assert!(bma.matching().contains(*pair));
                tree_edges += 1;
            }
        }
        assert_eq!(tree_edges, 2 * bma.matching().len());
    }
}

//! **R-BMA** — the paper's randomized online (b,a)-matching algorithm
//! (§2.2, Corollary 3).
//!
//! Composition of the two reductions:
//!
//! 1. **Uniform reduction (Theorem 1).** For each pair `e`, only every
//!    `k_e = ⌈α/ℓ_e⌉`-th request is *special*; only special requests reach
//!    the paging layer. This amortizes the reconfiguration cost α against
//!    the routing cost the algorithm pays on ordinary requests, losing a
//!    factor 4γ = 4(1 + ℓmax/α).
//! 2. **Paging reduction (Theorem 2).** One randomized-marking paging
//!    instance per rack; the cache of rack `u` (capacity `b`) holds the
//!    partner racks of pairs incident to `u`. A special request to
//!    `e = {u, v}` is fed to both endpoint caches; the matching invariant is
//!    `e ∈ M ⇔ v ∈ cache(u) ∧ u ∈ cache(v)`.
//!
//! **Removal modes** (footnote 2 of the paper): under `Strict`, a pair
//! evicted from either endpoint cache leaves `M` immediately (the invariant
//! of the analysis). Under `Lazy` — the paper's experimental choice —
//! eviction only *marks* the edge; marked edges are pruned when a node's
//! degree would exceed `b`. Keeping an edge longer can only save routing
//! cost; the degree bound stays intact either way (tested).
//!
//! **Hot-path layout** (the O(1) amortized serve cost §3.2's execution-time
//! figures rest on): the per-rack caches are [`DenseMarking`] — flat
//! index-addressed marking over the rack universe, allocation-free accesses,
//! draw-for-draw identical to the generic `Marking` — and the Theorem-1
//! counters cache `k_e` alongside the count, so the common (ordinary-
//! request) path is one membership probe of the flat matching plus one hash
//! bump, with no division and no distance lookup. The batched entry point
//! ([`OnlineScheduler::serve_batch`]) goes further: it buckets each chunk
//! by rack pair into a **persistent** slab
//! ([`crate::batch::PersistentPairSlab`]) that carries each pair's
//! matched/cost/counter state across chunks, so membership probes, `ℓ_e`
//! reads and counter fetches are paid once per pair *ever*; ordinary
//! requests collapse to one multiply-accumulate per distinct pair per
//! chunk while special requests execute at their precomputed positions in
//! original request order (RNG draws must fire at the unsorted positions)
//! — byte-identical to the unsorted fused loop
//! ([`OnlineScheduler::serve_batch_unsorted`]), which remains available.

use crate::batch::{PairBuckets, PersistentPairSlab, DENSE_RACK_LIMIT};
use crate::parallel::IntraPool;
use crate::scheduler::{BatchOutcome, OnlineScheduler, ServeOutcome};
use dcn_matching::BMatching;
use dcn_paging::{DenseAccess, DenseMarking};
use dcn_telemetry::{Counter, Telemetry};
use dcn_topology::{DistanceMatrix, NodeId, Pair};
use dcn_util::rngx::derive_seed;
use dcn_util::{FxHashMap, FxHashSet};
use std::sync::Arc;

/// How evictions from the per-node caches translate to matching removals.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RemovalMode {
    /// Matching = exact intersection of endpoint caches (as analyzed).
    Strict,
    /// Evictions mark edges; marked edges are pruned on demand
    /// (the paper's experimental setting, footnote 2).
    Lazy,
}

/// Per-pair Theorem-1 state: requests seen since the last special request,
/// plus the cached period `k_e = ⌈α/ℓ_e⌉` (constant per pair, so the hot
/// loop never divides).
#[derive(Clone, Copy, Debug)]
struct SpecialCounter {
    count: u32,
    k: u32,
}

/// Per-pair slab entry of the bucketed serve passes: everything the
/// ordinary-request fast path needs, loaded once per pair per chunk
/// instead of once per request. `matched`/`cost` are patched in place by
/// the rare special-request slow path when it changes the matching.
///
/// In the default (persistent) serve path this *is* the pair's
/// authoritative state, carried across chunks in a
/// [`PersistentPairSlab`]; the intra-sharded path rebuilds a per-chunk
/// copy from the hash store instead.
#[derive(Clone, Copy, Debug, Default)]
struct RbmaPairState {
    /// Whether the pair is currently a matching edge.
    matched: bool,
    /// Routing cost of the next request to this pair (1 or `ℓ_e`).
    cost: u32,
    /// Theorem-1 counter. The chunk pre-pass reads it once, derives the
    /// full special schedule, and advances it in closed form.
    count: u32,
    /// Cached period `k_e`.
    k: u32,
    /// Occurrence index (1-based) of the pair's next special request in
    /// this chunk, advanced as the special schedule executes.
    next_o: u32,
    /// Conservative hint: `false` guarantees the pair is NOT in the
    /// lazy-removal `marked` set, letting a matched special skip the
    /// hash removal. `true` means "maybe" — maintained from the mark
    /// scratch after every special, refreshed on store migration.
    maybe_marked: bool,
}

/// The randomized online b-matching scheduler.
pub struct Rbma {
    dm: Arc<DistanceMatrix>,
    alpha: u64,
    mode: RemovalMode,
    /// Per-pair counter toward the next special request (Theorem 1) —
    /// the authoritative store while `dense` is false (per-request and
    /// unsorted-batched serving, and racks above [`DENSE_RACK_LIMIT`]).
    counters: FxHashMap<Pair, SpecialCounter>,
    /// Dense pair-slot store of the default bucketed serve path —
    /// authoritative while `dense` is true. Holds the Theorem-1 counter
    /// *and* the cached `matched`/`cost` view per pair, persistent
    /// across chunks, so the bucketed pass pays no hash traffic at all.
    pslab: PersistentPairSlab<RbmaPairState>,
    /// Which of the two stores above is current; serve paths migrate
    /// lazily on entry ([`Rbma::ensure_dense`] / [`Rbma::ensure_hash`]).
    dense: bool,
    /// Per-rack randomized marking caches (Theorem 2). Page ids are the
    /// partner rack ids — a dense universe, hence the flat layout.
    caches: Vec<DenseMarking>,
    matching: BMatching,
    /// Lazy mode: edges marked for removal but still carried in `M`.
    marked: FxHashSet<Pair>,
    /// Reusable chunk-bucketing scratch for the batched serve path.
    buckets: PairBuckets<RbmaPairState>,
    /// Pairs the last [`Rbma::serve_special`] removed from the matching —
    /// the batched pass patches their slab entries.
    removed_scratch: Vec<Pair>,
    /// Pairs the last [`Rbma::serve_special`] newly eviction-marked
    /// (lazy mode) — the persistent pass raises their slab mark hints.
    marked_scratch: Vec<Pair>,
    /// Reusable bitmap over chunk positions marking where special
    /// requests fire (the precomputed schedule of the bucketed pass).
    special_bits: Vec<u64>,
    /// Local event recorders, drained by `telemetry_flush` (only the
    /// rare slow paths pay a bump; ordinary requests record nothing).
    stats: RbmaStats,
}

/// R-BMA's telemetry recorders (ZSTs under `--cfg dcn_telemetry_off`).
/// The wrap/phase fields are flush baselines for cumulative sources
/// owned elsewhere (the slab and the marking caches count over their
/// lifetime; each flush emits the delta since the previous one).
#[derive(Default)]
struct RbmaStats {
    /// Theorem-1 special requests executed (the Theorem-2 slow path).
    specials: Counter,
    /// hash → dense store migrations (bucketed-path entry).
    dense_migrations: Counter,
    /// dense → hash store migrations (per-request/unsorted entry).
    hash_migrations: Counter,
    /// Slab epoch wraps already reported by earlier flushes.
    flushed_wraps: u64,
    /// Marking-phase resets (summed over the per-rack caches) already
    /// reported by earlier flushes.
    flushed_phases: u64,
}

impl Rbma {
    /// Creates R-BMA with degree cap `b` and reconfiguration cost `alpha`.
    pub fn new(
        dm: Arc<DistanceMatrix>,
        b: usize,
        alpha: u64,
        mode: RemovalMode,
        seed: u64,
    ) -> Self {
        assert!(alpha >= 1, "alpha must be at least 1");
        let n = dm.num_racks();
        let caches = (0..n)
            .map(|v| DenseMarking::new(b, n, derive_seed(seed, v as u64)))
            .collect();
        Self {
            dm,
            alpha,
            mode,
            counters: FxHashMap::default(),
            pslab: PersistentPairSlab::default(),
            dense: false,
            caches,
            matching: BMatching::new(n, b),
            marked: FxHashSet::default(),
            buckets: PairBuckets::default(),
            removed_scratch: Vec::new(),
            marked_scratch: Vec::new(),
            special_bits: Vec::new(),
            stats: RbmaStats::default(),
        }
    }

    /// `k_e = ⌈α/ℓ_e⌉` — the special-request period of a pair.
    #[inline]
    fn k_e(&self, pair: Pair) -> u32 {
        let ell = self.dm.ell(pair).max(1) as u64;
        self.alpha.div_ceil(ell) as u32
    }

    /// Advances `pair`'s Theorem-1 counter; returns whether this request is
    /// special. The period is computed once per pair and cached.
    #[inline]
    fn bump_counter(&mut self, pair: Pair) -> bool {
        match self.counters.get_mut(&pair) {
            Some(c) => {
                c.count += 1;
                if c.count >= c.k {
                    c.count = 0;
                    true
                } else {
                    false
                }
            }
            None => {
                let k = self.k_e(pair);
                let special = k <= 1;
                self.counters.insert(
                    pair,
                    SpecialCounter {
                        count: if special { 0 } else { 1 },
                        k,
                    },
                );
                special
            }
        }
    }

    /// Makes the dense slot store authoritative (entry migration of the
    /// default bucketed path). Every hash entry is written through to
    /// its persistent slot — counter verbatim, `matched`/`cost`
    /// recomputed from the matching, since hash-mode serving does not
    /// patch slots. The hash is a superset of the slots ever allocated
    /// ([`Rbma::ensure_hash`] dumps them all back), so this refreshes
    /// every stale slot. O(pairs), amortized free: a run serves through
    /// one path only, so migrations fire at most once per run.
    fn ensure_dense(&mut self, n: usize, dm: &DistanceMatrix) {
        if self.dense {
            return;
        }
        self.stats.dense_migrations.bump();
        let counters = std::mem::take(&mut self.counters);
        let mut pslab = std::mem::take(&mut self.pslab);
        for (&pair, c) in &counters {
            let matched = self.matching.contains(pair);
            let slot = pslab.slot_for(pair, n, |_| RbmaPairState::default());
            *pslab.state_mut(slot) = RbmaPairState {
                matched,
                cost: if matched { 1 } else { dm.ell(pair) as u32 },
                count: c.count,
                k: c.k,
                next_o: 0,
                maybe_marked: self.marked.contains(&pair),
            };
        }
        self.pslab = pslab;
        self.counters = counters;
        self.counters.clear();
        self.dense = true;
    }

    /// Makes the hash store authoritative (entry migration of the
    /// per-request, unsorted-batched and intra-sharded paths): every
    /// slot's Theorem-1 counter is dumped back into the hash. The slots
    /// themselves stay allocated — a later [`Rbma::ensure_dense`]
    /// refreshes them in place.
    fn ensure_hash(&mut self) {
        if !self.dense {
            return;
        }
        self.stats.hash_migrations.bump();
        for i in 0..self.pslab.len() {
            let pair = self.pslab.seen()[i];
            let slot = self
                .pslab
                .slot_of(pair)
                .expect("seen pairs keep their slot");
            let s = *self.pslab.state(slot);
            self.counters.insert(
                pair,
                SpecialCounter {
                    count: s.count,
                    k: s.k,
                },
            );
        }
        self.dense = false;
    }

    /// Applies one endpoint's cache update for a special request; returns
    /// the matching removals it caused.
    fn touch_cache(&mut self, node: NodeId, partner: NodeId) -> u32 {
        let access = self.caches[node as usize].access_dense(partner as u64);
        let mut removed = 0;
        if let DenseAccess::Fault {
            evicted: Some(evicted_page),
        } = access
        {
            let gone = Pair::new(node, evicted_page as NodeId);
            match self.mode {
                RemovalMode::Strict => {
                    if self.matching.remove(gone) {
                        self.removed_scratch.push(gone);
                        removed += 1;
                    }
                }
                RemovalMode::Lazy => {
                    if self.matching.contains(gone) && self.marked.insert(gone) {
                        self.marked_scratch.push(gone);
                    }
                }
            }
        }
        removed
    }

    /// Lazy mode: frees capacity at `node` by pruning marked edges.
    fn prune_marked_at(&mut self, node: NodeId) -> u32 {
        let mut removed = 0;
        while self.matching.degree(node) >= self.matching.cap() {
            let victim = self
                .matching
                .incident_edges(node)
                .iter()
                .copied()
                .find(|e| self.marked.contains(e))
                .expect("lazy R-BMA: a full node must carry a marked edge");
            self.matching.remove(victim);
            self.marked.remove(&victim);
            self.removed_scratch.push(victim);
            removed += 1;
        }
        removed
    }

    /// The Theorem-2 slow path of a special request: feed both endpoint
    /// caches, restore the matching invariant. Returns `(added, removed)`;
    /// the removed pairs themselves land in `removed_scratch`.
    fn serve_special(&mut self, pair: Pair) -> (u32, u32) {
        let matched = self.matching.contains(pair);
        self.serve_special_known(pair, matched, true)
    }

    /// [`Rbma::serve_special`] with the pair's current matching membership
    /// already known (the bucketed pass reads it from the chunk slab,
    /// skipping the membership scan). `matched` must equal
    /// `self.matching.contains(pair)` — the slab keeps it exact because
    /// every mid-chunk removal patches the victim's entry and a pair's own
    /// cache touches can never evict that same pair. `maybe_marked` may
    /// only be `false` when the pair is provably absent from the lazy
    /// `marked` set (the persistent slab's hint); pass `true` when
    /// unknown.
    fn serve_special_known(&mut self, pair: Pair, matched: bool, maybe_marked: bool) -> (u32, u32) {
        self.stats.specials.bump();
        self.removed_scratch.clear();
        self.marked_scratch.clear();
        let (u, v) = pair.endpoints();
        let mut removed = self.touch_cache(u, v);
        removed += self.touch_cache(v, u);

        // Matching invariant: the pair is now in both caches.
        debug_assert!(dcn_paging::PagingPolicy::contains(
            &self.caches[u as usize],
            v as u64
        ));
        debug_assert!(dcn_paging::PagingPolicy::contains(
            &self.caches[v as usize],
            u as u64
        ));
        debug_assert_eq!(matched, self.matching.contains(pair));
        let mut added = 0;
        if !matched {
            if self.mode == RemovalMode::Lazy {
                removed += self.prune_marked_at(u);
                removed += self.prune_marked_at(v);
            }
            self.matching.insert(pair);
            added = 1;
            // An unmatched pair is never marked (marked ⊆ M), so the
            // matched branch's "alive again" unmark has nothing to do.
        } else if maybe_marked {
            // A re-requested edge is alive again.
            self.marked.remove(&pair);
        }
        (added, removed)
    }

    /// The intra-sharded bucketed batch pass.
    ///
    /// Phase A buckets the chunk by pair ([`PairBuckets::bucket`],
    /// sharded by pair ownership across `pool`) and pays the expensive
    /// reads — membership probe, `ℓ_e`, counter fetch — once per
    /// **distinct** pair, then builds the CSR occurrence index
    /// ([`PairBuckets::build_positions`]).
    ///
    /// Phase B never walks the requests. Because a pair's Theorem-1
    /// counter advances only on its own occurrences, the chunk positions
    /// of its special requests are a pure function of `(count₀, k_e,
    /// multiplicity)` — computed up front into a position bitmap. Ordinary
    /// requests collapse into one multiply-accumulate per distinct pair
    /// (`m · cost`, `m · matched`); only the specials execute, in original
    /// request order (mandatory: cache faults draw RNG), each followed by
    /// exact cost corrections `remaining-occurrences × Δ` for every slab
    /// entry it flips (the served pair itself and any eviction victims,
    /// via [`PairBuckets::occurrences_after`]).
    ///
    /// Phase C writes the Theorem-1 counters back in closed form
    /// (`count₀ + m − specials·k`), once per distinct pair.
    ///
    /// The unsharded default path ([`Rbma::serve_batch_persistent`])
    /// runs the same three phases over the *persistent* slab instead,
    /// which amortizes Phase A's per-pair reads and drops Phase C
    /// entirely; this per-chunk variant stays because its scan shards
    /// cleanly (worker-private buckets over frozen state), which the
    /// always-mutable persistent slab cannot.
    fn serve_batch_bucketed(
        &mut self,
        batch: &[Pair],
        dm: &DistanceMatrix,
        acc: &mut BatchOutcome,
        pool: Option<&IntraPool>,
    ) {
        self.ensure_hash();
        let n = self.dm.num_racks();
        let mut buckets = std::mem::take(&mut self.buckets);
        let ok = {
            let matching = &self.matching;
            let own_dm = &self.dm;
            let counters = &self.counters;
            let alpha = self.alpha;
            buckets.bucket(
                batch,
                n,
                |pair| {
                    let matched = matching.contains(pair);
                    let cost = if matched { 1 } else { dm.ell(pair) as u32 };
                    // A fresh pair enters as (count=0, k=k_e): its first
                    // special lands at occurrence k, reproducing
                    // bump_counter's "special iff k ≤ 1" insert branch.
                    let (count, k) = match counters.get(&pair) {
                        Some(c) => (c.count, c.k),
                        None => {
                            let ell = own_dm.ell(pair).max(1) as u64;
                            (0, alpha.div_ceil(ell) as u32)
                        }
                    };
                    RbmaPairState {
                        matched,
                        cost,
                        count,
                        k,
                        next_o: 0,
                        // The per-chunk path always consults the marked
                        // set itself; the hint is unused there.
                        maybe_marked: false,
                    }
                },
                pool,
            )
        };
        if !ok {
            self.buckets = buckets;
            return self.serve_batch_unsorted(batch, dm, acc);
        }
        buckets.build_positions(batch.len());
        let mut slab = buckets.take_slab();

        // Schedule pre-pass: one multiply-accumulate per distinct pair
        // plus its special positions, marked in the chunk bitmap.
        let mut matched_total = 0u64;
        let mut routing = 0u64;
        self.special_bits.clear();
        self.special_bits.resize(batch.len().div_ceil(64), 0);
        let mut any_special = false;
        for (j, s) in slab.iter_mut().enumerate() {
            let m = buckets.counts()[j];
            matched_total += m as u64 * s.matched as u64;
            routing += m as u64 * s.cost as u64;
            let specials = (s.count + m) / s.k;
            if specials > 0 {
                any_special = true;
                let seg = buckets.positions_of(j);
                s.next_o = s.k - s.count;
                let mut o = s.next_o;
                while o <= m {
                    let p = seg[(o - 1) as usize] as usize;
                    self.special_bits[p / 64] |= 1 << (p % 64);
                    o += s.k;
                }
            }
        }

        // Specials, in original request order; everything they flip is
        // charged back as remaining-occurrences × delta.
        let mut routing_corr = 0i64;
        let mut matched_corr = 0i64;
        if any_special {
            let bits = std::mem::take(&mut self.special_bits);
            for (w, &bits_word) in bits.iter().enumerate() {
                let mut word = bits_word;
                while word != 0 {
                    let p = w * 64 + word.trailing_zeros() as usize;
                    word &= word - 1;
                    let id = buckets.id_at(p);
                    let was_matched = slab[id].matched;
                    let (added, removed) = self.serve_special_known(batch[p], was_matched, true);
                    acc.added += added as u64;
                    acc.removed += removed as u64;
                    if removed > 0 {
                        let scratch = std::mem::take(&mut self.removed_scratch);
                        for &victim in &scratch {
                            if let Some(vid) = buckets.id_of(victim) {
                                let rem = buckets.occurrences_after(vid, p as u32) as i64;
                                let v = &mut slab[vid];
                                let new_cost = dm.ell(victim) as u32;
                                routing_corr += rem * (new_cost as i64 - v.cost as i64);
                                matched_corr -= rem * v.matched as i64;
                                v.matched = false;
                                v.cost = new_cost;
                            }
                        }
                        self.removed_scratch = scratch;
                    }
                    let s = &mut slab[id];
                    let rem = (buckets.counts()[id] - s.next_o) as i64;
                    s.next_o += s.k;
                    routing_corr += rem * (1 - s.cost as i64);
                    matched_corr += rem * (1 - s.matched as i64);
                    s.matched = true;
                    s.cost = 1;
                }
            }
            self.special_bits = bits;
        }
        acc.matched += (matched_total as i64 + matched_corr) as u64;
        acc.routing_cost += (routing as i64 + routing_corr) as u64;

        for (idx, &pair) in buckets.distinct().iter().enumerate() {
            let s = &slab[idx];
            let m = buckets.counts()[idx];
            let specials = (s.count + m) / s.k;
            self.counters.insert(
                pair,
                SpecialCounter {
                    count: s.count + m - specials * s.k,
                    k: s.k,
                },
            );
        }
        buckets.restore_slab(slab);
        self.buckets = buckets;
    }

    /// The persistent bucketed batch pass — the default `serve_batch`.
    ///
    /// Same three-phase structure as [`Rbma::serve_batch_bucketed`], but
    /// the slab *is* the scheduler's pair state ([`PersistentPairSlab`];
    /// authoritative while `dense`), so the per-chunk costs collapse:
    ///
    /// - **Phase A** is one counting scan (slot lookup, epoch-tagged
    ///   multiplicity bump) plus the CSR build. The expensive per-pair
    ///   initialization — `ℓ_e` read, `k_e` division — runs once per
    ///   pair *ever*, not once per pair per chunk, and needs no
    ///   matching probe at all (a first-ever-requested pair cannot be
    ///   matched).
    /// - **Phase B** is unchanged: precomputed special schedule,
    ///   multiply-accumulate per distinct pair, corrections per flip.
    ///   Eviction victims absent from the chunk still get their
    ///   persistent entry patched (with a correction multiplier of 0).
    /// - **Phase C** disappears: the pre-pass advances each active
    ///   counter in closed form in place; there is nothing to write
    ///   back.
    fn serve_batch_persistent(
        &mut self,
        batch: &[Pair],
        dm: &DistanceMatrix,
        acc: &mut BatchOutcome,
    ) {
        let n = self.dm.num_racks();
        if n == 0 || n > DENSE_RACK_LIMIT {
            return self.serve_batch_unsorted(batch, dm, acc);
        }
        self.ensure_dense(n, dm);
        let mut pslab = std::mem::take(&mut self.pslab);
        {
            let own_dm = &self.dm;
            let alpha = self.alpha;
            let ok = pslab.begin_chunk(batch, n, |pair| {
                // First-ever occurrence: the pair was never requested,
                // hence never matched, and its counter starts at 0 (its
                // first special lands at occurrence k_e, reproducing
                // bump_counter's "special iff k ≤ 1" insert branch).
                let ell = own_dm.ell(pair).max(1) as u64;
                RbmaPairState {
                    matched: false,
                    cost: dm.ell(pair) as u32,
                    count: 0,
                    k: alpha.div_ceil(ell) as u32,
                    next_o: 0,
                    // Never requested ⇒ never matched ⇒ never marked.
                    maybe_marked: false,
                }
            });
            debug_assert!(ok, "n was gated above");
        }
        let mut slab = pslab.take_slab();

        // Schedule pre-pass: one multiply-accumulate per distinct pair
        // plus its special positions, marked in the chunk bitmap; the
        // Theorem-1 counter advances in closed form right here.
        let mut matched_total = 0u64;
        let mut routing = 0u64;
        self.special_bits.clear();
        self.special_bits.resize(batch.len().div_ceil(64), 0);
        let mut any_special = false;
        for &slot in pslab.active() {
            let m = pslab.count(slot as usize);
            let s = &mut slab[slot as usize];
            matched_total += m as u64 * s.matched as u64;
            routing += m as u64 * s.cost as u64;
            let specials = (s.count + m) / s.k;
            if specials > 0 {
                any_special = true;
                let seg = pslab.positions_of(slot as usize);
                s.next_o = s.k - s.count;
                let mut o = s.next_o;
                while o <= m {
                    let p = seg[(o - 1) as usize] as usize;
                    self.special_bits[p / 64] |= 1 << (p % 64);
                    o += s.k;
                }
            }
            s.count = s.count + m - specials * s.k;
        }

        // Specials, in original request order; everything they flip is
        // charged back as remaining-occurrences × delta.
        let mut routing_corr = 0i64;
        let mut matched_corr = 0i64;
        if any_special {
            let bits = std::mem::take(&mut self.special_bits);
            for (w, &bits_word) in bits.iter().enumerate() {
                let mut word = bits_word;
                while word != 0 {
                    let p = w * 64 + word.trailing_zeros() as usize;
                    word &= word - 1;
                    let id = pslab.id_at(p);
                    let was_matched = slab[id].matched;
                    let maybe_marked = slab[id].maybe_marked;
                    let (added, removed) =
                        self.serve_special_known(batch[p], was_matched, maybe_marked);
                    acc.added += added as u64;
                    acc.removed += removed as u64;
                    // Raise mark hints before the removal patches: a pair
                    // both newly marked and pruned in this same special
                    // must end unmarked (removal wins).
                    if !self.marked_scratch.is_empty() {
                        let scratch = std::mem::take(&mut self.marked_scratch);
                        for &marked_pair in &scratch {
                            if let Some(mid) = pslab.slot_of(marked_pair) {
                                slab[mid].maybe_marked = true;
                            }
                        }
                        self.marked_scratch = scratch;
                    }
                    if removed > 0 {
                        let scratch = std::mem::take(&mut self.removed_scratch);
                        for &victim in &scratch {
                            // Victims always have a slot (only requested
                            // pairs enter the matching); patch it even
                            // when the victim is absent from this chunk
                            // — the state persists.
                            if let Some(vid) = pslab.slot_of(victim) {
                                let rem = pslab.occurrences_after(vid, p as u32) as i64;
                                let v = &mut slab[vid];
                                let new_cost = dm.ell(victim) as u32;
                                routing_corr += rem * (new_cost as i64 - v.cost as i64);
                                matched_corr -= rem * v.matched as i64;
                                v.matched = false;
                                v.cost = new_cost;
                                // Pruned victims leave the marked set.
                                v.maybe_marked = false;
                            }
                        }
                        self.removed_scratch = scratch;
                    }
                    let s = &mut slab[id];
                    let rem = (pslab.count(id) - s.next_o) as i64;
                    s.next_o += s.k;
                    routing_corr += rem * (1 - s.cost as i64);
                    matched_corr += rem * (1 - s.matched as i64);
                    s.matched = true;
                    s.cost = 1;
                    // The special either unmarked the pair (matched
                    // branch) or found it unmatched, hence unmarked.
                    s.maybe_marked = false;
                }
            }
            self.special_bits = bits;
        }
        acc.matched += (matched_total as i64 + matched_corr) as u64;
        acc.routing_cost += (routing as i64 + routing_corr) as u64;

        pslab.restore_slab(slab);
        self.pslab = pslab;
    }

    /// Number of edges currently marked for (lazy) removal.
    pub fn marked_count(&self) -> usize {
        self.marked.len()
    }

    /// The removal mode this instance runs with.
    pub fn mode(&self) -> RemovalMode {
        self.mode
    }

    /// The per-rack cache of `node` (tests and analysis).
    #[cfg(test)]
    fn cache(&self, node: NodeId) -> &DenseMarking {
        &self.caches[node as usize]
    }
}

impl OnlineScheduler for Rbma {
    fn name(&self) -> &str {
        "R-BMA"
    }

    fn cap(&self) -> usize {
        self.matching.cap()
    }

    fn serve(&mut self, pair: Pair) -> ServeOutcome {
        self.ensure_hash();
        let was_matched = self.matching.contains(pair);
        if !self.bump_counter(pair) {
            return ServeOutcome {
                was_matched,
                added: 0,
                removed: 0,
            };
        }
        let (added, removed) = self.serve_special(pair);
        ServeOutcome {
            was_matched,
            added,
            removed,
        }
    }

    /// Unsorted batched serve (the PR 5 fused loop): the ordinary-request
    /// fast path — one flat membership probe, one counter bump, fused
    /// routing accounting — runs without per-request dispatch, distance
    /// lookups (only misses pay one `ℓ_e` read) or stopwatch traffic; only
    /// special requests drop into the paging slow path.
    fn serve_batch_unsorted(
        &mut self,
        batch: &[Pair],
        dm: &DistanceMatrix,
        acc: &mut BatchOutcome,
    ) {
        self.ensure_hash();
        let mut matched = 0u64;
        let mut routing = 0u64;
        for &pair in batch {
            let was_matched = self.matching.contains(pair);
            matched += was_matched as u64;
            routing += if was_matched { 1 } else { dm.ell(pair) as u64 };
            if self.bump_counter(pair) {
                let (added, removed) = self.serve_special(pair);
                acc.added += added as u64;
                acc.removed += removed as u64;
            }
        }
        acc.matched += matched;
        acc.routing_cost += routing;
    }

    /// Bucketed batched serve over the persistent pair slab: the
    /// per-pair reads amortize to once per pair *ever* (see
    /// `Rbma::serve_batch_persistent`); byte-identical to the
    /// unsorted path.
    fn serve_batch(&mut self, batch: &[Pair], dm: &DistanceMatrix, acc: &mut BatchOutcome) {
        self.serve_batch_persistent(batch, dm, acc);
    }

    /// Bucketed batched serve with the preprocessing scan sharded by
    /// rack-pair ownership across `pool`; byte-identical at any width.
    fn serve_batch_sharded(
        &mut self,
        batch: &[Pair],
        dm: &DistanceMatrix,
        pool: &IntraPool,
        acc: &mut BatchOutcome,
    ) {
        self.serve_batch_bucketed(batch, dm, acc, Some(pool));
    }

    fn matching(&self) -> &BMatching {
        &self.matching
    }

    fn telemetry_flush(&mut self, sink: &Telemetry) {
        sink.add_counter("rbma.specials", self.stats.specials.take());
        sink.add_counter("rbma.dense_migrations", self.stats.dense_migrations.take());
        sink.add_counter("rbma.hash_migrations", self.stats.hash_migrations.take());
        // Cumulative sources: emit deltas against the last flush.
        let wraps = self.pslab.epoch_wraps();
        sink.add_counter("rbma.slab_epoch_wraps", wraps - self.stats.flushed_wraps);
        self.stats.flushed_wraps = wraps;
        let phases: u64 = self.caches.iter().map(|c| c.phase_transitions()).sum();
        sink.add_counter("rbma.marking_phases", phases - self.stats.flushed_phases);
        self.stats.flushed_phases = phases;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_paging::PagingPolicy;
    use dcn_topology::builders;

    fn uniform_dm(n: usize) -> Arc<DistanceMatrix> {
        Arc::new(DistanceMatrix::uniform(n))
    }

    fn fat_tree_dm(racks: usize) -> Arc<DistanceMatrix> {
        Arc::new(DistanceMatrix::between_racks(
            &builders::fat_tree_with_racks(racks),
        ))
    }

    #[test]
    fn uniform_alpha_one_matches_immediately() {
        // α = 1 and ℓ = 1 ⇒ k_e = 1: every request is special.
        let mut r = Rbma::new(uniform_dm(6), 2, 1, RemovalMode::Strict, 0);
        let out = r.serve(Pair::new(0, 1));
        assert!(!out.was_matched);
        assert_eq!(out.added, 1);
        let out = r.serve(Pair::new(0, 1));
        assert!(out.was_matched);
        assert_eq!(out.added, 0);
    }

    #[test]
    fn special_period_follows_alpha_over_ell() {
        // Fat-tree: ℓ ∈ {2, 4}. α = 8 ⇒ k = 4 for same-pod, 2 for cross-pod.
        let dm = fat_tree_dm(8);
        let same_pod = Pair::new(0, 1);
        assert_eq!(dm.ell(same_pod), 2);
        let mut r = Rbma::new(dm, 2, 8, RemovalMode::Strict, 0);
        // k = 8/2 = 4: first three requests are ordinary.
        for _ in 0..3 {
            assert_eq!(r.serve(same_pod).added, 0);
        }
        assert_eq!(r.serve(same_pod).added, 1, "4th request is special");
    }

    #[test]
    fn degree_bound_never_violated_strict_and_lazy() {
        for mode in [RemovalMode::Strict, RemovalMode::Lazy] {
            let n = 12;
            let b = 3;
            let mut r = Rbma::new(uniform_dm(n), b, 1, mode, 9);
            // Hammer rack 0 with all partners repeatedly.
            for round in 0..50u32 {
                for v in 1..n as u32 {
                    r.serve(Pair::new(0, v));
                    r.matching().assert_valid();
                    assert!(r.matching().degree(0) <= b, "mode {mode:?} round {round}");
                }
            }
        }
    }

    #[test]
    fn strict_mode_keeps_intersection_invariant() {
        let n = 10;
        let mut r = Rbma::new(uniform_dm(n), 2, 1, RemovalMode::Strict, 3);
        let reqs: Vec<Pair> = (0..500u32)
            .map(|i| {
                let a = i % n as u32;
                let b = (i * 7 + 1) % n as u32;
                if a == b {
                    Pair::new(a, (b + 1) % n as u32)
                } else {
                    Pair::new(a, b)
                }
            })
            .collect();
        for &p in &reqs {
            r.serve(p);
            // Every matching edge must be cached at both endpoints.
            for e in r.matching().edges() {
                assert!(r.cache(e.lo()).contains(e.hi() as u64));
                assert!(r.cache(e.hi()).contains(e.lo() as u64));
            }
        }
    }

    #[test]
    fn lazy_mode_superset_of_strict_invariant() {
        // In lazy mode M may exceed the cache intersection, but every edge
        // NOT in the intersection must be marked.
        let n = 10;
        let mut r = Rbma::new(uniform_dm(n), 2, 1, RemovalMode::Lazy, 3);
        for i in 0..800u32 {
            let a = i % n as u32;
            let b = (i / 3 + a + 1) % n as u32;
            if a == b {
                continue;
            }
            r.serve(Pair::new(a, b));
            for e in r.matching().edges() {
                let in_both = r.cache(e.lo()).contains(e.hi() as u64)
                    && r.cache(e.hi()).contains(e.lo() as u64);
                assert!(
                    in_both || r.marked.contains(&e),
                    "unmarked edge {e} outside cache intersection"
                );
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed: u64| {
            let mut r = Rbma::new(uniform_dm(8), 2, 1, RemovalMode::Lazy, seed);
            (0..2000u32)
                .map(|i| {
                    let a = i % 8;
                    let b = (i.wrapping_mul(2654435761) % 7 + 1 + a) % 8;
                    if a == b {
                        return 0;
                    }
                    let o = r.serve(Pair::new(a, b));
                    o.added + o.removed
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(4), run(4));
    }

    #[test]
    fn reported_mutations_match_matching_size() {
        let mut r = Rbma::new(uniform_dm(10), 2, 1, RemovalMode::Lazy, 1);
        let mut net: i64 = 0;
        for i in 0..1000u32 {
            let a = i % 10;
            let b = (i * 13 + 1) % 10;
            if a == b {
                continue;
            }
            let o = r.serve(Pair::new(a, b));
            net += o.added as i64 - o.removed as i64;
        }
        assert_eq!(
            net,
            r.matching().len() as i64,
            "add/remove accounting drifted"
        );
    }

    #[test]
    fn serve_batch_equals_serve_loop() {
        // The batched override must agree with per-request serving — same
        // mutations, same accounting, same final matching — for both
        // removal modes and a non-uniform metric (so k_e > 1 paths and
        // ℓ_e routing both exercise).
        for mode in [RemovalMode::Lazy, RemovalMode::Strict] {
            let dm = fat_tree_dm(16);
            let reqs: Vec<Pair> = (0..4000u32)
                .map(|i| {
                    let a = i % 16;
                    let b = (a + 1 + i.wrapping_mul(2654435761) % 15) % 16;
                    if a == b {
                        Pair::new(a, (b + 1) % 16)
                    } else {
                        Pair::new(a, b)
                    }
                })
                .filter(|p| p.lo() != p.hi())
                .collect();

            let mut unbatched = Rbma::new(dm.clone(), 3, 8, mode, 5);
            let mut expected = BatchOutcome::default();
            for &p in &reqs {
                let o = unbatched.serve(p);
                expected.record(p, o, &dm);
            }

            let mut batched = Rbma::new(dm.clone(), 3, 8, mode, 5);
            let mut acc = BatchOutcome::default();
            for chunk in reqs.chunks(97) {
                batched.serve_batch(chunk, &dm, &mut acc);
            }

            assert_eq!(acc, expected, "mode {mode:?}");
            let mut a: Vec<Pair> = batched.matching().edges().collect();
            let mut b: Vec<Pair> = unbatched.matching().edges().collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "mode {mode:?}: matchings diverged");

            // The explicit unsorted pass and the intra-sharded bucketed
            // pass must agree with the same accounting too.
            let mut unsorted = Rbma::new(dm.clone(), 3, 8, mode, 5);
            let mut acc_u = BatchOutcome::default();
            for chunk in reqs.chunks(97) {
                unsorted.serve_batch_unsorted(chunk, &dm, &mut acc_u);
            }
            assert_eq!(acc_u, expected, "mode {mode:?}: unsorted path");

            let pool = IntraPool::new(3);
            let mut sharded = Rbma::new(dm.clone(), 3, 8, mode, 5);
            let mut acc_s = BatchOutcome::default();
            for chunk in reqs.chunks(97) {
                sharded.serve_batch_sharded(chunk, &dm, &pool, &mut acc_s);
            }
            assert_eq!(acc_s, expected, "mode {mode:?}: sharded path");
        }
    }
}

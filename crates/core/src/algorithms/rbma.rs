//! **R-BMA** — the paper's randomized online (b,a)-matching algorithm
//! (§2.2, Corollary 3).
//!
//! Composition of the two reductions:
//!
//! 1. **Uniform reduction (Theorem 1).** For each pair `e`, only every
//!    `k_e = ⌈α/ℓ_e⌉`-th request is *special*; only special requests reach
//!    the paging layer. This amortizes the reconfiguration cost α against
//!    the routing cost the algorithm pays on ordinary requests, losing a
//!    factor 4γ = 4(1 + ℓmax/α).
//! 2. **Paging reduction (Theorem 2).** One randomized-marking paging
//!    instance per rack; the cache of rack `u` (capacity `b`) holds the
//!    partner racks of pairs incident to `u`. A special request to
//!    `e = {u, v}` is fed to both endpoint caches; the matching invariant is
//!    `e ∈ M ⇔ v ∈ cache(u) ∧ u ∈ cache(v)`.
//!
//! **Removal modes** (footnote 2 of the paper): under `Strict`, a pair
//! evicted from either endpoint cache leaves `M` immediately (the invariant
//! of the analysis). Under `Lazy` — the paper's experimental choice —
//! eviction only *marks* the edge; marked edges are pruned when a node's
//! degree would exceed `b`. Keeping an edge longer can only save routing
//! cost; the degree bound stays intact either way (tested).
//!
//! **Hot-path layout** (the O(1) amortized serve cost §3.2's execution-time
//! figures rest on): the per-rack caches are [`DenseMarking`] — flat
//! index-addressed marking over the rack universe, allocation-free accesses,
//! draw-for-draw identical to the generic `Marking` — and the Theorem-1
//! counters cache `k_e` alongside the count, so the common (ordinary-
//! request) path is one membership probe of the flat matching plus one hash
//! bump, with no division and no distance lookup. The batched entry point
//! ([`OnlineScheduler::serve_batch`]) goes further: it buckets each chunk
//! by rack pair into a **persistent** slab
//! ([`crate::batch::PersistentPairSlab`]) that carries each pair's
//! matched/cost/counter state across chunks, so membership probes, `ℓ_e`
//! reads and counter fetches are paid once per pair *ever*; ordinary
//! requests collapse to one multiply-accumulate per distinct pair per
//! chunk while special requests execute at their precomputed positions in
//! original request order (RNG draws must fire at the unsorted positions)
//! — byte-identical to the unsorted fused loop
//! ([`OnlineScheduler::serve_batch_unsorted`]), which remains available.

use crate::batch::{PersistentPairSlab, DENSE_RACK_LIMIT};
use crate::parallel::{IntraPool, ShardSlice};
use crate::scheduler::{BatchOutcome, OnlineScheduler, ServeOutcome};
use dcn_matching::BMatching;
use dcn_paging::{DenseAccess, DenseMarking};
use dcn_telemetry::{Counter, Telemetry};
use dcn_topology::{DistanceMatrix, NodeId, Pair};
use dcn_util::rngx::derive_seed;
use dcn_util::{FxHashMap, FxHashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Specials share (as a fraction) above which the unpooled `serve_batch`
/// diverts a chunk to the unsorted fused loop. With the flat stores of
/// this PR (`matched_set` bitmap probes, `DenseCounters` indexed loads)
/// the per-request reads the sorted slab pass was built to amortize cost
/// almost nothing, and measured on the dev container the fused loop is
/// at par or ahead from ~8% share upward; the cutoff is set just below
/// the α = 10 standard point (~25–30% specials, which diverts) while
/// keeping the slab — and its intra-shardable Phase-A scan — the default
/// in the low-share regime its amortization was designed for. The
/// intra-pooled entry (`serve_batch_sharded`) never diverts: the fused
/// loop has nothing to shard.
const SPECIALS_DENSE_CUTOFF: (u64, u64) = (1, 5);

/// Batched requests observed before the density estimate is trusted.
const SPECIALS_DISPATCH_WARMUP: u64 = 1024;

/// How evictions from the per-node caches translate to matching removals.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RemovalMode {
    /// Matching = exact intersection of endpoint caches (as analyzed).
    Strict,
    /// Evictions mark edges; marked edges are pruned on demand
    /// (the paper's experimental setting, footnote 2).
    Lazy,
}

/// Per-pair Theorem-1 state: requests seen since the last special request,
/// plus the cached period `k_e = ⌈α/ℓ_e⌉` (constant per pair, so the hot
/// loop never divides).
#[derive(Clone, Copy, Debug)]
struct SpecialCounter {
    count: u32,
    k: u32,
}

/// Per-pair slab entry of the bucketed serve passes: everything the
/// ordinary-request fast path needs, loaded once per pair per chunk
/// instead of once per request. `matched`/`cost` are patched in place by
/// the rare special-request slow path when it changes the matching.
///
/// In the bucketed (persistent) serve paths — sequential and
/// intra-sharded alike — this *is* the pair's authoritative state,
/// carried across chunks in a [`PersistentPairSlab`].
#[derive(Clone, Copy, Debug, Default)]
struct RbmaPairState {
    /// Whether the pair is currently a matching edge.
    matched: bool,
    /// Routing cost of the next request to this pair (1 or `ℓ_e`).
    cost: u32,
    /// Theorem-1 counter. The chunk pre-pass reads it once, derives the
    /// full special schedule, and advances it in closed form.
    count: u32,
    /// Cached period `k_e`.
    k: u32,
    /// Occurrence index (1-based) of the pair's next special request in
    /// this chunk, advanced as the special schedule executes.
    next_o: u32,
    /// Conservative hint: `false` guarantees the pair is NOT in the
    /// lazy-removal `marked` set, letting a matched special skip the
    /// hash removal. `true` means "maybe" — maintained from the mark
    /// scratch after every special, refreshed on store migration.
    maybe_marked: bool,
}

/// The randomized online b-matching scheduler.
pub struct Rbma {
    dm: Arc<DistanceMatrix>,
    alpha: u64,
    mode: RemovalMode,
    /// Per-pair counter toward the next special request (Theorem 1) —
    /// the authoritative store while `dense` is false (per-request and
    /// unsorted-batched serving, and racks above [`DENSE_RACK_LIMIT`]).
    counters: DenseCounters,
    /// Dense pair-slot store of the default bucketed serve path —
    /// authoritative while `dense` is true. Holds the Theorem-1 counter
    /// *and* the cached `matched`/`cost` view per pair, persistent
    /// across chunks, so the bucketed pass pays no hash traffic at all.
    pslab: PersistentPairSlab<RbmaPairState>,
    /// Which of the two stores above is current; serve paths migrate
    /// lazily on entry ([`Rbma::ensure_dense`] / [`Rbma::ensure_hash`]).
    dense: bool,
    /// Per-rack randomized marking caches (Theorem 2). Page ids are the
    /// partner rack ids — a dense universe, hence the flat layout.
    caches: Vec<DenseMarking>,
    matching: BMatching,
    /// Mirror of `matching`'s edge set (kept in lockstep by the three
    /// mutation sites below): turns the per-eviction "is the victim
    /// edge matched?" test and the per-request entry probes of the
    /// unbatched paths into one bit test instead of an adjacency scan.
    matched_set: DensePairSet,
    /// Lazy mode: edges marked for removal but still carried in `M`
    /// (dense bitmap at bucketed-path rack counts, hash set beyond).
    marked: DensePairSet,
    /// Pairs the last [`Rbma::serve_special`] removed from the matching —
    /// the batched pass patches their slab entries.
    removed_scratch: Vec<Pair>,
    /// Pairs the last [`Rbma::serve_special`] newly eviction-marked
    /// (lazy mode) — the persistent pass raises their slab mark hints.
    marked_scratch: Vec<Pair>,
    /// Reusable bitmap over chunk positions marking where special
    /// requests fire (the precomputed schedule of the bucketed pass).
    /// Atomic because one 64-position word can span several workers'
    /// pairs in the sharded charge (`fetch_or` there — OR commutes, so
    /// the final bitmap is width-independent; plain `get_mut` stores on
    /// the sequential path).
    special_bits: Vec<AtomicU64>,
    /// Per-worker (routing, matched, any-special) partials of the
    /// sharded Phase-A charge, folded in worker order afterwards.
    shard_parts: Vec<(AtomicU64, AtomicU64, AtomicU64)>,
    /// Requests served so far through the batched entry points — the
    /// denominator of the specials-density dispatch estimate.
    served_reqs: u64,
    /// Special requests among them (the numerator).
    served_specials: u64,
    /// Local event recorders, drained by `telemetry_flush` (only the
    /// rare slow paths pay a bump; ordinary requests record nothing).
    stats: RbmaStats,
}

/// R-BMA's telemetry recorders (ZSTs under `--cfg dcn_telemetry_off`).
/// The wrap/phase fields are flush baselines for cumulative sources
/// owned elsewhere (the slab and the marking caches count over their
/// lifetime; each flush emits the delta since the previous one).
#[derive(Default)]
struct RbmaStats {
    /// Theorem-1 special requests executed (the Theorem-2 slow path).
    specials: Counter,
    /// Specials served by the hint-clean fast path (matched, provably
    /// unmarked ⇒ two mark-only cache hits, no fault/RNG machinery).
    fast_specials: Counter,
    /// Chunks whose Phase-A charging ran sharded across an `IntraPool`.
    sharded_chunks: Counter,
    /// Chunks `serve_batch` diverted to the unsorted fused loop because
    /// the observed specials share crossed [`SPECIALS_DENSE_CUTOFF`].
    unsorted_diverts: Counter,
    /// hash → dense store migrations (bucketed-path entry).
    dense_migrations: Counter,
    /// dense → hash store migrations (per-request/unsorted entry).
    hash_migrations: Counter,
    /// Slab epoch wraps already reported by earlier flushes.
    flushed_wraps: u64,
    /// Marking-phase resets (summed over the per-rack caches) already
    /// reported by earlier flushes.
    flushed_phases: u64,
}

impl Rbma {
    /// Creates R-BMA with degree cap `b` and reconfiguration cost `alpha`.
    pub fn new(
        dm: Arc<DistanceMatrix>,
        b: usize,
        alpha: u64,
        mode: RemovalMode,
        seed: u64,
    ) -> Self {
        assert!(alpha >= 1, "alpha must be at least 1");
        let n = dm.num_racks();
        let caches = (0..n)
            .map(|v| DenseMarking::new(b, n, derive_seed(seed, v as u64)))
            .collect();
        Self {
            dm,
            alpha,
            mode,
            counters: DenseCounters::new(n),
            pslab: PersistentPairSlab::default(),
            dense: false,
            caches,
            matching: BMatching::new(n, b),
            matched_set: DensePairSet::new(n),
            marked: DensePairSet::new(n),
            removed_scratch: Vec::new(),
            marked_scratch: Vec::new(),
            special_bits: Vec::new(),
            shard_parts: Vec::new(),
            stats: RbmaStats::default(),
            served_reqs: 0,
            served_specials: 0,
        }
    }

    /// Whether the observed specials share is past the point where the
    /// sorted slab pass stops paying off. At high density (small α)
    /// nearly every request drops into Phase B anyway, so the counting
    /// scan, CSR fill and closed-form charging are pure overhead and
    /// the unsorted fused loop wins; the two paths are byte-identical
    /// (asserted live in `scaling`), so `serve_batch` may pick either
    /// per chunk. The estimate warms up over the first few chunks
    /// before it is trusted.
    #[inline]
    fn specials_dense(&self) -> bool {
        self.served_reqs >= SPECIALS_DISPATCH_WARMUP
            && self.served_specials * SPECIALS_DENSE_CUTOFF.1
                > self.served_reqs * SPECIALS_DENSE_CUTOFF.0
    }

    /// `k_e = ⌈α/ℓ_e⌉` — the special-request period of a pair.
    #[inline]
    fn k_e(&self, pair: Pair) -> u32 {
        let ell = self.dm.ell(pair).max(1) as u64;
        self.alpha.div_ceil(ell) as u32
    }

    /// Advances `pair`'s Theorem-1 counter; returns whether this request is
    /// special. The period is computed once per pair and cached.
    #[inline]
    fn bump_counter(&mut self, pair: Pair) -> bool {
        match self.counters.get_mut(pair) {
            Some(c) => {
                c.count += 1;
                if c.count >= c.k {
                    c.count = 0;
                    true
                } else {
                    false
                }
            }
            None => {
                let k = self.k_e(pair);
                let special = k <= 1;
                self.counters.insert(
                    pair,
                    SpecialCounter {
                        count: if special { 0 } else { 1 },
                        k,
                    },
                );
                special
            }
        }
    }

    /// Makes the dense slot store authoritative (entry migration of the
    /// default bucketed path). Every hash entry is written through to
    /// its persistent slot — counter verbatim, `matched`/`cost`
    /// recomputed from the matching, since hash-mode serving does not
    /// patch slots. The hash is a superset of the slots ever allocated
    /// ([`Rbma::ensure_hash`] dumps them all back), so this refreshes
    /// every stale slot. O(pairs), amortized free: a run serves through
    /// one path only, so migrations fire at most once per run.
    fn ensure_dense(&mut self, n: usize, dm: &DistanceMatrix) {
        if self.dense {
            return;
        }
        self.stats.dense_migrations.bump();
        let counters = std::mem::take(&mut self.counters);
        let mut pslab = std::mem::take(&mut self.pslab);
        for (pair, c) in counters.iter() {
            let matched = self.matched_set.contains(pair);
            let slot = pslab.slot_for(pair, n, |_| RbmaPairState::default());
            *pslab.state_mut(slot) = RbmaPairState {
                matched,
                cost: if matched { 1 } else { dm.ell(pair) as u32 },
                count: c.count,
                k: c.k,
                next_o: 0,
                maybe_marked: self.marked.contains(pair),
            };
        }
        self.pslab = pslab;
        self.counters = counters;
        self.counters.clear();
        self.dense = true;
    }

    /// Makes the hash store authoritative (entry migration of the
    /// per-request, unsorted-batched and intra-sharded paths): every
    /// slot's Theorem-1 counter is dumped back into the hash. The slots
    /// themselves stay allocated — a later [`Rbma::ensure_dense`]
    /// refreshes them in place.
    fn ensure_hash(&mut self) {
        if !self.dense {
            return;
        }
        self.stats.hash_migrations.bump();
        for i in 0..self.pslab.len() {
            let pair = self.pslab.seen()[i];
            let slot = self
                .pslab
                .slot_of(pair)
                .expect("seen pairs keep their slot");
            let s = *self.pslab.state(slot);
            self.counters.insert(
                pair,
                SpecialCounter {
                    count: s.count,
                    k: s.k,
                },
            );
        }
        self.dense = false;
    }

    /// Applies one endpoint's cache update for a special request; returns
    /// the matching removals it caused.
    fn touch_cache(&mut self, node: NodeId, partner: NodeId) -> u32 {
        let access = self.caches[node as usize].access_dense(partner as u64);
        let mut removed = 0;
        if let DenseAccess::Fault {
            evicted: Some(evicted_page),
        } = access
        {
            let gone = Pair::new(node, evicted_page as NodeId);
            match self.mode {
                RemovalMode::Strict => {
                    if self.matched_set.remove(gone) {
                        let present = self.matching.remove(gone);
                        debug_assert!(present, "matched_set out of sync at {gone}");
                        self.removed_scratch.push(gone);
                        removed += 1;
                    }
                }
                RemovalMode::Lazy => {
                    if self.matched_set.contains(gone) && self.marked.insert(gone) {
                        self.marked_scratch.push(gone);
                    }
                }
            }
        }
        removed
    }

    /// Lazy mode: frees capacity at `node` by pruning marked edges.
    fn prune_marked_at(&mut self, node: NodeId) -> u32 {
        let mut removed = 0;
        while self.matching.degree(node) >= self.matching.cap() {
            let victim = self
                .matching
                .incident_edges(node)
                .iter()
                .copied()
                .find(|&e| self.marked.contains(e))
                .expect("lazy R-BMA: a full node must carry a marked edge");
            self.matching.remove(victim);
            self.matched_set.remove(victim);
            self.marked.remove(victim);
            self.removed_scratch.push(victim);
            removed += 1;
        }
        removed
    }

    /// The Theorem-2 slow path of a special request: feed both endpoint
    /// caches, restore the matching invariant. Returns `(added, removed)`;
    /// the removed pairs themselves land in `removed_scratch`.
    fn serve_special(&mut self, pair: Pair) -> (u32, u32) {
        let matched = self.matched_set.contains(pair);
        self.serve_special_known(pair, matched, true)
    }

    /// [`Rbma::serve_special`] with the pair's current matching membership
    /// already known (the bucketed pass reads it from the chunk slab,
    /// skipping the membership scan). `matched` must equal
    /// `self.matching.contains(pair)` — the slab keeps it exact because
    /// every mid-chunk removal patches the victim's entry and a pair's own
    /// cache touches can never evict that same pair. `maybe_marked` may
    /// only be `false` when the pair is provably absent from the lazy
    /// `marked` set (the persistent slab's hint); pass `true` when
    /// unknown.
    fn serve_special_known(&mut self, pair: Pair, matched: bool, maybe_marked: bool) -> (u32, u32) {
        self.stats.specials.bump();
        self.removed_scratch.clear();
        self.marked_scratch.clear();
        if matched && !(maybe_marked && self.marked.contains(pair)) {
            // Superset invariant: a matched, unmarked pair is cached at
            // both endpoints (strict mode evicts the edge with the page;
            // lazy mode marks it), so both touches are pure hits — mark
            // them directly and skip the fault/eviction machinery and any
            // RNG traffic.
            self.stats.fast_specials.bump();
            let (u, v) = pair.endpoints();
            let (cu, cv) = two_caches(&mut self.caches, u, v);
            debug_assert!(cu.probe(v as u64).0 && cv.probe(u as u64).0);
            cu.mark_cached_hit(v as u64);
            cv.mark_cached_hit(u as u64);
            debug_assert!(self.matching.contains(pair));
            return (0, 0);
        }
        let (u, v) = pair.endpoints();
        let mut removed = self.touch_cache(u, v);
        removed += self.touch_cache(v, u);

        // Matching invariant: the pair is now in both caches.
        debug_assert!(dcn_paging::PagingPolicy::contains(
            &self.caches[u as usize],
            v as u64
        ));
        debug_assert!(dcn_paging::PagingPolicy::contains(
            &self.caches[v as usize],
            u as u64
        ));
        debug_assert_eq!(matched, self.matching.contains(pair));
        let mut added = 0;
        if !matched {
            if self.mode == RemovalMode::Lazy {
                removed += self.prune_marked_at(u);
                removed += self.prune_marked_at(v);
            }
            self.matching.insert(pair);
            self.matched_set.insert(pair);
            added = 1;
            // An unmatched pair is never marked (marked ⊆ M), so the
            // matched branch's "alive again" unmark has nothing to do.
        } else if maybe_marked {
            // A re-requested edge is alive again.
            self.marked.remove(pair);
        }
        (added, removed)
    }

    /// The persistent bucketed batch pass — the default `serve_batch`.
    ///
    /// Same three-phase structure as [`Rbma::serve_batch_bucketed`], but
    /// the slab *is* the scheduler's pair state ([`PersistentPairSlab`];
    /// authoritative while `dense`), so the per-chunk costs collapse:
    ///
    /// - **Phase A** is one counting scan (slot lookup, epoch-tagged
    ///   multiplicity bump) plus the CSR build. The expensive per-pair
    ///   initialization — `ℓ_e` read, `k_e` division — runs once per
    ///   pair *ever*, not once per pair per chunk, and needs no
    ///   matching probe at all (a first-ever-requested pair cannot be
    ///   matched).
    /// - **Phase B** is unchanged: precomputed special schedule,
    ///   multiply-accumulate per distinct pair, corrections per flip.
    ///   Eviction victims absent from the chunk still get their
    ///   persistent entry patched (with a correction multiplier of 0).
    /// - **Phase C** disappears: the pre-pass advances each active
    ///   counter in closed form in place; there is nothing to write
    ///   back.
    ///
    /// With a `pool` of width > 1, Phase A runs **sharded**: the
    /// counting scan and CSR fill broadcast inside
    /// [`PersistentPairSlab::begin_chunk_sharded`], and the charging
    /// pre-pass broadcasts here — each worker charges the runs of the
    /// pairs it owns (`pair_id % width`, disjoint slab slots) into
    /// per-worker (routing, matched) partials that fold deterministically
    /// in worker order. Only Phase B stays sequential, in original
    /// request order, so the RNG byte stream is untouched and reports
    /// remain byte-identical at every width.
    fn serve_batch_persistent(
        &mut self,
        batch: &[Pair],
        dm: &DistanceMatrix,
        acc: &mut BatchOutcome,
        pool: Option<&IntraPool>,
    ) {
        let n = self.dm.num_racks();
        if n == 0 || n > DENSE_RACK_LIMIT {
            return self.serve_batch_unsorted(batch, dm, acc);
        }
        self.ensure_dense(n, dm);
        let width = pool.map_or(1, IntraPool::width);
        let mut pslab = std::mem::take(&mut self.pslab);
        {
            let own_dm = &self.dm;
            let alpha = self.alpha;
            // First-ever occurrence: the pair was never requested,
            // hence never matched, and its counter starts at 0 (its
            // first special lands at occurrence k_e, reproducing
            // bump_counter's "special iff k ≤ 1" insert branch).
            let init = |pair: Pair| {
                let ell = own_dm.ell(pair).max(1) as u64;
                RbmaPairState {
                    matched: false,
                    cost: dm.ell(pair) as u32,
                    count: 0,
                    k: alpha.div_ceil(ell) as u32,
                    next_o: 0,
                    // Never requested ⇒ never matched ⇒ never marked.
                    maybe_marked: false,
                }
            };
            let ok = match pool {
                Some(pool) if width > 1 => pslab.begin_chunk_sharded(batch, n, init, pool),
                _ => pslab.begin_chunk(batch, n, init),
            };
            if !ok {
                // n was gated above, so this is the u16 multiplicity
                // gate: the chunk is longer than 65535 requests.
                self.pslab = pslab;
                return self.serve_batch_unsorted(batch, dm, acc);
            }
        }
        let mut slab = pslab.take_slab();

        // Schedule pre-pass: one multiply-accumulate per distinct pair
        // plus its special positions, marked in the chunk bitmap; the
        // Theorem-1 counter advances in closed form right here.
        let mut matched_total = 0u64;
        let mut routing = 0u64;
        self.special_bits.clear();
        self.special_bits
            .resize_with(batch.len().div_ceil(64), || AtomicU64::new(0));
        let mut any_special = false;
        if let Some(pool) = pool.filter(|p| p.width() > 1) {
            // Sharded charge: workers walk their own active slots.
            self.stats.sharded_chunks.bump();
            while self.shard_parts.len() < width {
                self.shard_parts.push(Default::default());
            }
            {
                let parts = &self.shard_parts;
                let bits = &self.special_bits;
                let slab_cells = ShardSlice::new(&mut slab[..]);
                let pslab_ref = &pslab;
                pool.broadcast(move |w| {
                    let mut routing_w = 0u64;
                    let mut matched_w = 0u64;
                    let mut any_w = false;
                    for &slot in pslab_ref.active_of(w) {
                        let slot = slot as usize;
                        let m = pslab_ref.count(slot);
                        // SAFETY: `slot`'s pair is owned by worker `w`
                        // alone, and the broadcast barrier orders this
                        // write before the caller's next read.
                        let s = unsafe { slab_cells.get_mut(slot) };
                        matched_w += m as u64 * s.matched as u64;
                        routing_w += m as u64 * s.cost as u64;
                        let specials = (s.count + m) / s.k;
                        if specials > 0 {
                            any_w = true;
                            let seg = pslab_ref.positions_of(slot);
                            s.next_o = s.k - s.count;
                            let mut o = s.next_o;
                            while o <= m {
                                let p = seg[(o - 1) as usize] as usize;
                                bits[p / 64].fetch_or(1 << (p % 64), Ordering::Relaxed);
                                o += s.k;
                            }
                        }
                        s.count = s.count + m - specials * s.k;
                    }
                    let (r, mt, any) = &parts[w];
                    r.store(routing_w, Ordering::Relaxed);
                    mt.store(matched_w, Ordering::Relaxed);
                    any.store(any_w as u64, Ordering::Relaxed);
                });
            }
            // Fold the partials in worker order. Integer sums commute,
            // so the totals equal the sequential pass's bit for bit.
            for parts in self.shard_parts[..width].iter_mut() {
                routing += *parts.0.get_mut();
                matched_total += *parts.1.get_mut();
                any_special |= *parts.2.get_mut() != 0;
            }
        } else {
            for &slot in pslab.active() {
                let m = pslab.count(slot as usize);
                let s = &mut slab[slot as usize];
                matched_total += m as u64 * s.matched as u64;
                routing += m as u64 * s.cost as u64;
                let specials = (s.count + m) / s.k;
                if specials > 0 {
                    any_special = true;
                    let seg = pslab.positions_of(slot as usize);
                    s.next_o = s.k - s.count;
                    let mut o = s.next_o;
                    while o <= m {
                        let p = seg[(o - 1) as usize] as usize;
                        *self.special_bits[p / 64].get_mut() |= 1 << (p % 64);
                        o += s.k;
                    }
                }
                s.count = s.count + m - specials * s.k;
            }
        }

        // Specials, in original request order; everything they flip is
        // charged back as remaining-occurrences × delta.
        let mut routing_corr = 0i64;
        let mut matched_corr = 0i64;
        let mut specials_in_chunk = 0u64;
        if any_special {
            let mut bits = std::mem::take(&mut self.special_bits);
            for (w, bits_word) in bits.iter_mut().enumerate() {
                let mut word = *bits_word.get_mut();
                while word != 0 {
                    let p = w * 64 + word.trailing_zeros() as usize;
                    word &= word - 1;
                    specials_in_chunk += 1;
                    let id = pslab.id_at(p);
                    let was_matched = slab[id].matched;
                    let maybe_marked = slab[id].maybe_marked;
                    // Hint-clean fast path: a matched pair provably
                    // absent from the lazy `marked` set sits in both
                    // endpoint caches (in strict mode M *is* the cache
                    // intersection; in lazy mode an M-edge outside the
                    // intersection must be marked — the superset
                    // invariant). Both accesses are hits: no fault, no
                    // eviction draw, no matching change — just the
                    // unmarked→marked move in each cache. Every
                    // correction term is zero (`cost`/`matched` are
                    // already 1/true), so the schedule just advances.
                    if was_matched && !maybe_marked {
                        self.stats.specials.bump();
                        self.stats.fast_specials.bump();
                        let (u, v) = batch[p].endpoints();
                        debug_assert!(self.matching.contains(batch[p]));
                        debug_assert!(!self.marked.contains(batch[p]));
                        let (cu, cv) = two_caches(&mut self.caches, u, v);
                        debug_assert!(cu.probe(v as u64).0 && cv.probe(u as u64).0);
                        cu.mark_cached_hit(v as u64);
                        cv.mark_cached_hit(u as u64);
                        slab[id].next_o += slab[id].k;
                        continue;
                    }
                    let (added, removed) =
                        self.serve_special_known(batch[p], was_matched, maybe_marked);
                    acc.added += added as u64;
                    acc.removed += removed as u64;
                    // Raise mark hints before the removal patches: a pair
                    // both newly marked and pruned in this same special
                    // must end unmarked (removal wins).
                    if !self.marked_scratch.is_empty() {
                        let scratch = std::mem::take(&mut self.marked_scratch);
                        for &marked_pair in &scratch {
                            if let Some(mid) = pslab.slot_of(marked_pair) {
                                slab[mid].maybe_marked = true;
                            }
                        }
                        self.marked_scratch = scratch;
                    }
                    if removed > 0 {
                        let scratch = std::mem::take(&mut self.removed_scratch);
                        for &victim in &scratch {
                            // Victims always have a slot (only requested
                            // pairs enter the matching); patch it even
                            // when the victim is absent from this chunk
                            // — the state persists.
                            if let Some(vid) = pslab.slot_of(victim) {
                                let rem = pslab.occurrences_after(vid, p as u32) as i64;
                                let v = &mut slab[vid];
                                let new_cost = dm.ell(victim) as u32;
                                routing_corr += rem * (new_cost as i64 - v.cost as i64);
                                matched_corr -= rem * v.matched as i64;
                                v.matched = false;
                                v.cost = new_cost;
                                // Pruned victims leave the marked set.
                                v.maybe_marked = false;
                            }
                        }
                        self.removed_scratch = scratch;
                    }
                    let s = &mut slab[id];
                    let rem = (pslab.count(id) - s.next_o) as i64;
                    s.next_o += s.k;
                    routing_corr += rem * (1 - s.cost as i64);
                    matched_corr += rem * (1 - s.matched as i64);
                    s.matched = true;
                    s.cost = 1;
                    // The special either unmarked the pair (matched
                    // branch) or found it unmatched, hence unmarked.
                    s.maybe_marked = false;
                }
            }
            self.special_bits = bits;
        }
        acc.matched += (matched_total as i64 + matched_corr) as u64;
        acc.routing_cost += (routing as i64 + routing_corr) as u64;
        self.served_reqs += batch.len() as u64;
        self.served_specials += specials_in_chunk;

        pslab.restore_slab(slab);
        self.pslab = pslab;
    }

    /// Number of edges currently marked for (lazy) removal.
    pub fn marked_count(&self) -> usize {
        self.marked.len()
    }

    /// The removal mode this instance runs with.
    pub fn mode(&self) -> RemovalMode {
        self.mode
    }

    /// The per-rack cache of `node` (tests and analysis).
    #[cfg(test)]
    fn cache(&self, node: NodeId) -> &DenseMarking {
        &self.caches[node as usize]
    }
}

/// A pair set the specials slow path can probe in one bit test. At
/// rack counts where the bucketed serve path runs dense
/// ([`DENSE_RACK_LIMIT`]) it is a flat pair-id bitmap — L1-resident at
/// paper scale — and only beyond that a hash set. Used for the
/// lazy-removal `marked` set (hit on every eviction, every prune scan
/// — up to `b` membership probes per freed slot — and every matched
/// re-request) and as a mirror of the matching's edge set (so the
/// per-eviction "is the victim edge matched?" test and the unbatched
/// entry probe skip [`BMatching`]'s bounded adjacency scan). `len` is
/// tracked so [`Rbma::marked_count`] stays O(1).
struct DensePairSet {
    /// Rack count of the dense id space; 0 = hash representation.
    n: usize,
    len: usize,
    /// Dense representation: bit `lo·n + hi` ⇔ pair marked.
    bits: Vec<u64>,
    /// Sparse fallback for rack counts above the dense gate.
    hash: FxHashSet<Pair>,
}

impl DensePairSet {
    fn new(n: usize) -> Self {
        let dense = n > 0 && n <= DENSE_RACK_LIMIT;
        Self {
            n: if dense { n } else { 0 },
            len: 0,
            bits: if dense {
                vec![0; (n * n).div_ceil(64)]
            } else {
                Vec::new()
            },
            hash: FxHashSet::default(),
        }
    }

    #[inline]
    fn id(&self, pair: Pair) -> usize {
        pair.lo() as usize * self.n + pair.hi() as usize
    }

    #[inline]
    fn contains(&self, pair: Pair) -> bool {
        if self.n != 0 {
            let i = self.id(pair);
            self.bits[i >> 6] >> (i & 63) & 1 != 0
        } else {
            self.hash.contains(&pair)
        }
    }

    /// Inserts `pair`; returns whether it was newly marked.
    #[inline]
    fn insert(&mut self, pair: Pair) -> bool {
        if self.n != 0 {
            let i = self.id(pair);
            let word = &mut self.bits[i >> 6];
            let bit = 1u64 << (i & 63);
            let fresh = *word & bit == 0;
            *word |= bit;
            self.len += fresh as usize;
            fresh
        } else {
            let fresh = self.hash.insert(pair);
            self.len += fresh as usize;
            fresh
        }
    }

    /// Removes `pair`; returns whether it was marked.
    #[inline]
    fn remove(&mut self, pair: Pair) -> bool {
        if self.n != 0 {
            let i = self.id(pair);
            let word = &mut self.bits[i >> 6];
            let bit = 1u64 << (i & 63);
            let was = *word & bit != 0;
            *word &= !bit;
            self.len -= was as usize;
            was
        } else {
            let was = self.hash.remove(&pair);
            self.len -= was as usize;
            was
        }
    }

    fn len(&self) -> usize {
        self.len
    }
}

/// Theorem-1 counter store of the hash-side serve paths (per-request
/// and unsorted-batched). At bucketed-path rack counts
/// ([`DENSE_RACK_LIMIT`]) it is a flat pair-id-indexed array mirroring
/// the persistent slab's dense addressing — `bump_counter` becomes one
/// indexed load instead of a hash probe, which is most of the
/// per-request budget on specials-heavy traces — with `k == 0` marking
/// a never-seen slot (real periods are ≥ 1) and a `seen` list for
/// O(pairs-seen) iteration and clearing. Beyond the limit it falls
/// back to a hash map. The flat array (8 B × n², ≤ 8 MiB at the limit)
/// allocates on first insert, so dense-path-only runs never pay for it.
#[derive(Default)]
struct DenseCounters {
    /// Rack count of the dense id space; 0 = hash representation.
    n: usize,
    /// Flat pair-id-indexed slots (`k == 0` ⇒ never seen).
    slots: Vec<SpecialCounter>,
    /// Pairs with a live slot, for iteration and clearing.
    seen: Vec<Pair>,
    /// Fallback representation above [`DENSE_RACK_LIMIT`].
    hash: FxHashMap<Pair, SpecialCounter>,
}

impl DenseCounters {
    fn new(n: usize) -> Self {
        if n > 0 && n <= DENSE_RACK_LIMIT {
            Self {
                n,
                ..Self::default()
            }
        } else {
            Self::default()
        }
    }

    #[inline]
    fn id(&self, pair: Pair) -> usize {
        pair.lo() as usize * self.n + pair.hi() as usize
    }

    #[inline]
    fn get_mut(&mut self, pair: Pair) -> Option<&mut SpecialCounter> {
        if self.n != 0 {
            let id = self.id(pair);
            // `get_mut` handles the not-yet-allocated (empty) array too.
            match self.slots.get_mut(id) {
                Some(c) if c.k != 0 => Some(c),
                _ => None,
            }
        } else {
            self.hash.get_mut(&pair)
        }
    }

    fn insert(&mut self, pair: Pair, c: SpecialCounter) {
        debug_assert!(c.k >= 1, "period 0 is the empty-slot sentinel");
        if self.n != 0 {
            if self.slots.is_empty() {
                self.slots = vec![SpecialCounter { count: 0, k: 0 }; self.n * self.n];
            }
            let id = self.id(pair);
            if self.slots[id].k == 0 {
                self.seen.push(pair);
            }
            self.slots[id] = c;
        } else {
            self.hash.insert(pair, c);
        }
    }

    fn iter(&self) -> impl Iterator<Item = (Pair, SpecialCounter)> + '_ {
        let dense = self.seen.iter().map(move |&p| (p, self.slots[self.id(p)]));
        let hash = self.hash.iter().map(|(&p, &c)| (p, c));
        dense.chain(hash)
    }

    fn clear(&mut self) {
        let n = self.n;
        for &p in &self.seen {
            self.slots[p.lo() as usize * n + p.hi() as usize].k = 0;
        }
        self.seen.clear();
        self.hash.clear();
    }
}

/// Split-borrows the two (distinct) endpoint caches of a pair.
#[inline]
fn two_caches(
    caches: &mut [DenseMarking],
    u: NodeId,
    v: NodeId,
) -> (&mut DenseMarking, &mut DenseMarking) {
    debug_assert_ne!(u, v);
    if u < v {
        let (a, b) = caches.split_at_mut(v as usize);
        (&mut a[u as usize], &mut b[0])
    } else {
        let (a, b) = caches.split_at_mut(u as usize);
        (&mut b[0], &mut a[v as usize])
    }
}

impl OnlineScheduler for Rbma {
    fn name(&self) -> &str {
        "R-BMA"
    }

    fn cap(&self) -> usize {
        self.matching.cap()
    }

    fn serve(&mut self, pair: Pair) -> ServeOutcome {
        self.ensure_hash();
        let was_matched = self.matched_set.contains(pair);
        if !self.bump_counter(pair) {
            return ServeOutcome {
                was_matched,
                added: 0,
                removed: 0,
            };
        }
        let (added, removed) = self.serve_special(pair);
        ServeOutcome {
            was_matched,
            added,
            removed,
        }
    }

    /// Unsorted batched serve (the PR 5 fused loop): the ordinary-request
    /// fast path — one flat membership probe, one counter bump, fused
    /// routing accounting — runs without per-request dispatch, distance
    /// lookups (only misses pay one `ℓ_e` read) or stopwatch traffic; only
    /// special requests drop into the paging slow path.
    fn serve_batch_unsorted(
        &mut self,
        batch: &[Pair],
        dm: &DistanceMatrix,
        acc: &mut BatchOutcome,
    ) {
        self.ensure_hash();
        let mut matched = 0u64;
        let mut routing = 0u64;
        let mut specials = 0u64;
        for &pair in batch {
            let was_matched = self.matched_set.contains(pair);
            matched += was_matched as u64;
            routing += if was_matched { 1 } else { dm.ell(pair) as u64 };
            if self.bump_counter(pair) {
                specials += 1;
                let (added, removed) = self.serve_special(pair);
                acc.added += added as u64;
                acc.removed += removed as u64;
            }
        }
        acc.matched += matched;
        acc.routing_cost += routing;
        self.served_reqs += batch.len() as u64;
        self.served_specials += specials;
    }

    /// Bucketed batched serve over the persistent pair slab: the
    /// per-pair reads amortize to once per pair *ever* (see
    /// `Rbma::serve_batch_persistent`); byte-identical to the
    /// unsorted path.
    fn serve_batch(&mut self, batch: &[Pair], dm: &DistanceMatrix, acc: &mut BatchOutcome) {
        // Density dispatch: above the measured crossover share the
        // sorted slab pass amortizes less than its scan costs — divert
        // to the unsorted fused loop, which is byte-identical (the
        // four-path equality contract asserted live in `scaling`), so
        // the pick is purely a matter of speed.
        if self.specials_dense() {
            self.stats.unsorted_diverts.bump();
            self.serve_batch_unsorted(batch, dm, acc);
        } else {
            self.serve_batch_persistent(batch, dm, acc, None);
        }
    }

    /// The persistent pass with the counting scan, CSR fill **and**
    /// Phase-A charging sharded by rack-pair ownership across `pool`;
    /// only the specials schedule stays sequential. Byte-identical at
    /// any width.
    fn serve_batch_sharded(
        &mut self,
        batch: &[Pair],
        dm: &DistanceMatrix,
        pool: &IntraPool,
        acc: &mut BatchOutcome,
    ) {
        self.serve_batch_persistent(batch, dm, acc, Some(pool));
    }

    fn matching(&self) -> &BMatching {
        &self.matching
    }

    fn telemetry_flush(&mut self, sink: &Telemetry) {
        sink.add_counter("rbma.specials", self.stats.specials.take());
        sink.add_counter("rbma.fast_specials", self.stats.fast_specials.take());
        sink.add_counter("rbma.sharded_chunks", self.stats.sharded_chunks.take());
        sink.add_counter("rbma.unsorted_diverts", self.stats.unsorted_diverts.take());
        sink.add_counter("rbma.dense_migrations", self.stats.dense_migrations.take());
        sink.add_counter("rbma.hash_migrations", self.stats.hash_migrations.take());
        // Cumulative sources: emit deltas against the last flush.
        let wraps = self.pslab.epoch_wraps();
        sink.add_counter("rbma.slab_epoch_wraps", wraps - self.stats.flushed_wraps);
        self.stats.flushed_wraps = wraps;
        let phases: u64 = self.caches.iter().map(|c| c.phase_transitions()).sum();
        sink.add_counter("rbma.marking_phases", phases - self.stats.flushed_phases);
        self.stats.flushed_phases = phases;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_paging::PagingPolicy;
    use dcn_topology::builders;

    fn uniform_dm(n: usize) -> Arc<DistanceMatrix> {
        Arc::new(DistanceMatrix::uniform(n))
    }

    fn fat_tree_dm(racks: usize) -> Arc<DistanceMatrix> {
        Arc::new(DistanceMatrix::between_racks(
            &builders::fat_tree_with_racks(racks),
        ))
    }

    #[test]
    fn uniform_alpha_one_matches_immediately() {
        // α = 1 and ℓ = 1 ⇒ k_e = 1: every request is special.
        let mut r = Rbma::new(uniform_dm(6), 2, 1, RemovalMode::Strict, 0);
        let out = r.serve(Pair::new(0, 1));
        assert!(!out.was_matched);
        assert_eq!(out.added, 1);
        let out = r.serve(Pair::new(0, 1));
        assert!(out.was_matched);
        assert_eq!(out.added, 0);
    }

    #[test]
    fn special_period_follows_alpha_over_ell() {
        // Fat-tree: ℓ ∈ {2, 4}. α = 8 ⇒ k = 4 for same-pod, 2 for cross-pod.
        let dm = fat_tree_dm(8);
        let same_pod = Pair::new(0, 1);
        assert_eq!(dm.ell(same_pod), 2);
        let mut r = Rbma::new(dm, 2, 8, RemovalMode::Strict, 0);
        // k = 8/2 = 4: first three requests are ordinary.
        for _ in 0..3 {
            assert_eq!(r.serve(same_pod).added, 0);
        }
        assert_eq!(r.serve(same_pod).added, 1, "4th request is special");
    }

    #[test]
    fn degree_bound_never_violated_strict_and_lazy() {
        for mode in [RemovalMode::Strict, RemovalMode::Lazy] {
            let n = 12;
            let b = 3;
            let mut r = Rbma::new(uniform_dm(n), b, 1, mode, 9);
            // Hammer rack 0 with all partners repeatedly.
            for round in 0..50u32 {
                for v in 1..n as u32 {
                    r.serve(Pair::new(0, v));
                    r.matching().assert_valid();
                    assert!(r.matching().degree(0) <= b, "mode {mode:?} round {round}");
                }
            }
        }
    }

    #[test]
    fn strict_mode_keeps_intersection_invariant() {
        let n = 10;
        let mut r = Rbma::new(uniform_dm(n), 2, 1, RemovalMode::Strict, 3);
        let reqs: Vec<Pair> = (0..500u32)
            .map(|i| {
                let a = i % n as u32;
                let b = (i * 7 + 1) % n as u32;
                if a == b {
                    Pair::new(a, (b + 1) % n as u32)
                } else {
                    Pair::new(a, b)
                }
            })
            .collect();
        for &p in &reqs {
            r.serve(p);
            // Every matching edge must be cached at both endpoints.
            for e in r.matching().edges() {
                assert!(r.cache(e.lo()).contains(e.hi() as u64));
                assert!(r.cache(e.hi()).contains(e.lo() as u64));
            }
        }
    }

    #[test]
    fn lazy_mode_superset_of_strict_invariant() {
        // In lazy mode M may exceed the cache intersection, but every edge
        // NOT in the intersection must be marked.
        let n = 10;
        let mut r = Rbma::new(uniform_dm(n), 2, 1, RemovalMode::Lazy, 3);
        for i in 0..800u32 {
            let a = i % n as u32;
            let b = (i / 3 + a + 1) % n as u32;
            if a == b {
                continue;
            }
            r.serve(Pair::new(a, b));
            for e in r.matching().edges() {
                let in_both = r.cache(e.lo()).contains(e.hi() as u64)
                    && r.cache(e.hi()).contains(e.lo() as u64);
                assert!(
                    in_both || r.marked.contains(e),
                    "unmarked edge {e} outside cache intersection"
                );
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed: u64| {
            let mut r = Rbma::new(uniform_dm(8), 2, 1, RemovalMode::Lazy, seed);
            (0..2000u32)
                .map(|i| {
                    let a = i % 8;
                    let b = (i.wrapping_mul(2654435761) % 7 + 1 + a) % 8;
                    if a == b {
                        return 0;
                    }
                    let o = r.serve(Pair::new(a, b));
                    o.added + o.removed
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(4), run(4));
    }

    #[test]
    fn reported_mutations_match_matching_size() {
        let mut r = Rbma::new(uniform_dm(10), 2, 1, RemovalMode::Lazy, 1);
        let mut net: i64 = 0;
        for i in 0..1000u32 {
            let a = i % 10;
            let b = (i * 13 + 1) % 10;
            if a == b {
                continue;
            }
            let o = r.serve(Pair::new(a, b));
            net += o.added as i64 - o.removed as i64;
        }
        assert_eq!(
            net,
            r.matching().len() as i64,
            "add/remove accounting drifted"
        );
    }

    #[test]
    fn serve_batch_equals_serve_loop() {
        // The batched override must agree with per-request serving — same
        // mutations, same accounting, same final matching — for both
        // removal modes and a non-uniform metric (so k_e > 1 paths and
        // ℓ_e routing both exercise).
        for mode in [RemovalMode::Lazy, RemovalMode::Strict] {
            let dm = fat_tree_dm(16);
            let reqs: Vec<Pair> = (0..4000u32)
                .map(|i| {
                    let a = i % 16;
                    let b = (a + 1 + i.wrapping_mul(2654435761) % 15) % 16;
                    if a == b {
                        Pair::new(a, (b + 1) % 16)
                    } else {
                        Pair::new(a, b)
                    }
                })
                .filter(|p| p.lo() != p.hi())
                .collect();

            let mut unbatched = Rbma::new(dm.clone(), 3, 8, mode, 5);
            let mut expected = BatchOutcome::default();
            for &p in &reqs {
                let o = unbatched.serve(p);
                expected.record(p, o, &dm);
            }

            let mut batched = Rbma::new(dm.clone(), 3, 8, mode, 5);
            let mut acc = BatchOutcome::default();
            for chunk in reqs.chunks(97) {
                batched.serve_batch(chunk, &dm, &mut acc);
            }

            assert_eq!(acc, expected, "mode {mode:?}");
            let mut a: Vec<Pair> = batched.matching().edges().collect();
            let mut b: Vec<Pair> = unbatched.matching().edges().collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "mode {mode:?}: matchings diverged");

            // The explicit unsorted pass and the intra-sharded bucketed
            // pass must agree with the same accounting too.
            let mut unsorted = Rbma::new(dm.clone(), 3, 8, mode, 5);
            let mut acc_u = BatchOutcome::default();
            for chunk in reqs.chunks(97) {
                unsorted.serve_batch_unsorted(chunk, &dm, &mut acc_u);
            }
            assert_eq!(acc_u, expected, "mode {mode:?}: unsorted path");

            let pool = IntraPool::new(3);
            let mut sharded = Rbma::new(dm.clone(), 3, 8, mode, 5);
            let mut acc_s = BatchOutcome::default();
            for chunk in reqs.chunks(97) {
                sharded.serve_batch_sharded(chunk, &dm, &pool, &mut acc_s);
            }
            assert_eq!(acc_s, expected, "mode {mode:?}: sharded path");
        }
    }
}

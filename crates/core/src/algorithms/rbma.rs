//! **R-BMA** — the paper's randomized online (b,a)-matching algorithm
//! (§2.2, Corollary 3).
//!
//! Composition of the two reductions:
//!
//! 1. **Uniform reduction (Theorem 1).** For each pair `e`, only every
//!    `k_e = ⌈α/ℓ_e⌉`-th request is *special*; only special requests reach
//!    the paging layer. This amortizes the reconfiguration cost α against
//!    the routing cost the algorithm pays on ordinary requests, losing a
//!    factor 4γ = 4(1 + ℓmax/α).
//! 2. **Paging reduction (Theorem 2).** One randomized-marking paging
//!    instance per rack; the cache of rack `u` (capacity `b`) holds the
//!    partner racks of pairs incident to `u`. A special request to
//!    `e = {u, v}` is fed to both endpoint caches; the matching invariant is
//!    `e ∈ M ⇔ v ∈ cache(u) ∧ u ∈ cache(v)`.
//!
//! **Removal modes** (footnote 2 of the paper): under `Strict`, a pair
//! evicted from either endpoint cache leaves `M` immediately (the invariant
//! of the analysis). Under `Lazy` — the paper's experimental choice —
//! eviction only *marks* the edge; marked edges are pruned when a node's
//! degree would exceed `b`. Keeping an edge longer can only save routing
//! cost; the degree bound stays intact either way (tested).
//!
//! **Hot-path layout** (the O(1) amortized serve cost §3.2's execution-time
//! figures rest on): the per-rack caches are [`DenseMarking`] — flat
//! index-addressed marking over the rack universe, allocation-free accesses,
//! draw-for-draw identical to the generic `Marking` — and the Theorem-1
//! counters cache `k_e` alongside the count, so the common (ordinary-
//! request) path is one membership probe of the flat matching plus one hash
//! bump, with no division and no distance lookup. The batched entry point
//! ([`OnlineScheduler::serve_batch`]) fuses routing-cost accounting into
//! the same loop.

use crate::scheduler::{BatchOutcome, OnlineScheduler, ServeOutcome};
use dcn_matching::BMatching;
use dcn_paging::{DenseAccess, DenseMarking};
use dcn_topology::{DistanceMatrix, NodeId, Pair};
use dcn_util::rngx::derive_seed;
use dcn_util::{FxHashMap, FxHashSet};
use std::sync::Arc;

/// How evictions from the per-node caches translate to matching removals.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RemovalMode {
    /// Matching = exact intersection of endpoint caches (as analyzed).
    Strict,
    /// Evictions mark edges; marked edges are pruned on demand
    /// (the paper's experimental setting, footnote 2).
    Lazy,
}

/// Per-pair Theorem-1 state: requests seen since the last special request,
/// plus the cached period `k_e = ⌈α/ℓ_e⌉` (constant per pair, so the hot
/// loop never divides).
#[derive(Clone, Copy, Debug)]
struct SpecialCounter {
    count: u32,
    k: u32,
}

/// The randomized online b-matching scheduler.
pub struct Rbma {
    dm: Arc<DistanceMatrix>,
    alpha: u64,
    mode: RemovalMode,
    /// Per-pair counter toward the next special request (Theorem 1).
    counters: FxHashMap<Pair, SpecialCounter>,
    /// Per-rack randomized marking caches (Theorem 2). Page ids are the
    /// partner rack ids — a dense universe, hence the flat layout.
    caches: Vec<DenseMarking>,
    matching: BMatching,
    /// Lazy mode: edges marked for removal but still carried in `M`.
    marked: FxHashSet<Pair>,
}

impl Rbma {
    /// Creates R-BMA with degree cap `b` and reconfiguration cost `alpha`.
    pub fn new(
        dm: Arc<DistanceMatrix>,
        b: usize,
        alpha: u64,
        mode: RemovalMode,
        seed: u64,
    ) -> Self {
        assert!(alpha >= 1, "alpha must be at least 1");
        let n = dm.num_racks();
        let caches = (0..n)
            .map(|v| DenseMarking::new(b, n, derive_seed(seed, v as u64)))
            .collect();
        Self {
            dm,
            alpha,
            mode,
            counters: FxHashMap::default(),
            caches,
            matching: BMatching::new(n, b),
            marked: FxHashSet::default(),
        }
    }

    /// `k_e = ⌈α/ℓ_e⌉` — the special-request period of a pair.
    #[inline]
    fn k_e(&self, pair: Pair) -> u32 {
        let ell = self.dm.ell(pair).max(1) as u64;
        self.alpha.div_ceil(ell) as u32
    }

    /// Advances `pair`'s Theorem-1 counter; returns whether this request is
    /// special. The period is computed once per pair and cached.
    #[inline]
    fn bump_counter(&mut self, pair: Pair) -> bool {
        match self.counters.get_mut(&pair) {
            Some(c) => {
                c.count += 1;
                if c.count >= c.k {
                    c.count = 0;
                    true
                } else {
                    false
                }
            }
            None => {
                let k = self.k_e(pair);
                let special = k <= 1;
                self.counters.insert(
                    pair,
                    SpecialCounter {
                        count: if special { 0 } else { 1 },
                        k,
                    },
                );
                special
            }
        }
    }

    /// Applies one endpoint's cache update for a special request; returns
    /// the matching removals it caused.
    fn touch_cache(&mut self, node: NodeId, partner: NodeId) -> u32 {
        let access = self.caches[node as usize].access_dense(partner as u64);
        let mut removed = 0;
        if let DenseAccess::Fault {
            evicted: Some(evicted_page),
        } = access
        {
            let gone = Pair::new(node, evicted_page as NodeId);
            match self.mode {
                RemovalMode::Strict => {
                    if self.matching.remove(gone) {
                        removed += 1;
                    }
                }
                RemovalMode::Lazy => {
                    if self.matching.contains(gone) {
                        self.marked.insert(gone);
                    }
                }
            }
        }
        removed
    }

    /// Lazy mode: frees capacity at `node` by pruning marked edges.
    fn prune_marked_at(&mut self, node: NodeId) -> u32 {
        let mut removed = 0;
        while self.matching.degree(node) >= self.matching.cap() {
            let victim = self
                .matching
                .incident_edges(node)
                .iter()
                .copied()
                .find(|e| self.marked.contains(e))
                .expect("lazy R-BMA: a full node must carry a marked edge");
            self.matching.remove(victim);
            self.marked.remove(&victim);
            removed += 1;
        }
        removed
    }

    /// The Theorem-2 slow path of a special request: feed both endpoint
    /// caches, restore the matching invariant. Returns `(added, removed)`.
    fn serve_special(&mut self, pair: Pair) -> (u32, u32) {
        let (u, v) = pair.endpoints();
        let mut removed = self.touch_cache(u, v);
        removed += self.touch_cache(v, u);

        // Matching invariant: the pair is now in both caches.
        debug_assert!(dcn_paging::PagingPolicy::contains(
            &self.caches[u as usize],
            v as u64
        ));
        debug_assert!(dcn_paging::PagingPolicy::contains(
            &self.caches[v as usize],
            u as u64
        ));
        let mut added = 0;
        if !self.matching.contains(pair) {
            if self.mode == RemovalMode::Lazy {
                removed += self.prune_marked_at(u);
                removed += self.prune_marked_at(v);
            }
            self.matching.insert(pair);
            added = 1;
        }
        // A re-requested edge is alive again.
        self.marked.remove(&pair);
        (added, removed)
    }

    /// Number of edges currently marked for (lazy) removal.
    pub fn marked_count(&self) -> usize {
        self.marked.len()
    }

    /// The removal mode this instance runs with.
    pub fn mode(&self) -> RemovalMode {
        self.mode
    }

    /// The per-rack cache of `node` (tests and analysis).
    #[cfg(test)]
    fn cache(&self, node: NodeId) -> &DenseMarking {
        &self.caches[node as usize]
    }
}

impl OnlineScheduler for Rbma {
    fn name(&self) -> &str {
        "R-BMA"
    }

    fn cap(&self) -> usize {
        self.matching.cap()
    }

    fn serve(&mut self, pair: Pair) -> ServeOutcome {
        let was_matched = self.matching.contains(pair);
        if !self.bump_counter(pair) {
            return ServeOutcome {
                was_matched,
                added: 0,
                removed: 0,
            };
        }
        let (added, removed) = self.serve_special(pair);
        ServeOutcome {
            was_matched,
            added,
            removed,
        }
    }

    /// Batched serve: the ordinary-request fast path — one flat membership
    /// probe, one counter bump, fused routing accounting — runs without
    /// per-request dispatch, distance lookups (only misses pay one `ℓ_e`
    /// read) or stopwatch traffic; only special requests drop into the
    /// paging slow path.
    fn serve_batch(&mut self, batch: &[Pair], dm: &DistanceMatrix, acc: &mut BatchOutcome) {
        let mut matched = 0u64;
        let mut routing = 0u64;
        for &pair in batch {
            let was_matched = self.matching.contains(pair);
            matched += was_matched as u64;
            routing += if was_matched { 1 } else { dm.ell(pair) as u64 };
            if self.bump_counter(pair) {
                let (added, removed) = self.serve_special(pair);
                acc.added += added as u64;
                acc.removed += removed as u64;
            }
        }
        acc.matched += matched;
        acc.routing_cost += routing;
    }

    fn matching(&self) -> &BMatching {
        &self.matching
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_paging::PagingPolicy;
    use dcn_topology::builders;

    fn uniform_dm(n: usize) -> Arc<DistanceMatrix> {
        Arc::new(DistanceMatrix::uniform(n))
    }

    fn fat_tree_dm(racks: usize) -> Arc<DistanceMatrix> {
        Arc::new(DistanceMatrix::between_racks(
            &builders::fat_tree_with_racks(racks),
        ))
    }

    #[test]
    fn uniform_alpha_one_matches_immediately() {
        // α = 1 and ℓ = 1 ⇒ k_e = 1: every request is special.
        let mut r = Rbma::new(uniform_dm(6), 2, 1, RemovalMode::Strict, 0);
        let out = r.serve(Pair::new(0, 1));
        assert!(!out.was_matched);
        assert_eq!(out.added, 1);
        let out = r.serve(Pair::new(0, 1));
        assert!(out.was_matched);
        assert_eq!(out.added, 0);
    }

    #[test]
    fn special_period_follows_alpha_over_ell() {
        // Fat-tree: ℓ ∈ {2, 4}. α = 8 ⇒ k = 4 for same-pod, 2 for cross-pod.
        let dm = fat_tree_dm(8);
        let same_pod = Pair::new(0, 1);
        assert_eq!(dm.ell(same_pod), 2);
        let mut r = Rbma::new(dm, 2, 8, RemovalMode::Strict, 0);
        // k = 8/2 = 4: first three requests are ordinary.
        for _ in 0..3 {
            assert_eq!(r.serve(same_pod).added, 0);
        }
        assert_eq!(r.serve(same_pod).added, 1, "4th request is special");
    }

    #[test]
    fn degree_bound_never_violated_strict_and_lazy() {
        for mode in [RemovalMode::Strict, RemovalMode::Lazy] {
            let n = 12;
            let b = 3;
            let mut r = Rbma::new(uniform_dm(n), b, 1, mode, 9);
            // Hammer rack 0 with all partners repeatedly.
            for round in 0..50u32 {
                for v in 1..n as u32 {
                    r.serve(Pair::new(0, v));
                    r.matching().assert_valid();
                    assert!(r.matching().degree(0) <= b, "mode {mode:?} round {round}");
                }
            }
        }
    }

    #[test]
    fn strict_mode_keeps_intersection_invariant() {
        let n = 10;
        let mut r = Rbma::new(uniform_dm(n), 2, 1, RemovalMode::Strict, 3);
        let reqs: Vec<Pair> = (0..500u32)
            .map(|i| {
                let a = i % n as u32;
                let b = (i * 7 + 1) % n as u32;
                if a == b {
                    Pair::new(a, (b + 1) % n as u32)
                } else {
                    Pair::new(a, b)
                }
            })
            .collect();
        for &p in &reqs {
            r.serve(p);
            // Every matching edge must be cached at both endpoints.
            for e in r.matching().edges() {
                assert!(r.cache(e.lo()).contains(e.hi() as u64));
                assert!(r.cache(e.hi()).contains(e.lo() as u64));
            }
        }
    }

    #[test]
    fn lazy_mode_superset_of_strict_invariant() {
        // In lazy mode M may exceed the cache intersection, but every edge
        // NOT in the intersection must be marked.
        let n = 10;
        let mut r = Rbma::new(uniform_dm(n), 2, 1, RemovalMode::Lazy, 3);
        for i in 0..800u32 {
            let a = i % n as u32;
            let b = (i / 3 + a + 1) % n as u32;
            if a == b {
                continue;
            }
            r.serve(Pair::new(a, b));
            for e in r.matching().edges() {
                let in_both = r.cache(e.lo()).contains(e.hi() as u64)
                    && r.cache(e.hi()).contains(e.lo() as u64);
                assert!(
                    in_both || r.marked.contains(&e),
                    "unmarked edge {e} outside cache intersection"
                );
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed: u64| {
            let mut r = Rbma::new(uniform_dm(8), 2, 1, RemovalMode::Lazy, seed);
            (0..2000u32)
                .map(|i| {
                    let a = i % 8;
                    let b = (i.wrapping_mul(2654435761) % 7 + 1 + a) % 8;
                    if a == b {
                        return 0;
                    }
                    let o = r.serve(Pair::new(a, b));
                    o.added + o.removed
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(4), run(4));
    }

    #[test]
    fn reported_mutations_match_matching_size() {
        let mut r = Rbma::new(uniform_dm(10), 2, 1, RemovalMode::Lazy, 1);
        let mut net: i64 = 0;
        for i in 0..1000u32 {
            let a = i % 10;
            let b = (i * 13 + 1) % 10;
            if a == b {
                continue;
            }
            let o = r.serve(Pair::new(a, b));
            net += o.added as i64 - o.removed as i64;
        }
        assert_eq!(
            net,
            r.matching().len() as i64,
            "add/remove accounting drifted"
        );
    }

    #[test]
    fn serve_batch_equals_serve_loop() {
        // The batched override must agree with per-request serving — same
        // mutations, same accounting, same final matching — for both
        // removal modes and a non-uniform metric (so k_e > 1 paths and
        // ℓ_e routing both exercise).
        for mode in [RemovalMode::Lazy, RemovalMode::Strict] {
            let dm = fat_tree_dm(16);
            let reqs: Vec<Pair> = (0..4000u32)
                .map(|i| {
                    let a = i % 16;
                    let b = (a + 1 + i.wrapping_mul(2654435761) % 15) % 16;
                    if a == b {
                        Pair::new(a, (b + 1) % 16)
                    } else {
                        Pair::new(a, b)
                    }
                })
                .filter(|p| p.lo() != p.hi())
                .collect();

            let mut unbatched = Rbma::new(dm.clone(), 3, 8, mode, 5);
            let mut expected = BatchOutcome::default();
            for &p in &reqs {
                let o = unbatched.serve(p);
                expected.record(p, o, &dm);
            }

            let mut batched = Rbma::new(dm.clone(), 3, 8, mode, 5);
            let mut acc = BatchOutcome::default();
            for chunk in reqs.chunks(97) {
                batched.serve_batch(chunk, &dm, &mut acc);
            }

            assert_eq!(acc, expected, "mode {mode:?}");
            let mut a: Vec<Pair> = batched.matching().edges().collect();
            let mut b: Vec<Pair> = unbatched.matching().edges().collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "mode {mode:?}: matchings diverged");
        }
    }
}

//! The demand-oblivious baseline: no reconfigurable links at all. Every
//! request rides the fixed network at cost `ℓ_e` — the violet reference
//! line in Figs. 1a–4a.

use crate::scheduler::{BatchOutcome, OnlineScheduler, ServeOutcome};
use dcn_matching::BMatching;
use dcn_topology::{DistanceMatrix, Pair};

/// Scheduler that never configures a matching edge.
#[derive(Clone, Debug)]
pub struct Oblivious {
    matching: BMatching,
}

impl Oblivious {
    /// Creates the baseline over `n` racks (cap kept for reporting parity).
    pub fn new(n: usize, b: usize) -> Self {
        Self {
            matching: BMatching::new(n, b.max(1)),
        }
    }
}

impl OnlineScheduler for Oblivious {
    fn name(&self) -> &str {
        "Oblivious"
    }

    fn cap(&self) -> usize {
        self.matching.cap()
    }

    fn serve(&mut self, _pair: Pair) -> ServeOutcome {
        ServeOutcome {
            was_matched: false,
            added: 0,
            removed: 0,
        }
    }

    /// Batched serve: with no matching state at all, a batch is a pure
    /// distance-lookup sum — the floor any batched scheduler loop is
    /// measured against.
    fn serve_batch(&mut self, batch: &[Pair], dm: &DistanceMatrix, acc: &mut BatchOutcome) {
        let mut routing = 0u64;
        for &pair in batch {
            routing += dm.ell(pair) as u64;
        }
        acc.routing_cost += routing;
    }

    fn matching(&self) -> &BMatching {
        &self.matching
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_matches() {
        let mut o = Oblivious::new(5, 2);
        for _ in 0..10 {
            let out = o.serve(Pair::new(0, 1));
            assert!(!out.was_matched);
            assert_eq!(out.added + out.removed, 0);
        }
        assert!(o.matching().is_empty());
    }
}

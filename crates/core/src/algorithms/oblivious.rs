//! The demand-oblivious baseline: no reconfigurable links at all. Every
//! request rides the fixed network at cost `ℓ_e` — the violet reference
//! line in Figs. 1a–4a.

use crate::scheduler::{OnlineScheduler, ServeOutcome};
use dcn_matching::BMatching;
use dcn_topology::Pair;

/// Scheduler that never configures a matching edge.
#[derive(Clone, Debug)]
pub struct Oblivious {
    matching: BMatching,
}

impl Oblivious {
    /// Creates the baseline over `n` racks (cap kept for reporting parity).
    pub fn new(n: usize, b: usize) -> Self {
        Self {
            matching: BMatching::new(n, b.max(1)),
        }
    }
}

impl OnlineScheduler for Oblivious {
    fn name(&self) -> &str {
        "Oblivious"
    }

    fn cap(&self) -> usize {
        self.matching.cap()
    }

    fn serve(&mut self, _pair: Pair) -> ServeOutcome {
        ServeOutcome {
            was_matched: false,
            added: 0,
            removed: 0,
        }
    }

    fn matching(&self) -> &BMatching {
        &self.matching
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_matches() {
        let mut o = Oblivious::new(5, 2);
        for _ in 0..10 {
            let out = o.serve(Pair::new(0, 1));
            assert!(!out.was_matched);
            assert_eq!(out.added + out.removed, 0);
        }
        assert!(o.matching().is_empty());
    }
}

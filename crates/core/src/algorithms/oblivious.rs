//! The demand-oblivious baseline: no reconfigurable links at all. Every
//! request rides the fixed network at cost `ℓ_e` — the violet reference
//! line in Figs. 1a–4a.

use crate::batch::PairBuckets;
use crate::parallel::IntraPool;
use crate::scheduler::{BatchOutcome, OnlineScheduler, ServeOutcome};
use dcn_matching::BMatching;
use dcn_topology::{DistanceMatrix, Pair};

/// Scheduler that never configures a matching edge.
#[derive(Debug)]
pub struct Oblivious {
    matching: BMatching,
    /// Reusable chunk-bucketing scratch (per-pair state: `ℓ_e`).
    buckets: PairBuckets<u32>,
}

impl Clone for Oblivious {
    fn clone(&self) -> Self {
        Self {
            matching: self.matching.clone(),
            buckets: PairBuckets::default(),
        }
    }
}

impl Oblivious {
    /// Creates the baseline over `n` racks (cap kept for reporting parity).
    pub fn new(n: usize, b: usize) -> Self {
        Self {
            matching: BMatching::new(n, b.max(1)),
            buckets: PairBuckets::default(),
        }
    }

    /// The bucketed batch pass: one `ℓ_e` lookup and one
    /// multiply-accumulate per **distinct** pair (u64 products summed in
    /// slab order — integer addition is associative, so the total equals
    /// the per-request sum exactly).
    fn serve_batch_bucketed(
        &mut self,
        batch: &[Pair],
        dm: &DistanceMatrix,
        acc: &mut BatchOutcome,
        pool: Option<&IntraPool>,
    ) {
        let n = self.matching.num_racks();
        let mut buckets = std::mem::take(&mut self.buckets);
        if !buckets.bucket(batch, n, |pair| dm.ell(pair) as u32, pool) {
            self.buckets = buckets;
            return self.serve_batch_unsorted(batch, dm, acc);
        }
        let mut routing = 0u64;
        let slab = buckets.take_slab();
        for (idx, &count) in buckets.counts().iter().enumerate() {
            routing += count as u64 * slab[idx] as u64;
        }
        acc.routing_cost += routing;
        buckets.restore_slab(slab);
        self.buckets = buckets;
    }
}

impl OnlineScheduler for Oblivious {
    fn name(&self) -> &str {
        "Oblivious"
    }

    fn cap(&self) -> usize {
        self.matching.cap()
    }

    fn serve(&mut self, _pair: Pair) -> ServeOutcome {
        ServeOutcome {
            was_matched: false,
            added: 0,
            removed: 0,
        }
    }

    /// Unsorted batched serve: with no matching state at all, a batch is a
    /// pure distance-lookup sum — the floor any batched scheduler loop is
    /// measured against.
    fn serve_batch_unsorted(
        &mut self,
        batch: &[Pair],
        dm: &DistanceMatrix,
        acc: &mut BatchOutcome,
    ) {
        let mut routing = 0u64;
        for &pair in batch {
            routing += dm.ell(pair) as u64;
        }
        acc.routing_cost += routing;
    }

    /// Bucketed batched serve: one multiply-accumulate per distinct pair.
    fn serve_batch(&mut self, batch: &[Pair], dm: &DistanceMatrix, acc: &mut BatchOutcome) {
        self.serve_batch_bucketed(batch, dm, acc, None);
    }

    /// Bucketed batched serve with the scan sharded across `pool`.
    fn serve_batch_sharded(
        &mut self,
        batch: &[Pair],
        dm: &DistanceMatrix,
        pool: &IntraPool,
        acc: &mut BatchOutcome,
    ) {
        self.serve_batch_bucketed(batch, dm, acc, Some(pool));
    }

    fn matching(&self) -> &BMatching {
        &self.matching
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_matches() {
        let mut o = Oblivious::new(5, 2);
        for _ in 0..10 {
            let out = o.serve(Pair::new(0, 1));
            assert!(!out.was_matched);
            assert_eq!(out.added + out.removed, 0);
        }
        assert!(o.matching().is_empty());
    }
}

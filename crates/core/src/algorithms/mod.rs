//! The online and offline algorithms evaluated in the paper (§2, §3) plus
//! the extensions discussed in §5.

pub mod bma;
pub mod demand_aware;
pub mod oblivious;
pub mod periodic;
pub mod predictive;
pub mod rbma;
pub mod rotor;
pub mod static_offline;

use crate::scheduler::OnlineScheduler;
use dcn_demand::{DemandAware, DemandMatrix};
use dcn_topology::DistanceMatrix;
use std::sync::Arc;

/// Configuration-friendly algorithm selector for sweeps and benches.
#[derive(Clone, Debug, PartialEq)]
pub enum AlgorithmKind {
    /// No reconfigurable links at all (the violet baseline of Figs. 1–4).
    Oblivious,
    /// The paper's randomized algorithm (§2.2/§2.3).
    Rbma {
        /// Lazy removals per footnote 2 (the experimental default) or the
        /// strict both-caches invariant of the analysis.
        lazy: bool,
    },
    /// Deterministic online b-matching baseline (Bienkowski et al. \[11\]).
    Bma,
    /// Demand-oblivious rotating matchings (RotorNet \[56\]-style).
    Rotor {
        /// Requests between rotation steps.
        period: u64,
    },
    /// R-BMA with next-request predictions (§5 future work). `noise`
    /// blurs the oracle (0.0 = perfect).
    PredictiveRbma {
        /// Relative prediction error magnitude.
        noise: f64,
    },
    /// Coarse-granular baseline: rebuild a greedy heavy b-matching from the
    /// last window every `period` requests (Proteus/OSA-style).
    Periodic {
        /// Requests between rebuilds.
        period: u64,
    },
    /// COUDER-style demand-aware *static* baseline (arXiv:2010.00090): a
    /// b-matching provisioned from forecast demand matrices before the
    /// trace starts, never reconfigured
    /// ([`demand_aware::StaticDemandAware`]).
    DemandAware {
        /// The forecast: one matrix (point forecast) or several (hedged
        /// max-min over the set). Shared so job grids clone cheaply.
        forecast: Arc<DemandAware>,
    },
}

impl AlgorithmKind {
    /// Demand-aware static baseline from a single forecast matrix.
    pub fn demand_aware(matrix: DemandMatrix) -> Self {
        AlgorithmKind::DemandAware {
            forecast: Arc::new(DemandAware::new(matrix)),
        }
    }

    /// Demand-aware static baseline hedged over a forecast matrix set.
    pub fn demand_aware_hedged(matrices: Vec<DemandMatrix>) -> Self {
        AlgorithmKind::DemandAware {
            forecast: Arc::new(DemandAware::hedged(matrices)),
        }
    }

    /// Display name matching the paper's figure legends.
    pub fn label(&self) -> String {
        match self {
            AlgorithmKind::Oblivious => "Oblivious".into(),
            AlgorithmKind::Rbma { lazy: true } => "R-BMA".into(),
            AlgorithmKind::Rbma { lazy: false } => "R-BMA(strict)".into(),
            AlgorithmKind::Bma => "BMA".into(),
            AlgorithmKind::Rotor { .. } => "Rotor".into(),
            AlgorithmKind::PredictiveRbma { noise } => format!("P-BMA(noise={noise})"),
            AlgorithmKind::Periodic { period } => format!("Periodic({period})"),
            AlgorithmKind::DemandAware { forecast } if forecast.is_hedged() => {
                "DemandAware(hedged)".into()
            }
            AlgorithmKind::DemandAware { .. } => "DemandAware".into(),
        }
    }

    /// Whether building this algorithm requires the materialized future
    /// request sequence (offline knowledge). Only the prediction-augmented
    /// variant does — its oracle is synthesized from the trace. Everything
    /// else is truly online and can run over an unmaterialized stream.
    pub fn needs_materialized_trace(&self) -> bool {
        matches!(self, AlgorithmKind::PredictiveRbma { .. })
    }

    /// Instantiates a purely online scheduler — no trace access at all, so
    /// sweep workers can feed it an O(1)-memory request stream.
    ///
    /// Panics for algorithms whose construction needs the future sequence
    /// (see [`AlgorithmKind::needs_materialized_trace`]); route those
    /// through [`AlgorithmKind::build_with_trace`].
    pub fn build_online(
        &self,
        dm: Arc<DistanceMatrix>,
        b: usize,
        alpha: u64,
        seed: u64,
    ) -> Box<dyn OnlineScheduler> {
        let n = dm.num_racks();
        match *self {
            AlgorithmKind::Oblivious => Box::new(oblivious::Oblivious::new(n, b)),
            AlgorithmKind::Rbma { lazy } => {
                let mode = if lazy {
                    rbma::RemovalMode::Lazy
                } else {
                    rbma::RemovalMode::Strict
                };
                Box::new(rbma::Rbma::new(dm, b, alpha, mode, seed))
            }
            AlgorithmKind::Bma => Box::new(bma::Bma::new(dm, b, alpha)),
            AlgorithmKind::Rotor { period } => Box::new(rotor::Rotor::new(n, b, period)),
            AlgorithmKind::PredictiveRbma { .. } => panic!(
                "{} needs the materialized trace; use build_with_trace",
                self.label()
            ),
            AlgorithmKind::Periodic { period } => {
                Box::new(periodic::PeriodicRebuild::new(dm, b, period))
            }
            AlgorithmKind::DemandAware { ref forecast } => {
                Box::new(demand_aware::StaticDemandAware::new(&dm, b, forecast))
            }
        }
    }

    /// Instantiates a scheduler when a materialized trace is at hand.
    /// `trace` is only read by the prediction-needing variants; the online
    /// algorithms ignore it and defer to
    /// [`AlgorithmKind::build_online`].
    pub fn build_with_trace(
        &self,
        dm: Arc<DistanceMatrix>,
        b: usize,
        alpha: u64,
        seed: u64,
        trace: &[dcn_topology::Pair],
    ) -> Box<dyn OnlineScheduler> {
        match *self {
            AlgorithmKind::PredictiveRbma { noise } => Box::new(predictive::PredictiveRbma::new(
                dm, b, alpha, trace, noise, seed,
            )),
            _ => self.build_online(dm, b, alpha, seed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_predictive_needs_the_trace() {
        for kind in [
            AlgorithmKind::Oblivious,
            AlgorithmKind::Rbma { lazy: true },
            AlgorithmKind::Rbma { lazy: false },
            AlgorithmKind::Bma,
            AlgorithmKind::Rotor { period: 10 },
            AlgorithmKind::Periodic { period: 10 },
            AlgorithmKind::demand_aware(DemandMatrix::zipf_pairs(6, 1.2, 1)),
            AlgorithmKind::demand_aware_hedged(vec![
                DemandMatrix::zipf_pairs(6, 1.2, 1),
                DemandMatrix::uniform(6),
            ]),
        ] {
            assert!(!kind.needs_materialized_trace(), "{}", kind.label());
            let dm = Arc::new(DistanceMatrix::uniform(6));
            let s = kind.build_online(dm, 2, 5, 0);
            assert_eq!(s.cap(), 2);
        }
        assert!(AlgorithmKind::PredictiveRbma { noise: 0.0 }.needs_materialized_trace());
    }

    #[test]
    fn demand_aware_labels_distinguish_hedging() {
        let point = AlgorithmKind::demand_aware(DemandMatrix::uniform(4));
        assert_eq!(point.label(), "DemandAware");
        let hedged = AlgorithmKind::demand_aware_hedged(vec![
            DemandMatrix::uniform(4),
            DemandMatrix::zipf_pairs(4, 1.0, 0),
        ]);
        assert_eq!(hedged.label(), "DemandAware(hedged)");
    }

    #[test]
    #[should_panic(expected = "use build_with_trace")]
    fn build_online_rejects_predictive() {
        let dm = Arc::new(DistanceMatrix::uniform(4));
        AlgorithmKind::PredictiveRbma { noise: 0.0 }.build_online(dm, 2, 5, 0);
    }
}

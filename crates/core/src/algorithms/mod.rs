//! The online and offline algorithms evaluated in the paper (§2, §3) plus
//! the extensions discussed in §5.

pub mod bma;
pub mod oblivious;
pub mod periodic;
pub mod predictive;
pub mod rbma;
pub mod rotor;
pub mod static_offline;

use crate::scheduler::OnlineScheduler;
use dcn_topology::DistanceMatrix;
use std::sync::Arc;

/// Configuration-friendly algorithm selector for sweeps and benches.
#[derive(Clone, Debug, PartialEq)]
pub enum AlgorithmKind {
    /// No reconfigurable links at all (the violet baseline of Figs. 1–4).
    Oblivious,
    /// The paper's randomized algorithm (§2.2/§2.3).
    Rbma {
        /// Lazy removals per footnote 2 (the experimental default) or the
        /// strict both-caches invariant of the analysis.
        lazy: bool,
    },
    /// Deterministic online b-matching baseline (Bienkowski et al. \[11\]).
    Bma,
    /// Demand-oblivious rotating matchings (RotorNet \[56\]-style).
    Rotor {
        /// Requests between rotation steps.
        period: u64,
    },
    /// R-BMA with next-request predictions (§5 future work). `noise`
    /// blurs the oracle (0.0 = perfect).
    PredictiveRbma {
        /// Relative prediction error magnitude.
        noise: f64,
    },
    /// Coarse-granular baseline: rebuild a greedy heavy b-matching from the
    /// last window every `period` requests (Proteus/OSA-style).
    Periodic {
        /// Requests between rebuilds.
        period: u64,
    },
}

impl AlgorithmKind {
    /// Display name matching the paper's figure legends.
    pub fn label(&self) -> String {
        match self {
            AlgorithmKind::Oblivious => "Oblivious".into(),
            AlgorithmKind::Rbma { lazy: true } => "R-BMA".into(),
            AlgorithmKind::Rbma { lazy: false } => "R-BMA(strict)".into(),
            AlgorithmKind::Bma => "BMA".into(),
            AlgorithmKind::Rotor { .. } => "Rotor".into(),
            AlgorithmKind::PredictiveRbma { noise } => format!("P-BMA(noise={noise})"),
            AlgorithmKind::Periodic { period } => format!("Periodic({period})"),
        }
    }

    /// Instantiates a scheduler. `trace` is only needed by the predictive
    /// variant (its oracle is built from the future sequence).
    pub fn build(
        &self,
        dm: Arc<DistanceMatrix>,
        b: usize,
        alpha: u64,
        seed: u64,
        trace: &[dcn_topology::Pair],
    ) -> Box<dyn OnlineScheduler> {
        let n = dm.num_racks();
        match *self {
            AlgorithmKind::Oblivious => Box::new(oblivious::Oblivious::new(n, b)),
            AlgorithmKind::Rbma { lazy } => {
                let mode = if lazy {
                    rbma::RemovalMode::Lazy
                } else {
                    rbma::RemovalMode::Strict
                };
                Box::new(rbma::Rbma::new(dm, b, alpha, mode, seed))
            }
            AlgorithmKind::Bma => Box::new(bma::Bma::new(dm, b, alpha)),
            AlgorithmKind::Rotor { period } => Box::new(rotor::Rotor::new(n, b, period)),
            AlgorithmKind::PredictiveRbma { noise } => Box::new(predictive::PredictiveRbma::new(
                dm, b, alpha, trace, noise, seed,
            )),
            AlgorithmKind::Periodic { period } => {
                Box::new(periodic::PeriodicRebuild::new(dm, b, period))
            }
        }
    }
}

//! **SO-BMA** — the static offline baseline of §3: a maximum-weight
//! matching computed on the *aggregated* demand of the whole (prefix of
//! the) trace, held fixed while the trace replays.
//!
//! The paper implements it with NetworkX's blossom `max_weight_matching`;
//! here the weight of pair `e` is its request count times the per-request
//! saving `ℓ_e − 1`, and a degree-`b` schedule is assembled as `b` rounds of
//! exact matching on the residual demand (see `dcn_matching::repeated` for
//! why that is the physically faithful construction). Being offline *and*
//! static, SO-BMA pays no reconfiguration cost but cannot adapt — which is
//! exactly the trade-off Figs. 1c–4c probe: it wins on temporally
//! structureless (i.i.d.) traffic and loses ground on bursty traffic.

use dcn_matching::{repeated::repeated_mwm_b_matching, WeightedEdge};
use dcn_topology::{DistanceMatrix, Pair};
use dcn_util::FxHashMap;

/// Aggregates demand and returns the weighted candidate edges
/// (`weight = count · (ℓ_e − 1)`, i.e. the total routing cost saved by
/// serving the pair optically).
pub fn demand_edges(dm: &DistanceMatrix, requests: &[Pair]) -> Vec<WeightedEdge> {
    let mut counts: FxHashMap<Pair, i64> = FxHashMap::default();
    for &r in requests {
        *counts.entry(r).or_insert(0) += 1;
    }
    counts
        .into_iter()
        .filter_map(|(pair, cnt)| {
            let saving = (dm.ell(pair) as i64 - 1) * cnt;
            (saving > 0).then(|| WeightedEdge::new(pair.lo(), pair.hi(), saving))
        })
        .collect()
}

/// Computes SO-BMA's static b-matching for the given request prefix.
pub fn so_bma_matching(dm: &DistanceMatrix, requests: &[Pair], b: usize) -> Vec<Pair> {
    let edges = demand_edges(dm, requests);
    repeated_mwm_b_matching(dm.num_racks(), &edges, b)
}

/// Routing cost of replaying `requests` against a *static* matching.
pub fn static_routing_cost(dm: &DistanceMatrix, requests: &[Pair], matching: &[Pair]) -> u64 {
    let in_m: std::collections::HashSet<Pair> = matching.iter().copied().collect();
    requests
        .iter()
        .map(|r| {
            if in_m.contains(r) {
                1
            } else {
                dm.ell(*r) as u64
            }
        })
        .sum()
}

/// SO-BMA evaluated at a sequence of checkpoints: for each prefix length,
/// the matching is recomputed on that prefix's demand (clairvoyant up to the
/// checkpoint, as in the paper's figures) and the prefix is replayed.
/// Returns `(checkpoint, routing_cost)` rows.
pub fn so_bma_series(
    dm: &DistanceMatrix,
    requests: &[Pair],
    b: usize,
    checkpoints: &[usize],
) -> Vec<(usize, u64)> {
    checkpoints
        .iter()
        .map(|&cp| {
            let prefix = &requests[..cp.min(requests.len())];
            let matching = so_bma_matching(dm, prefix, b);
            (cp, static_routing_cost(dm, prefix, &matching))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_matching::bmatching::is_valid_b_matching;

    fn uniform_far(n: usize) -> DistanceMatrix {
        // Leaf-spine: all pairs at distance 2 -> every pair saves 1/request.
        let net = dcn_topology::builders::leaf_spine(n, 2);
        DistanceMatrix::between_racks(&net)
    }

    #[test]
    fn picks_heaviest_pairs() {
        let dm = uniform_far(4);
        let reqs: Vec<Pair> = [(0u32, 1u32); 10]
            .iter()
            .map(|&(a, b)| Pair::new(a, b))
            .chain(std::iter::once(Pair::new(2, 3)))
            .collect();
        let m = so_bma_matching(&dm, &reqs, 1);
        assert!(m.contains(&Pair::new(0, 1)));
        assert!(is_valid_b_matching(&m, 1));
    }

    #[test]
    fn static_cost_counts_matched_as_one() {
        let dm = uniform_far(4);
        let reqs = vec![Pair::new(0, 1), Pair::new(0, 1), Pair::new(2, 3)];
        let cost = static_routing_cost(&dm, &reqs, &[Pair::new(0, 1)]);
        // 1 + 1 + 2.
        assert_eq!(cost, 4);
    }

    #[test]
    fn series_monotone_in_prefix() {
        let dm = uniform_far(6);
        let reqs: Vec<Pair> = (0..300u32)
            .map(|i| Pair::new(i % 6, (i % 5 + 1 + i % 6) % 6))
            .filter(|p| p.lo() != p.hi())
            .collect();
        let series = so_bma_series(&dm, &reqs, 2, &[50, 100, 200]);
        assert_eq!(series.len(), 3);
        assert!(series[0].1 <= series[1].1 && series[1].1 <= series[2].1);
    }

    #[test]
    fn beats_oblivious_on_skewed_demand() {
        let dm = uniform_far(8);
        // 90% of traffic on 4 disjoint pairs.
        let mut reqs = Vec::new();
        for i in 0..1000u32 {
            let p = match i % 10 {
                0 => Pair::new(1, 6),
                _ => Pair::new((i % 4) * 2, (i % 4) * 2 + 1),
            };
            reqs.push(p);
        }
        let m = so_bma_matching(&dm, &reqs, 1);
        let so = static_routing_cost(&dm, &reqs, &m);
        let oblivious: u64 = reqs.iter().map(|r| dm.ell(*r) as u64).sum();
        assert!(
            so < oblivious * 6 / 10,
            "SO-BMA {so} should clearly beat oblivious {oblivious}"
        );
    }

    #[test]
    fn zero_saving_pairs_ignored() {
        // Complete graph: ℓ = 1 everywhere; no pair is worth matching.
        let net = dcn_topology::builders::complete(5);
        let dm = DistanceMatrix::between_racks(&net);
        let reqs = vec![Pair::new(0, 1); 50];
        assert!(demand_edges(&dm, &reqs).is_empty());
        assert!(so_bma_matching(&dm, &reqs, 2).is_empty());
    }
}

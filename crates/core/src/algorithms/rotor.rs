//! Demand-**oblivious** rotating matchings, in the spirit of RotorNet \[56\]
//! (an extension beyond the paper's baselines; useful as a reference point
//! between "no reconfiguration" and "demand-aware reconfiguration").
//!
//! The `n-1` rounds of a round-robin tournament partition all rack pairs
//! into perfect matchings. Each of the `b` rotor switches cycles through
//! these rounds on a fixed schedule, offset so the switches always carry
//! `b` distinct rounds. A request is served optically iff its pair's round
//! is currently active. Rotation is free (it happens on a fixed schedule,
//! demand plays no role — the usual rotor-network accounting).

use crate::batch::PairBuckets;
use crate::parallel::IntraPool;
use crate::scheduler::{BatchOutcome, OnlineScheduler, ServeOutcome};
use dcn_matching::BMatching;
use dcn_topology::{DistanceMatrix, Pair};

/// Oblivious rotor scheduler.
pub struct Rotor {
    n: usize,
    rounds: usize,
    b: usize,
    period: u64,
    clock: u64,
    /// Round → currently-active flag, refreshed once per rotation step so
    /// activity checks are a single indexed load instead of an O(b) window
    /// scan per request.
    active: Vec<bool>,
    active_step: u64,
    /// Exposed matching view (rebuilt lazily per rotation for inspection).
    matching: BMatching,
    matching_step: u64,
    /// Reusable chunk-bucketing scratch (per-pair state: active?, `ℓ_e`).
    buckets: PairBuckets<(bool, u32)>,
}

impl Rotor {
    /// Creates a rotor system over `n` racks (`n ≥ 2`) with `b` switches
    /// rotating every `period` requests.
    pub fn new(n: usize, b: usize, period: u64) -> Self {
        assert!(n >= 2 && b >= 1 && period >= 1);
        // Round-robin schedule is defined for even player counts; pad odd
        // n with a virtual rack (its pairs never occur in requests).
        let players = if n.is_multiple_of(2) { n } else { n + 1 };
        let rounds = players - 1;
        let mut rotor = Self {
            n,
            rounds,
            b: b.min(rounds),
            period,
            clock: 0,
            active: vec![false; rounds],
            active_step: u64::MAX,
            matching: BMatching::new(n, b),
            matching_step: u64::MAX,
            buckets: PairBuckets::default(),
        };
        rotor.refresh_active();
        rotor.rebuild_matching();
        rotor
    }

    /// Tournament round of a pair (circle method): every pair belongs to
    /// exactly one of the `players - 1` rounds.
    fn round_of(&self, pair: Pair) -> usize {
        let players = if self.n.is_multiple_of(2) {
            self.n
        } else {
            self.n + 1
        };
        let m = players - 1;
        let (i, j) = (pair.lo() as usize, pair.hi() as usize);
        if j == players - 1 {
            (2 * i) % m
        } else {
            (i + j) % m
        }
    }

    fn active_window(&self) -> impl Iterator<Item = usize> + '_ {
        let start = (self.clock / self.period) as usize % self.rounds;
        (0..self.b).map(move |i| (start + i) % self.rounds)
    }

    /// Recomputes the round-activity mask if the window moved.
    fn refresh_active(&mut self) {
        let step = self.clock / self.period;
        if step == self.active_step {
            return;
        }
        self.active_step = step;
        self.active.fill(false);
        let start = step as usize % self.rounds;
        for i in 0..self.b {
            self.active[(start + i) % self.rounds] = true;
        }
    }

    fn is_active(&self, pair: Pair) -> bool {
        debug_assert_eq!(self.active_step, self.clock / self.period);
        self.active[self.round_of(pair)]
    }

    /// Rebuilds the exposed matching snapshot for the current window.
    fn rebuild_matching(&mut self) {
        let step = self.clock / self.period;
        if step == self.matching_step {
            return;
        }
        self.matching_step = step;
        self.matching.clear();
        let players = if self.n.is_multiple_of(2) {
            self.n
        } else {
            self.n + 1
        };
        let m = players - 1;
        let active: Vec<usize> = self.active_window().collect();
        // Modular inverse of 2 (m is odd): the partner of the fixed player.
        let inv2 = m.div_ceil(2);
        for &r in &active {
            let k = (r * inv2) % m; // 2k ≡ r (mod m)
            for i in 0..players / 2 {
                let (a, bb) = if i == 0 {
                    (players - 1, k)
                } else {
                    ((k + i) % m, (k + m - i) % m)
                };
                if a < self.n && bb < self.n && a != bb {
                    let p = Pair::new(a as u32, bb as u32);
                    debug_assert_eq!(self.round_of(p), r);
                    let _ = self.matching.try_insert(p);
                }
            }
        }
    }

    /// The bucketed single-window batch pass; see
    /// [`OnlineScheduler::serve_batch`] on [`Rotor`].
    fn serve_batch_bucketed(
        &mut self,
        batch: &[Pair],
        dm: &DistanceMatrix,
        acc: &mut BatchOutcome,
        pool: Option<&IntraPool>,
    ) {
        let until_rotation = (self.period - self.clock % self.period) as usize;
        if until_rotation < batch.len() {
            return self.serve_batch_unsorted(batch, dm, acc);
        }
        let mut buckets = std::mem::take(&mut self.buckets);
        let ok = {
            let this = &*self;
            buckets.bucket(
                batch,
                this.n,
                |pair| (this.active[this.round_of(pair)], dm.ell(pair) as u32),
                pool,
            )
        };
        if !ok {
            self.buckets = buckets;
            return self.serve_batch_unsorted(batch, dm, acc);
        }
        let mut matched = 0u64;
        let mut routing = 0u64;
        let slab = buckets.take_slab();
        for (idx, &count) in buckets.counts().iter().enumerate() {
            let (active, ell) = slab[idx];
            if active {
                matched += count as u64;
                routing += count as u64;
            } else {
                routing += count as u64 * ell as u64;
            }
        }
        acc.matched += matched;
        acc.routing_cost += routing;
        self.clock += batch.len() as u64;
        self.refresh_active();
        self.rebuild_matching();
        buckets.restore_slab(slab);
        self.buckets = buckets;
    }
}

impl OnlineScheduler for Rotor {
    fn name(&self) -> &str {
        "Rotor"
    }

    fn cap(&self) -> usize {
        self.b
    }

    fn serve(&mut self, pair: Pair) -> ServeOutcome {
        let was_matched = self.is_active(pair);
        self.clock += 1;
        // Rotations are schedule-driven and free; refresh the mask and the
        // snapshot only when the window moved.
        self.refresh_active();
        self.rebuild_matching();
        ServeOutcome {
            was_matched,
            added: 0,
            removed: 0,
        }
    }

    /// Unsorted batched serve, segmented at rotation boundaries: within a
    /// segment the active window is frozen, so the inner loop is `round_of`
    /// plus one mask probe per request — the window scan, mask refresh and
    /// snapshot rebuild happen once per rotation step instead of once per
    /// request.
    fn serve_batch_unsorted(
        &mut self,
        batch: &[Pair],
        dm: &DistanceMatrix,
        acc: &mut BatchOutcome,
    ) {
        let mut i = 0;
        while i < batch.len() {
            let until_rotation = (self.period - self.clock % self.period) as usize;
            let take = until_rotation.min(batch.len() - i);
            let mut matched = 0u64;
            let mut routing = 0u64;
            for &pair in &batch[i..i + take] {
                let was_matched = self.active[self.round_of(pair)];
                matched += was_matched as u64;
                routing += if was_matched { 1 } else { dm.ell(pair) as u64 };
            }
            acc.matched += matched;
            acc.routing_cost += routing;
            self.clock += take as u64;
            self.refresh_active();
            self.rebuild_matching();
            i += take;
        }
    }

    /// Bucketed batched serve: when the whole chunk falls inside one
    /// rotation window (the common case — the simulator's chunks are far
    /// shorter than realistic rotor periods), activity and `ℓ_e` are
    /// evaluated once per **distinct** pair and the chunk reduces to one
    /// multiply-accumulate per pair. Chunks that straddle a rotation fall
    /// back to the segmented unsorted loop.
    fn serve_batch(&mut self, batch: &[Pair], dm: &DistanceMatrix, acc: &mut BatchOutcome) {
        self.serve_batch_bucketed(batch, dm, acc, None);
    }

    /// Bucketed batched serve with the scan sharded across `pool`.
    fn serve_batch_sharded(
        &mut self,
        batch: &[Pair],
        dm: &DistanceMatrix,
        pool: &IntraPool,
        acc: &mut BatchOutcome,
    ) {
        self.serve_batch_bucketed(batch, dm, acc, Some(pool));
    }

    fn matching(&self) -> &BMatching {
        &self.matching
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounds_partition_all_pairs() {
        let rotor = Rotor::new(8, 1, 10);
        let mut per_round = vec![0usize; rotor.rounds];
        for a in 0..8u32 {
            for b in (a + 1)..8u32 {
                per_round[rotor.round_of(Pair::new(a, b))] += 1;
            }
        }
        // 28 pairs over 7 rounds = 4 per round (perfect matchings on 8).
        assert!(per_round.iter().all(|&c| c == 4), "{per_round:?}");
    }

    #[test]
    fn active_window_serves_exactly_b_rounds() {
        let mut rotor = Rotor::new(8, 3, 1_000_000);
        rotor.rebuild_matching();
        // Snapshot has 3 perfect matchings = 12 edges; degree 3 each.
        assert_eq!(rotor.matching().len(), 12);
        for v in 0..8 {
            assert_eq!(rotor.matching().degree(v), 3);
        }
    }

    #[test]
    fn rotation_changes_active_set() {
        let mut rotor = Rotor::new(6, 1, 2);
        let p = Pair::new(0, 1);
        let mut saw_active = false;
        let mut saw_inactive = false;
        for _ in 0..20 {
            let out = rotor.serve(p);
            if out.was_matched {
                saw_active = true;
            } else {
                saw_inactive = true;
            }
        }
        assert!(
            saw_active && saw_inactive,
            "rotation should toggle pair activity"
        );
    }

    #[test]
    fn serve_batch_equals_serve_loop_across_rotations() {
        use crate::scheduler::BatchOutcome;
        use dcn_topology::DistanceMatrix;
        // Short period so batches straddle many rotation boundaries.
        let dm = DistanceMatrix::uniform(8);
        let reqs: Vec<Pair> = (0..1000u32)
            .map(|i| {
                let a = i % 8;
                let b = (a + 1 + i % 7) % 8;
                if a == b {
                    Pair::new(a, (b + 1) % 8)
                } else {
                    Pair::new(a, b)
                }
            })
            .filter(|p| p.lo() != p.hi())
            .collect();
        let mut unbatched = Rotor::new(8, 2, 3);
        let mut expected = BatchOutcome::default();
        for &p in &reqs {
            let o = unbatched.serve(p);
            expected.record(p, o, &dm);
        }
        let mut batched = Rotor::new(8, 2, 3);
        let mut acc = BatchOutcome::default();
        for chunk in reqs.chunks(64) {
            batched.serve_batch(chunk, &dm, &mut acc);
        }
        assert_eq!(acc, expected);
        assert_eq!(batched.clock, unbatched.clock);
        // Exposed matching snapshots agree too.
        let mut a: Vec<Pair> = batched.matching().edges().collect();
        let mut b: Vec<Pair> = unbatched.matching().edges().collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn odd_rack_count_supported() {
        let mut rotor = Rotor::new(7, 2, 5);
        for i in 0..100u32 {
            let a = i % 7;
            let b = (a + 1 + i % 5) % 7;
            if a != b {
                rotor.serve(Pair::new(a, b));
                rotor.matching().assert_valid();
            }
        }
    }
}

//! Prediction-augmented R-BMA — the §5 future-work direction: "it would be
//! interesting to explore algorithms which can leverage certain predictions
//! about future demands, without losing the worst-case guarantees."
//!
//! Same two-layer construction as [`crate::algorithms::rbma::Rbma`], but the
//! per-node caches run *predictive marking*: the phase/marking structure is
//! kept (preserving the worst-case guarantee of marking algorithms), while
//! the eviction choice among unmarked entries follows a next-request oracle
//! (evict the pair predicted to be requested farthest in the future —
//! Belady's rule applied to predictions). The oracle is built from the
//! trace and can be blurred with multiplicative noise to study robustness.
//!
//! Substrate note: the flat intrusive recency slab that now backs BMA
//! ([`dcn_matching::recency::LruBMatching`]) was evaluated here and not
//! adopted — evictions follow predicted *next use* over the unmarked set,
//! not recency order, so the caches keep their marked/unmarked
//! `IndexedSet`s and the oracle scan.

use crate::scheduler::{OnlineScheduler, ServeOutcome};
use dcn_matching::BMatching;
use dcn_topology::{DistanceMatrix, NodeId, Pair};
use dcn_util::rngx::derive_seed;
use dcn_util::{FxHashMap, FxHashSet, IndexedSet};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use std::sync::Arc;

/// Next-request oracle over pairs, with optional multiplicative noise.
struct PairOracle {
    /// pair -> sorted request positions.
    occurrences: FxHashMap<Pair, Vec<u64>>,
    noise: f64,
    rng: SmallRng,
}

impl PairOracle {
    fn new(trace: &[Pair], noise: f64, seed: u64) -> Self {
        assert!(noise >= 0.0);
        let mut occurrences: FxHashMap<Pair, Vec<u64>> = FxHashMap::default();
        for (i, &p) in trace.iter().enumerate() {
            occurrences.entry(p).or_default().push(i as u64);
        }
        Self {
            occurrences,
            noise,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Predicted next request time of `pair` strictly after `now`.
    fn next_use(&mut self, pair: Pair, now: u64) -> u64 {
        let truth = match self.occurrences.get(&pair) {
            None => u64::MAX,
            Some(pos) => {
                let i = pos.partition_point(|&t| t <= now);
                pos.get(i).copied().unwrap_or(u64::MAX)
            }
        };
        if truth == u64::MAX || self.noise == 0.0 {
            return truth;
        }
        let gap = (truth - now).max(1) as f64;
        let factor = 1.0 + self.noise * self.rng.random_range(-1.0..1.0f64);
        now.saturating_add((gap * factor.max(0.0)).round() as u64)
            .max(now + 1)
    }
}

/// Per-node marking cache with prediction-guided eviction.
struct PredictiveCache {
    capacity: usize,
    marked: IndexedSet<u32>,
    unmarked: IndexedSet<u32>,
}

impl PredictiveCache {
    fn new(capacity: usize) -> Self {
        Self {
            capacity,
            marked: IndexedSet::with_capacity(capacity),
            unmarked: IndexedSet::with_capacity(capacity),
        }
    }

    fn len(&self) -> usize {
        self.marked.len() + self.unmarked.len()
    }

    #[allow(dead_code)] // used by debug assertions and future strict mode
    fn contains(&self, partner: u32) -> bool {
        self.marked.contains(&partner) || self.unmarked.contains(&partner)
    }

    /// Accesses `partner`; on a fault with a full cache evicts the unmarked
    /// partner whose pair (with `node`) has the farthest predicted use.
    fn access(
        &mut self,
        node: NodeId,
        partner: u32,
        now: u64,
        oracle: &mut PairOracle,
    ) -> Option<u32> {
        if self.marked.contains(&partner) {
            return None;
        }
        if self.unmarked.remove(&partner) {
            self.marked.insert(partner);
            return None;
        }
        let mut evicted = None;
        if self.len() == self.capacity {
            if self.unmarked.is_empty() {
                for p in self.marked.drain_to_vec() {
                    self.unmarked.insert(p);
                }
            }
            let victim = self
                .unmarked
                .iter()
                .map(|&w| (oracle.next_use(Pair::new(node, w), now), w))
                .max()
                .map(|(_, w)| w)
                .expect("full cache has an unmarked entry after phase reset");
            self.unmarked.remove(&victim);
            evicted = Some(victim);
        }
        self.marked.insert(partner);
        evicted
    }
}

/// R-BMA with prediction-guided evictions (lazy removals).
pub struct PredictiveRbma {
    dm: Arc<DistanceMatrix>,
    alpha: u64,
    counters: FxHashMap<Pair, u32>,
    caches: Vec<PredictiveCache>,
    oracle: PairOracle,
    clock: u64,
    matching: BMatching,
    marked: FxHashSet<Pair>,
    name: String,
}

impl PredictiveRbma {
    /// Builds the scheduler; the oracle sees the full `trace` (blurred by
    /// `noise`).
    pub fn new(
        dm: Arc<DistanceMatrix>,
        b: usize,
        alpha: u64,
        trace: &[Pair],
        noise: f64,
        seed: u64,
    ) -> Self {
        assert!(alpha >= 1);
        let n = dm.num_racks();
        Self {
            dm,
            alpha,
            counters: FxHashMap::default(),
            caches: (0..n).map(|_| PredictiveCache::new(b)).collect(),
            oracle: PairOracle::new(trace, noise, derive_seed(seed, 0x9C)),
            clock: 0,
            matching: BMatching::new(n, b),
            marked: FxHashSet::default(),
            name: format!("P-BMA(noise={noise})"),
        }
    }

    fn prune_marked_at(&mut self, node: NodeId) -> u32 {
        let mut removed = 0;
        while self.matching.degree(node) >= self.matching.cap() {
            let victim = self
                .matching
                .incident_edges(node)
                .iter()
                .copied()
                .find(|e| self.marked.contains(e))
                .expect("predictive R-BMA: full node must carry a marked edge");
            self.matching.remove(victim);
            self.marked.remove(&victim);
            removed += 1;
        }
        removed
    }
}

impl OnlineScheduler for PredictiveRbma {
    fn name(&self) -> &str {
        &self.name
    }

    fn cap(&self) -> usize {
        self.matching.cap()
    }

    fn serve(&mut self, pair: Pair) -> ServeOutcome {
        let now = self.clock;
        self.clock += 1;
        let was_matched = self.matching.contains(pair);

        let ell = self.dm.ell(pair).max(1) as u64;
        let k = self.alpha.div_ceil(ell) as u32;
        let counter = self.counters.entry(pair).or_insert(0);
        *counter += 1;
        if *counter < k {
            return ServeOutcome {
                was_matched,
                added: 0,
                removed: 0,
            };
        }
        *counter = 0;

        let (u, v) = pair.endpoints();
        let mut removed = 0;
        for (node, partner) in [(u, v), (v, u)] {
            if let Some(evicted) =
                self.caches[node as usize].access(node, partner, now, &mut self.oracle)
            {
                let gone = Pair::new(node, evicted);
                if self.matching.contains(gone) {
                    self.marked.insert(gone);
                }
            }
        }
        let mut added = 0;
        if !self.matching.contains(pair) {
            removed += self.prune_marked_at(u);
            removed += self.prune_marked_at(v);
            self.matching.insert(pair);
            added = 1;
        }
        self.marked.remove(&pair);
        ServeOutcome {
            was_matched,
            added,
            removed,
        }
    }

    fn matching(&self) -> &BMatching {
        &self.matching
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(n: usize) -> Arc<DistanceMatrix> {
        Arc::new(DistanceMatrix::uniform(n))
    }

    fn cyclic_trace(n: u32, len: usize) -> Vec<Pair> {
        (0..len)
            .map(|i| {
                let a = (i as u32) % n;
                let b = (a + 1 + (i as u32 / n) % (n - 1)) % n;
                if a == b {
                    Pair::new(a, (b + 1) % n)
                } else {
                    Pair::new(a, b)
                }
            })
            .collect()
    }

    #[test]
    fn degree_bound_and_accounting() {
        let trace = cyclic_trace(10, 3000);
        let mut p = PredictiveRbma::new(uniform(10), 2, 1, &trace, 0.0, 3);
        let mut net = 0i64;
        for &r in &trace {
            let o = p.serve(r);
            net += o.added as i64 - o.removed as i64;
            p.matching().assert_valid();
        }
        assert_eq!(net, p.matching().len() as i64);
    }

    #[test]
    fn perfect_predictions_no_worse_than_random_evictions() {
        use crate::algorithms::rbma::{Rbma, RemovalMode};
        // Bursty synthetic sequence where foresight helps.
        let n = 16u32;
        let mut trace = Vec::new();
        for block in 0..400u32 {
            let a = block % n;
            let b = (a + 1 + block % (n - 1)) % n;
            if a == b {
                continue;
            }
            for _ in 0..12 {
                trace.push(Pair::new(a, b));
            }
        }
        let dm = uniform(n as usize);
        let mut pred = PredictiveRbma::new(dm.clone(), 2, 4, &trace, 0.0, 1);
        let mut cost_pred = 0u64;
        for &r in &trace {
            let o = pred.serve(r);
            cost_pred += if o.was_matched { 1 } else { 2 };
        }
        let mut rand_costs = Vec::new();
        for seed in 0..3 {
            let mut rb = Rbma::new(dm.clone(), 2, 4, RemovalMode::Lazy, seed);
            let mut c = 0u64;
            for &r in &trace {
                let o = rb.serve(r);
                c += if o.was_matched { 1 } else { 2 };
            }
            rand_costs.push(c);
        }
        let avg_rand = rand_costs.iter().sum::<u64>() / rand_costs.len() as u64;
        assert!(
            cost_pred <= avg_rand + avg_rand / 10,
            "predictions should not hurt much: pred {cost_pred} vs rand {avg_rand}"
        );
    }

    #[test]
    fn noisy_oracle_still_respects_invariants() {
        let trace = cyclic_trace(8, 2000);
        let mut p = PredictiveRbma::new(uniform(8), 2, 2, &trace, 3.0, 7);
        for &r in &trace {
            p.serve(r);
        }
        p.matching().assert_valid();
    }
}

//! **DemandAware** — the COUDER-style demand-aware *static* baseline: a
//! b-matching provisioned from one or more forecast
//! [`DemandMatrix`](dcn_demand::DemandMatrix)es (arXiv:2010.00090), held
//! fixed while the trace replays.
//!
//! The contrast with the neighbouring baselines locates it precisely:
//! unlike SO-BMA it sees a *forecast matrix*, not the realized trace (so it
//! can be mis-estimated — the axis the `demand` repro target sweeps);
//! unlike R-BMA/BMA it never adapts; unlike Rotor it is demand-*aware*;
//! unlike Oblivious it serves its provisioned pairs at cost 1. Accounting
//! matches SO-BMA: the matching is provisioned before the trace starts, so
//! no reconfiguration cost accrues — it is a topology-design baseline, not
//! an online algorithm.

use crate::scheduler::{OnlineScheduler, ServeOutcome};
use dcn_demand::DemandAware;
use dcn_matching::BMatching;
use dcn_topology::{DistanceMatrix, Pair};

/// Scheduler serving requests against a fixed, pre-provisioned b-matching.
#[derive(Clone, Debug)]
pub struct StaticDemandAware {
    name: &'static str,
    matching: BMatching,
}

impl StaticDemandAware {
    /// Provisions the matching from a [`DemandAware`] builder (point
    /// forecast or hedged matrix set) for degree bound `b`.
    pub fn new(dm: &DistanceMatrix, b: usize, builder: &DemandAware) -> Self {
        assert_eq!(
            dm.num_racks(),
            builder.num_racks(),
            "distance matrix and demand forecast must agree on the rack count"
        );
        let name = if builder.is_hedged() {
            "DemandAware(hedged)"
        } else {
            "DemandAware"
        };
        Self::from_edges(dm.num_racks(), b, &builder.build(dm, b), name)
    }

    /// Installs an explicit edge list (must satisfy the degree bound).
    pub fn from_edges(n: usize, b: usize, edges: &[Pair], name: &'static str) -> Self {
        let mut matching = BMatching::new(n, b);
        for &e in edges {
            matching.insert(e);
        }
        Self { name, matching }
    }
}

impl OnlineScheduler for StaticDemandAware {
    fn name(&self) -> &str {
        self.name
    }

    fn cap(&self) -> usize {
        self.matching.cap()
    }

    fn serve(&mut self, pair: Pair) -> ServeOutcome {
        ServeOutcome {
            was_matched: self.matching.contains(pair),
            added: 0,
            removed: 0,
        }
    }

    fn matching(&self) -> &BMatching {
        &self.matching
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_demand::DemandMatrix;
    use dcn_topology::builders;

    fn uniform_far(n: usize) -> DistanceMatrix {
        DistanceMatrix::between_racks(&builders::leaf_spine(n, 2))
    }

    #[test]
    fn serves_provisioned_pairs_at_cost_one() {
        let dm = uniform_far(6);
        let mut demand = DemandMatrix::new(6, "t");
        demand.set(Pair::new(0, 1), 10.0);
        demand.set(Pair::new(2, 3), 5.0);
        let mut s = StaticDemandAware::new(&dm, 1, &DemandAware::new(demand));
        assert!(s.serve(Pair::new(0, 1)).was_matched);
        assert!(s.serve(Pair::new(2, 3)).was_matched);
        let out = s.serve(Pair::new(0, 4));
        assert!(!out.was_matched);
        assert_eq!(
            out.added + out.removed,
            0,
            "static baseline never reconfigures"
        );
        s.matching().assert_valid();
    }

    #[test]
    fn hedged_label() {
        let dm = uniform_far(8);
        let set = vec![
            DemandMatrix::zipf_pairs(8, 1.2, 1),
            DemandMatrix::zipf_pairs(8, 1.2, 2),
        ];
        let s = StaticDemandAware::new(&dm, 2, &DemandAware::hedged(set));
        assert_eq!(s.name(), "DemandAware(hedged)");
        assert_eq!(s.cap(), 2);
    }
}

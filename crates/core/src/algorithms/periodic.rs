//! Periodic offline rebuild — the production strawman between fully online
//! (R-BMA/BMA) and fully offline (SO-BMA): every `period` requests,
//! recompute a heavy b-matching from the recent demand window and swap it
//! in wholesale, paying α per changed edge.
//!
//! This is the "coarse-granular, traffic-matrix-driven" reconfiguration
//! style of systems like Proteus/OSA (§4 of the paper classifies these
//! against fine-granular per-request schedulers); comparing it against
//! R-BMA quantifies what per-request adaptivity buys.
//!
//! Substrate note: the flat intrusive recency slab that now backs BMA
//! ([`dcn_matching::recency::LruBMatching`]) was evaluated here and not
//! adopted — this scheduler keeps a demand *count* window (`window`) and
//! never asks which edge is least recently used, so an LRU overlay would
//! be dead weight on its hot path.

use crate::scheduler::{OnlineScheduler, ServeOutcome};
use dcn_matching::{greedy_b_matching, BMatching, WeightedEdge};
use dcn_topology::{DistanceMatrix, Pair};
use dcn_util::FxHashMap;
use std::sync::Arc;

/// Scheduler that rebuilds a greedy heavy b-matching every `period`
/// requests from a sliding demand window.
pub struct PeriodicRebuild {
    dm: Arc<DistanceMatrix>,
    period: u64,
    /// Demand counts of the current window.
    window: FxHashMap<Pair, i64>,
    clock: u64,
    matching: BMatching,
}

impl PeriodicRebuild {
    /// Creates the scheduler; the first rebuild happens after `period`
    /// requests.
    pub fn new(dm: Arc<DistanceMatrix>, b: usize, period: u64) -> Self {
        assert!(period >= 1);
        let n = dm.num_racks();
        Self {
            dm,
            period,
            window: FxHashMap::default(),
            clock: 0,
            matching: BMatching::new(n, b),
        }
    }

    fn rebuild(&mut self) -> (u32, u32) {
        let edges: Vec<WeightedEdge> = self
            .window
            .iter()
            .filter_map(|(&pair, &cnt)| {
                let saving = (self.dm.ell(pair) as i64 - 1) * cnt;
                (saving > 0).then(|| WeightedEdge::new(pair.lo(), pair.hi(), saving))
            })
            .collect();
        let target = greedy_b_matching(self.dm.num_racks(), &edges, self.matching.cap());
        let target_set: std::collections::HashSet<Pair> = target.iter().copied().collect();

        let mut removed = 0;
        let stale: Vec<Pair> = self
            .matching
            .edges()
            .filter(|e| !target_set.contains(e))
            .collect();
        for e in stale {
            self.matching.remove(e);
            removed += 1;
        }
        let mut added = 0;
        for e in target {
            if self.matching.try_insert(e) {
                added += 1;
            }
        }
        self.window.clear();
        (added, removed)
    }
}

impl OnlineScheduler for PeriodicRebuild {
    fn name(&self) -> &str {
        "Periodic"
    }

    fn cap(&self) -> usize {
        self.matching.cap()
    }

    fn serve(&mut self, pair: Pair) -> ServeOutcome {
        let was_matched = self.matching.contains(pair);
        *self.window.entry(pair).or_insert(0) += 1;
        self.clock += 1;
        let (added, removed) = if self.clock.is_multiple_of(self.period) {
            self.rebuild()
        } else {
            (0, 0)
        };
        ServeOutcome {
            was_matched,
            added,
            removed,
        }
    }

    fn matching(&self) -> &BMatching {
        &self.matching
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf_spine_dm(n: usize) -> Arc<DistanceMatrix> {
        let net = dcn_topology::builders::leaf_spine(n, 2);
        Arc::new(DistanceMatrix::between_racks(&net))
    }

    #[test]
    fn no_matching_before_first_rebuild() {
        let mut p = PeriodicRebuild::new(leaf_spine_dm(6), 2, 100);
        for _ in 0..99 {
            let o = p.serve(Pair::new(0, 1));
            assert!(!o.was_matched);
            assert_eq!(o.added, 0);
        }
        let o = p.serve(Pair::new(0, 1));
        assert_eq!(o.added, 1, "rebuild at request 100 adopts the hot pair");
        assert!(p.serve(Pair::new(0, 1)).was_matched);
    }

    #[test]
    fn rebuild_swaps_to_new_hot_pairs() {
        let mut p = PeriodicRebuild::new(leaf_spine_dm(6), 1, 50);
        for _ in 0..50 {
            p.serve(Pair::new(0, 1));
        }
        assert!(p.matching().contains(Pair::new(0, 1)));
        // New window dominated by {0, 2}: next rebuild must swap.
        let mut removed_total = 0;
        for _ in 0..50 {
            let o = p.serve(Pair::new(0, 2));
            removed_total += o.removed;
        }
        assert!(p.matching().contains(Pair::new(0, 2)));
        assert!(!p.matching().contains(Pair::new(0, 1)));
        assert_eq!(removed_total, 1);
    }

    #[test]
    fn respects_degree_cap() {
        let n = 10;
        let mut p = PeriodicRebuild::new(leaf_spine_dm(n), 2, 25);
        for i in 0..2000u32 {
            let a = i % n as u32;
            let b = (a + 1 + i.wrapping_mul(2654435761) % (n as u32 - 1)) % n as u32;
            if a != b {
                p.serve(Pair::new(a, b));
            }
            p.matching().assert_valid();
        }
    }

    #[test]
    fn stable_demand_stops_reconfiguring() {
        let mut p = PeriodicRebuild::new(leaf_spine_dm(6), 1, 30);
        let mut changes_late = 0;
        for i in 0..300u32 {
            let o = p.serve(Pair::new(0, 1));
            if i >= 60 {
                changes_late += o.added + o.removed;
            }
        }
        assert_eq!(
            changes_late, 0,
            "identical windows must not churn the matching"
        );
    }
}

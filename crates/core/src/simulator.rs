//! Trace-driven simulation with the paper's cost model and checkpointed
//! series (§3.1 methodology).
//!
//! The simulator owns the cost model: routing cost is decided by the
//! matching state *at request arrival* (1 if matched, `ℓ_e` otherwise),
//! reconfigurations cost α each. Wall-clock time covers only the serve
//! loop — snapshotting is excluded, and runs are single-threaded by
//! default, matching "each simulation is run sequentially" in §3.1.
//! [`SimConfig::intra_threads`] can shard each chunk's *preprocessing scan*
//! across an [`IntraPool`] (state mutation stays sequential), which changes
//! wall-clock only — every reported number is identical at any width.
//!
//! The serve loop is **batched**: requests are pulled through the
//! [`RequestStream`] abstraction in chunks of up to
//! [`SimConfig::batch_size`] into a reusable buffer, and each chunk is
//! handed to [`OnlineScheduler::serve_batch`] in one call — so the
//! per-request constant pays no virtual dispatch, no stopwatch reads and no
//! stream bookkeeping. Chunks are cut so they never straddle a checkpoint
//! or a verification boundary; a checkpoint landing in the middle of a
//! batch therefore still snapshots at its exact request index, and batched
//! and unbatched runs produce identical reports (pinned by tests below).
//!
//! A slice / `Vec` / [`Trace`] is consumed as zero-copy subslices; a
//! `&mut impl RequestSource` fills the batch buffer via
//! [`RequestSource::fill`] — the simulator itself holds O(batch) state in
//! the stream length, so workloads of tens of millions of requests run at
//! constant memory.

use crate::cancel::CancelToken;
use crate::parallel::{resolve_intra, IntraPool};
use crate::report::{Checkpoint, RunReport};
use crate::scheduler::{BatchOutcome, OnlineScheduler};
use dcn_telemetry::{Histogram, Telemetry};
use dcn_topology::{DistanceMatrix, Pair};
use dcn_traces::source::RequestSource;
use dcn_traces::Trace;
use dcn_util::Stopwatch;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Requests served by [`run`] across the whole process, telemetry or not —
/// one relaxed add per chunk, powering the per-target throughput footer of
/// `repro_figures` without a telemetry registry.
static TOTAL_SERVED: AtomicU64 = AtomicU64::new(0);

/// Requests served by [`run`] so far, process-wide. Monotone; diff two
/// reads to attribute requests to a span of work.
pub fn total_served() -> u64 {
    TOTAL_SERVED.load(Ordering::Relaxed)
}

/// Default serve-batch size: large enough to amortize per-batch overhead
/// into noise, small enough that the buffer stays cache-resident (8 KiB of
/// packed pairs).
pub const DEFAULT_BATCH_SIZE: usize = 1024;

/// Which batch entry point the serve loop drives (reports are identical
/// either way — this tunes the constant, never the result).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ServeMode {
    /// [`OnlineScheduler::serve_batch`] — the scheduler's preferred batched
    /// path: pair-bucketed where the scheduler has one (R-BMA dispatches
    /// per chunk between its persistent slab and its fused loop from the
    /// observed specials share), the unsorted pass otherwise.
    #[default]
    Sorted,
    /// [`OnlineScheduler::serve_batch_unsorted`] — the straight fused
    /// per-request pass (kept addressable for equality gates and benches).
    Unsorted,
}

/// Simulation options.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Request counts at which to snapshot cumulative series; the trace end
    /// is always snapshotted. Out-of-range entries are ignored.
    pub checkpoints: Vec<usize>,
    /// Verify the matching invariant every this many requests (0 = never;
    /// tests use small values, benches 0).
    pub verify_every: usize,
    /// Seed recorded in the report (provenance only).
    pub seed: u64,
    /// Trace name recorded in the report.
    pub trace_name: String,
    /// Maximum requests per [`OnlineScheduler::serve_batch`] call
    /// (`0` is treated as `1`, i.e. per-request serving). Any value
    /// produces the identical report; this only tunes the constant.
    pub batch_size: usize,
    /// Which batch entry point to drive (identical reports either way).
    pub serve_mode: ServeMode,
    /// Intra-run workers sharding each chunk's preprocessing scan by
    /// rack-pair ownership (`1` = off, `0` = one per available core).
    /// Any width produces the identical report. Widths above 1 force the
    /// sorted path ([`OnlineScheduler::serve_batch_sharded`]). The width
    /// is **per simulation** and composes with sweep-level fan-out
    /// ([`crate::sweep::run_jobs`]'s worker count): S sweep workers at
    /// width W can occupy S × W cores.
    pub intra_threads: usize,
    /// Sink for run telemetry (serve-latency histogram, scheduler event
    /// counters, executor stats). The default picks up the process-global
    /// handle ([`dcn_telemetry::global`]), so sweeps and ablations built on
    /// `SimConfig::default()` report automatically once `repro_figures
    /// --telemetry` installs one. Disabled handles cost one branch per
    /// chunk; the report is byte-identical either way (pinned by proptest).
    pub telemetry: Telemetry,
    /// Cooperative stop signal, polled once per chunk. The default inert
    /// token costs one `None` check; the supervised executor
    /// ([`crate::sweep::run_jobs_supervised`]) installs a deadline token so
    /// an over-budget job stops at the next chunk boundary and returns its
    /// partial report (the supervisor inspects
    /// [`CancelToken::is_cancelled`] to tell partial from complete).
    pub cancel: CancelToken,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            checkpoints: Vec::new(),
            verify_every: 0,
            seed: 0,
            trace_name: String::new(),
            batch_size: DEFAULT_BATCH_SIZE,
            serve_mode: ServeMode::default(),
            intra_threads: 1,
            telemetry: dcn_telemetry::global(),
            cancel: CancelToken::none(),
        }
    }
}

impl SimConfig {
    /// A copy serving `batch_size` requests per scheduler call.
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// A copy driving the given batch entry point.
    pub fn with_serve_mode(mut self, serve_mode: ServeMode) -> Self {
        self.serve_mode = serve_mode;
        self
    }

    /// A copy sharding each chunk's preprocessing scan across
    /// `intra_threads` workers (`0` = one per available core).
    pub fn with_intra_threads(mut self, intra_threads: usize) -> Self {
        self.intra_threads = intra_threads;
        self
    }

    /// A copy flushing run telemetry into `telemetry` (instead of the
    /// process-global handle `Default` picks up).
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// A copy polling `cancel` at every chunk boundary.
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }

    /// Evenly spaced checkpoints: up to `count` points up to `total`.
    ///
    /// Degrades gracefully instead of panicking: `count` is clamped to
    /// `1..=total` (a 3-request `--fast` smoke trace asked for 14 points
    /// gets 3), and an empty trace gets an empty grid.
    pub fn evenly_spaced(total: usize, count: usize) -> Vec<usize> {
        if total == 0 {
            return Vec::new();
        }
        let count = count.clamp(1, total);
        (1..=count).map(|i| total * i / count).collect()
    }
}

/// Anything the simulator can consume as a request sequence: an eager slice
/// (`&[Pair]`, `&Vec<Pair>`, `&Trace`) or a lazy `&mut impl RequestSource`
/// stream. Conversion yields a [`RequestChunks`] cursor the batched serve
/// loop pulls chunks from.
pub trait RequestStream {
    /// The concrete chunk cursor.
    type Chunks: RequestChunks;

    /// Converts into the chunk cursor.
    fn into_chunks(self) -> Self::Chunks;
}

/// Cursor over a request sequence, consumed in caller-sized chunks.
///
/// The total length is consulted **once**, up front, to lay out the
/// checkpoint grid; after that the simulator only asks for chunks.
pub trait RequestChunks {
    /// Requests not yet consumed.
    fn remaining(&self) -> usize;

    /// Yields the next `min(buf.len(), remaining)` requests. Eager
    /// sequences return zero-copy subslices of their storage and never
    /// touch `buf`; streaming sources fill `buf` (via
    /// [`RequestSource::fill`]) and return the filled prefix.
    fn next_chunk<'a>(&'a mut self, buf: &'a mut [Pair]) -> &'a [Pair];
}

/// Zero-copy chunk cursor over an eager request slice.
pub struct SliceChunks<'a> {
    requests: &'a [Pair],
}

impl RequestChunks for SliceChunks<'_> {
    fn remaining(&self) -> usize {
        self.requests.len()
    }

    fn next_chunk<'b>(&'b mut self, buf: &'b mut [Pair]) -> &'b [Pair] {
        let n = buf.len().min(self.requests.len());
        let (head, tail) = self.requests.split_at(n);
        self.requests = tail;
        head
    }
}

/// Chunk cursor over a lazy [`RequestSource`] (batch-fills the buffer).
pub struct SourceChunks<'a, S: ?Sized>(&'a mut S);

impl<S: RequestSource + ?Sized> RequestChunks for SourceChunks<'_, S> {
    fn remaining(&self) -> usize {
        self.0.remaining()
    }

    fn next_chunk<'b>(&'b mut self, buf: &'b mut [Pair]) -> &'b [Pair] {
        let n = self.0.fill(buf);
        &buf[..n]
    }
}

impl<'a> RequestStream for &'a [Pair] {
    type Chunks = SliceChunks<'a>;

    fn into_chunks(self) -> Self::Chunks {
        SliceChunks { requests: self }
    }
}

impl<'a> RequestStream for &'a Vec<Pair> {
    type Chunks = SliceChunks<'a>;

    fn into_chunks(self) -> Self::Chunks {
        SliceChunks { requests: self }
    }
}

impl<'a> RequestStream for &'a Trace {
    type Chunks = SliceChunks<'a>;

    fn into_chunks(self) -> Self::Chunks {
        SliceChunks {
            requests: &self.requests,
        }
    }
}

impl<'a, S: RequestSource + ?Sized> RequestStream for &'a mut S {
    type Chunks = SourceChunks<'a, S>;

    fn into_chunks(self) -> Self::Chunks {
        SourceChunks(self)
    }
}

/// Runs `scheduler` over `requests`, returning the checkpointed report.
///
/// A streaming source is consumed from its *current* position; call
/// [`RequestSource::reset`] first to replay from the start.
///
/// The serve loop is chunked: one reusable batch buffer, one
/// [`OnlineScheduler::serve_batch`] call per chunk, chunks cut at
/// checkpoint and verification boundaries so snapshots land at exact
/// request indices. The produced report is identical for every
/// [`SimConfig::batch_size`] (only `elapsed_secs` — wall-clock — varies).
pub fn run<S: OnlineScheduler + ?Sized, R: RequestStream>(
    scheduler: &mut S,
    dm: &DistanceMatrix,
    alpha: u64,
    requests: R,
    config: &SimConfig,
) -> RunReport {
    let mut stream = requests.into_chunks();
    let total = stream.remaining();
    let mut cps: Vec<usize> = config
        .checkpoints
        .iter()
        .copied()
        .filter(|&c| c > 0 && c <= total)
        .collect();
    cps.sort_unstable();
    cps.dedup();
    if cps.last() != Some(&total) && total > 0 {
        cps.push(total);
    }

    let batch = config.batch_size.max(1).min(total.max(1));
    let mut buf = vec![Pair::new(0, 1); batch];
    // Telemetry recorders are run-local; the registry is only touched at
    // the flush below. With a disabled handle (or the layer compiled off)
    // the serve loop pays one branch per chunk and nothing else.
    let telem_on = config.telemetry.is_enabled();
    let mut chunk_ns = Histogram::default();
    // The pool outlives the serve loop: workers spawn once per run, and
    // serve_batch_sharded broadcasts one scan per chunk.
    let intra = resolve_intra(config.intra_threads);
    let pool = (intra > 1).then(|| {
        if telem_on {
            IntraPool::instrumented(intra)
        } else {
            IntraPool::new(intra)
        }
    });
    let mut state = Checkpoint::default();
    let mut checkpoints = Vec::with_capacity(cps.len());
    let mut next_cp = 0usize;
    let mut served = 0usize;
    let mut sw = Stopwatch::new();

    while served < total {
        // Cooperative cancellation: a tripped token (deadline or explicit)
        // ends the run at this chunk boundary with the partial state
        // accumulated so far; the caller reads the token to detect it.
        if config.cancel.should_stop() {
            break;
        }
        dcn_util::failpoint::hit("sim.chunk");
        // The chunk must not straddle a checkpoint or verify boundary.
        let mut limit = batch.min(total - served);
        if next_cp < cps.len() {
            limit = limit.min(cps[next_cp] - served);
        }
        if config.verify_every > 0 {
            limit = limit.min(config.verify_every - served % config.verify_every);
        }

        // Chunk generation stays outside the timed window, exactly like the
        // historical per-request loop (wall-clock covers serving only).
        let chunk = stream.next_chunk(&mut buf[..limit]);
        let n = chunk.len();
        if n == 0 {
            break; // defensive: stream ended short of its advertised total
        }
        let mut acc = BatchOutcome::default();
        // Chunk latency reads the clock outside the stopwatch window, so
        // `elapsed_secs` is identical with telemetry on or off.
        let chunk_t0 = telem_on.then(Instant::now);
        sw.start();
        match (&pool, config.serve_mode) {
            (Some(pool), _) => scheduler.serve_batch_sharded(chunk, dm, pool, &mut acc),
            (None, ServeMode::Sorted) => scheduler.serve_batch(chunk, dm, &mut acc),
            (None, ServeMode::Unsorted) => scheduler.serve_batch_unsorted(chunk, dm, &mut acc),
        }
        sw.pause();
        if let Some(t0) = chunk_t0 {
            chunk_ns.record(t0.elapsed().as_nanos() as u64);
        }
        TOTAL_SERVED.fetch_add(n as u64, Ordering::Relaxed);

        state.requests += n as u64;
        state.matched_requests += acc.matched;
        state.routing_cost += acc.routing_cost;
        state.reconfigurations += acc.reconfigurations();
        state.reconfig_cost += alpha * acc.reconfigurations();
        served += n;

        if config.verify_every > 0 && served % config.verify_every == 0 {
            scheduler.matching().assert_valid();
        }
        if next_cp < cps.len() && served == cps[next_cp] {
            state.elapsed_secs = sw.elapsed_secs();
            checkpoints.push(state);
            next_cp += 1;
        }
    }
    state.elapsed_secs = sw.elapsed_secs();

    if telem_on {
        let sink = &config.telemetry;
        sink.add_counter("serve.chunks", chunk_ns.count());
        sink.add_counter("serve.requests", state.requests);
        sink.add_counter("serve.matched", state.matched_requests);
        sink.add_counter("serve.reconfigurations", state.reconfigurations);
        sink.merge_histogram("serve.chunk_ns", &chunk_ns);
        scheduler.telemetry_flush(sink);
        if let Some(pool) = &pool {
            pool.telemetry_flush(sink);
        }
    }

    RunReport {
        algorithm: scheduler.name().to_string(),
        trace: config.trace_name.clone(),
        b: scheduler.cap(),
        alpha,
        seed: config.seed,
        total: state,
        checkpoints,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::oblivious::Oblivious;
    use crate::algorithms::rbma::{Rbma, RemovalMode};
    use dcn_topology::builders;
    use dcn_traces::uniform_source;
    use std::sync::Arc;

    fn setup(n: usize) -> (Arc<DistanceMatrix>, Vec<Pair>) {
        let net = builders::leaf_spine(n, 2); // all distances 2
        let dm = Arc::new(DistanceMatrix::between_racks(&net));
        let reqs: Vec<Pair> = (0..600u32)
            .map(|i| {
                Pair::new(
                    i % n as u32,
                    (i % (n as u32 - 1) + 1 + i % n as u32) % n as u32,
                )
            })
            .filter(|p| p.lo() != p.hi())
            .collect();
        (dm, reqs)
    }

    #[test]
    fn oblivious_cost_is_sum_of_distances() {
        let (dm, reqs) = setup(8);
        let mut alg = Oblivious::new(8, 2);
        let report = run(&mut alg, &dm, 10, &reqs, &SimConfig::default());
        let expected: u64 = reqs.iter().map(|r| dm.ell(*r) as u64).sum();
        assert_eq!(report.total.routing_cost, expected);
        assert_eq!(report.total.reconfig_cost, 0);
        assert_eq!(report.total.requests, reqs.len() as u64);
    }

    #[test]
    fn checkpoints_are_cumulative_and_sorted() {
        let (dm, reqs) = setup(8);
        let mut alg = Oblivious::new(8, 2);
        let config = SimConfig {
            checkpoints: vec![100, 300, 200, 100_000],
            ..Default::default()
        };
        let report = run(&mut alg, &dm, 10, &reqs, &config);
        let xs: Vec<u64> = report.checkpoints.iter().map(|c| c.requests).collect();
        assert_eq!(xs, vec![100, 200, 300, reqs.len() as u64]);
        let costs: Vec<u64> = report.checkpoints.iter().map(|c| c.routing_cost).collect();
        assert!(
            costs.windows(2).all(|w| w[0] <= w[1]),
            "cumulative must be monotone"
        );
    }

    #[test]
    fn rbma_cheaper_than_oblivious_on_repetitive_trace() {
        let n = 10;
        let net = builders::leaf_spine(n, 2);
        let dm = Arc::new(DistanceMatrix::between_racks(&net));
        // A few hot pairs requested over and over.
        let reqs: Vec<Pair> = (0..4000u32).map(|i| Pair::new(i % 3, 5 + i % 3)).collect();
        let alpha = 5;
        let mut rbma = Rbma::new(dm.clone(), 3, alpha, RemovalMode::Lazy, 1);
        let r1 = run(&mut rbma, &dm, alpha, &reqs, &SimConfig::default());
        let mut obl = Oblivious::new(n, 3);
        let r2 = run(&mut obl, &dm, alpha, &reqs, &SimConfig::default());
        assert!(
            r1.total.routing_cost < r2.total.routing_cost,
            "R-BMA should beat oblivious on hot pairs: {} vs {}",
            r1.total.routing_cost,
            r2.total.routing_cost
        );
        // Total cost (incl. reconfig) must also win on this easy trace.
        assert!(r1.total.total_cost() < r2.total.total_cost());
    }

    #[test]
    fn reconfig_cost_is_alpha_times_changes() {
        let (dm, reqs) = setup(8);
        let alpha = 7;
        let mut rbma = Rbma::new(dm.clone(), 2, alpha, RemovalMode::Lazy, 2);
        let report = run(&mut rbma, &dm, alpha, &reqs, &SimConfig::default());
        assert_eq!(
            report.total.reconfig_cost,
            alpha * report.total.reconfigurations
        );
    }

    #[test]
    fn verification_hook_runs() {
        let (dm, reqs) = setup(8);
        let mut rbma = Rbma::new(dm.clone(), 2, 4, RemovalMode::Lazy, 3);
        let config = SimConfig {
            verify_every: 50,
            ..Default::default()
        };
        // Passes iff assert_valid never fires.
        let report = run(&mut rbma, &dm, 4, &reqs, &config);
        assert_eq!(report.total.requests, reqs.len() as u64);
    }

    #[test]
    fn streamed_run_equals_materialized_run() {
        let net = builders::leaf_spine(12, 2);
        let dm = Arc::new(DistanceMatrix::between_racks(&net));
        let mut source = uniform_source(12, 5000, 9);
        let trace = source.materialize();
        let config = SimConfig {
            checkpoints: vec![1000, 2500],
            ..Default::default()
        };

        let mut a = Rbma::new(dm.clone(), 3, 10, RemovalMode::Lazy, 4);
        let eager = run(&mut a, &dm, 10, &trace.requests, &config);
        let mut b = Rbma::new(dm.clone(), 3, 10, RemovalMode::Lazy, 4);
        let streamed = run(&mut b, &dm, 10, &mut source, &config);

        assert_eq!(eager.total.routing_cost, streamed.total.routing_cost);
        assert_eq!(
            eager.total.reconfigurations,
            streamed.total.reconfigurations
        );
        assert_eq!(eager.checkpoints.len(), streamed.checkpoints.len());
        for (x, y) in eager.checkpoints.iter().zip(&streamed.checkpoints) {
            assert_eq!(x.requests, y.requests);
            assert_eq!(x.routing_cost, y.routing_cost);
        }
    }

    #[test]
    fn streamed_run_consumes_from_current_position() {
        let net = builders::leaf_spine(8, 2);
        let dm = Arc::new(DistanceMatrix::between_racks(&net));
        let mut source = uniform_source(8, 100, 2);
        source.next_request();
        let mut alg = Oblivious::new(8, 2);
        let report = run(&mut alg, &dm, 10, &mut source, &SimConfig::default());
        assert_eq!(report.total.requests, 99);
        source.reset();
        let mut alg2 = Oblivious::new(8, 2);
        let full = run(&mut alg2, &dm, 10, &mut source, &SimConfig::default());
        assert_eq!(full.total.requests, 100);
    }

    /// Reports must be identical up to wall-clock time.
    fn assert_reports_identical(a: &RunReport, b: &RunReport, ctx: &str) {
        assert_eq!(a.total.requests, b.total.requests, "{ctx}");
        assert_eq!(a.total.routing_cost, b.total.routing_cost, "{ctx}");
        assert_eq!(a.total.reconfig_cost, b.total.reconfig_cost, "{ctx}");
        assert_eq!(a.total.reconfigurations, b.total.reconfigurations, "{ctx}");
        assert_eq!(a.total.matched_requests, b.total.matched_requests, "{ctx}");
        assert_eq!(a.checkpoints.len(), b.checkpoints.len(), "{ctx}");
        for (x, y) in a.checkpoints.iter().zip(&b.checkpoints) {
            assert_eq!(x.requests, y.requests, "{ctx}");
            assert_eq!(x.routing_cost, y.routing_cost, "{ctx}");
            assert_eq!(x.reconfig_cost, y.reconfig_cost, "{ctx}");
            assert_eq!(x.reconfigurations, y.reconfigurations, "{ctx}");
            assert_eq!(x.matched_requests, y.matched_requests, "{ctx}");
        }
    }

    #[test]
    fn batched_run_equals_unbatched_run_for_every_scheduler() {
        // The hard batching contract: any batch size produces the identical
        // report — total cost, reconfiguration count, every checkpoint — on
        // every scheduler with a serve_batch override plus one that uses
        // the default loop (Bma goes through its override; Oblivious,
        // R-BMA and Rotor through theirs).
        use crate::algorithms::bma::Bma;
        use crate::algorithms::rotor::Rotor;
        let net = builders::fat_tree_with_racks(16);
        let dm = Arc::new(DistanceMatrix::between_racks(&net));
        let mut source = uniform_source(16, 6_000, 11);
        let trace = source.materialize();
        let base = SimConfig {
            checkpoints: vec![500, 1_234, 3_000, 5_999],
            ..Default::default()
        };
        type Factory<'a> = Box<dyn Fn() -> Box<dyn OnlineScheduler> + 'a>;
        let factories: Vec<(&str, Factory)> = vec![
            (
                "rbma-lazy",
                Box::new(|| Box::new(Rbma::new(dm.clone(), 3, 10, RemovalMode::Lazy, 4))),
            ),
            (
                "rbma-strict",
                Box::new(|| Box::new(Rbma::new(dm.clone(), 3, 10, RemovalMode::Strict, 4))),
            ),
            ("bma", Box::new(|| Box::new(Bma::new(dm.clone(), 3, 10)))),
            ("oblivious", Box::new(|| Box::new(Oblivious::new(16, 3)))),
            ("rotor", Box::new(|| Box::new(Rotor::new(16, 3, 7)))),
        ];
        for (name, make) in &factories {
            let mut reference = make();
            let unbatched = run(
                reference.as_mut(),
                &dm,
                10,
                &trace.requests,
                &base.clone().with_batch_size(1),
            );
            for batch_size in [2usize, 7, 64, 1024, 100_000] {
                let config = base.clone().with_batch_size(batch_size);
                // Eager (zero-copy subslice) path.
                let mut s = make();
                let eager = run(s.as_mut(), &dm, 10, &trace.requests, &config);
                assert_reports_identical(&eager, &unbatched, &format!("{name} b={batch_size}"));
                // Streamed (fill-into-buffer) path.
                source.reset();
                let mut s = make();
                let streamed = run(s.as_mut(), &dm, 10, &mut source, &config);
                assert_reports_identical(
                    &streamed,
                    &unbatched,
                    &format!("{name} streamed b={batch_size}"),
                );
                // Explicit unsorted mode and intra-sharded runs: same
                // report again, at every pool width.
                let mut s = make();
                let uns = run(
                    s.as_mut(),
                    &dm,
                    10,
                    &trace.requests,
                    &config.clone().with_serve_mode(ServeMode::Unsorted),
                );
                assert_reports_identical(&uns, &unbatched, &format!("{name} unsorted"));
                for intra in [2usize, 3] {
                    let mut s = make();
                    let sharded = run(
                        s.as_mut(),
                        &dm,
                        10,
                        &trace.requests,
                        &config.clone().with_intra_threads(intra),
                    );
                    assert_reports_identical(
                        &sharded,
                        &unbatched,
                        &format!("{name} b={batch_size} intra={intra}"),
                    );
                }
            }
        }
    }

    #[test]
    fn checkpoint_inside_a_batch_snapshots_at_exact_index() {
        // Regression (batched refactor): checkpoints that do not divide the
        // batch size must still snapshot at their exact request index, with
        // the same cumulative state an unbatched run records there.
        let net = builders::leaf_spine(10, 2);
        let dm = Arc::new(DistanceMatrix::between_racks(&net));
        let mut source = uniform_source(10, 2_000, 3);
        // 37 and 1961 both fall strictly inside 1024-sized batches.
        let config = SimConfig {
            checkpoints: vec![37, 1_961],
            batch_size: 1024,
            ..Default::default()
        };
        let mut a = Rbma::new(dm.clone(), 2, 5, RemovalMode::Lazy, 1);
        let batched = run(&mut a, &dm, 5, &mut source, &config);
        let xs: Vec<u64> = batched.checkpoints.iter().map(|c| c.requests).collect();
        assert_eq!(xs, vec![37, 1_961, 2_000]);

        source.reset();
        let mut b = Rbma::new(dm.clone(), 2, 5, RemovalMode::Lazy, 1);
        let unbatched = run(
            &mut b,
            &dm,
            5,
            &mut source,
            &config.clone().with_batch_size(1),
        );
        assert_reports_identical(&batched, &unbatched, "checkpoint mid-batch");
    }

    #[test]
    fn verify_hook_fires_at_exact_boundaries_in_batched_runs() {
        // verify_every must split batches, so assert_valid runs at the same
        // request indices as the historical per-request loop. A panic-free
        // run over a verify interval that is coprime to the batch size is
        // the regression signal.
        let (dm, reqs) = setup(8);
        let config = SimConfig {
            verify_every: 97,
            batch_size: 64,
            ..Default::default()
        };
        let mut rbma = Rbma::new(dm.clone(), 2, 4, RemovalMode::Lazy, 3);
        let report = run(&mut rbma, &dm, 4, &reqs, &config);
        assert_eq!(report.total.requests, reqs.len() as u64);
    }

    #[test]
    fn tripped_cancel_token_stops_at_a_chunk_boundary() {
        let (dm, reqs) = setup(8);
        // An already-expired deadline stops the run before the first chunk:
        // the report is the partial (empty) state, and the token is latched
        // so the caller can tell the run was cut short.
        let config = SimConfig::default()
            .with_batch_size(100)
            .with_cancel(CancelToken::with_deadline(std::time::Duration::ZERO));
        let mut alg = Oblivious::new(8, 2);
        let report = run(&mut alg, &dm, 10, &reqs, &config);
        assert_eq!(report.total.requests, 0);
        assert!(report.checkpoints.is_empty());
        assert!(config.cancel.is_cancelled());

        // An inert token (the default) serves everything.
        let mut alg = Oblivious::new(8, 2);
        let full = run(&mut alg, &dm, 10, &reqs, &SimConfig::default());
        assert_eq!(full.total.requests, reqs.len() as u64);
    }

    #[test]
    fn evenly_spaced_grid() {
        assert_eq!(SimConfig::evenly_spaced(100, 4), vec![25, 50, 75, 100]);
        assert_eq!(SimConfig::evenly_spaced(10, 1), vec![10]);
    }

    #[test]
    fn evenly_spaced_clamps_gracefully() {
        // count > total: one checkpoint per request instead of a panic.
        assert_eq!(SimConfig::evenly_spaced(3, 14), vec![1, 2, 3]);
        assert_eq!(SimConfig::evenly_spaced(1, 8), vec![1]);
        // count = 0 still yields the trace end; empty traces yield nothing.
        assert_eq!(SimConfig::evenly_spaced(5, 0), vec![5]);
        assert_eq!(SimConfig::evenly_spaced(0, 4), Vec::<usize>::new());
    }
}

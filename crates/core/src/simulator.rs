//! Trace-driven simulation with the paper's cost model and checkpointed
//! series (§3.1 methodology).
//!
//! The simulator owns all cost accounting: routing cost is decided by the
//! matching state *at request arrival* (1 if matched, `ℓ_e` otherwise),
//! reconfigurations cost α each. Wall-clock time covers only the serve
//! loop — snapshotting is excluded, and runs are single-threaded, matching
//! "each simulation is run sequentially" in §3.1.

use crate::report::{Checkpoint, RunReport};
use crate::scheduler::OnlineScheduler;
use dcn_topology::{DistanceMatrix, Pair};
use dcn_util::Stopwatch;

/// Simulation options.
#[derive(Clone, Debug, Default)]
pub struct SimConfig {
    /// Request counts at which to snapshot cumulative series; the trace end
    /// is always snapshotted. Out-of-range entries are ignored.
    pub checkpoints: Vec<usize>,
    /// Verify the matching invariant every this many requests (0 = never;
    /// tests use small values, benches 0).
    pub verify_every: usize,
    /// Seed recorded in the report (provenance only).
    pub seed: u64,
    /// Trace name recorded in the report.
    pub trace_name: String,
}

impl SimConfig {
    /// Evenly spaced checkpoints: `count` points up to `total`.
    pub fn evenly_spaced(total: usize, count: usize) -> Vec<usize> {
        assert!(count >= 1 && total >= count);
        (1..=count).map(|i| total * i / count).collect()
    }
}

/// Runs `scheduler` over `requests`, returning the checkpointed report.
pub fn run<S: OnlineScheduler + ?Sized>(
    scheduler: &mut S,
    dm: &DistanceMatrix,
    alpha: u64,
    requests: &[Pair],
    config: &SimConfig,
) -> RunReport {
    let mut cps: Vec<usize> = config
        .checkpoints
        .iter()
        .copied()
        .filter(|&c| c > 0 && c <= requests.len())
        .collect();
    cps.sort_unstable();
    cps.dedup();
    if cps.last() != Some(&requests.len()) && !requests.is_empty() {
        cps.push(requests.len());
    }

    let mut state = Checkpoint::default();
    let mut checkpoints = Vec::with_capacity(cps.len());
    let mut next_cp = 0usize;
    let mut sw = Stopwatch::new();

    for (i, &pair) in requests.iter().enumerate() {
        sw.start();
        let outcome = scheduler.serve(pair);
        sw.pause();

        state.requests += 1;
        if outcome.was_matched {
            state.matched_requests += 1;
            state.routing_cost += 1;
        } else {
            state.routing_cost += dm.ell(pair) as u64;
        }
        let changes = (outcome.added + outcome.removed) as u64;
        state.reconfigurations += changes;
        state.reconfig_cost += alpha * changes;

        if config.verify_every > 0 && (i + 1) % config.verify_every == 0 {
            scheduler.matching().assert_valid();
        }
        if next_cp < cps.len() && i + 1 == cps[next_cp] {
            state.elapsed_secs = sw.elapsed_secs();
            checkpoints.push(state);
            next_cp += 1;
        }
    }
    state.elapsed_secs = sw.elapsed_secs();

    RunReport {
        algorithm: scheduler.name().to_string(),
        trace: config.trace_name.clone(),
        b: scheduler.cap(),
        alpha,
        seed: config.seed,
        total: state,
        checkpoints,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::oblivious::Oblivious;
    use crate::algorithms::rbma::{Rbma, RemovalMode};
    use dcn_topology::builders;
    use std::sync::Arc;

    fn setup(n: usize) -> (Arc<DistanceMatrix>, Vec<Pair>) {
        let net = builders::leaf_spine(n, 2); // all distances 2
        let dm = Arc::new(DistanceMatrix::between_racks(&net));
        let reqs: Vec<Pair> = (0..600u32)
            .map(|i| {
                Pair::new(
                    i % n as u32,
                    (i % (n as u32 - 1) + 1 + i % n as u32) % n as u32,
                )
            })
            .filter(|p| p.lo() != p.hi())
            .collect();
        (dm, reqs)
    }

    #[test]
    fn oblivious_cost_is_sum_of_distances() {
        let (dm, reqs) = setup(8);
        let mut alg = Oblivious::new(8, 2);
        let report = run(&mut alg, &dm, 10, &reqs, &SimConfig::default());
        let expected: u64 = reqs.iter().map(|r| dm.ell(*r) as u64).sum();
        assert_eq!(report.total.routing_cost, expected);
        assert_eq!(report.total.reconfig_cost, 0);
        assert_eq!(report.total.requests, reqs.len() as u64);
    }

    #[test]
    fn checkpoints_are_cumulative_and_sorted() {
        let (dm, reqs) = setup(8);
        let mut alg = Oblivious::new(8, 2);
        let config = SimConfig {
            checkpoints: vec![100, 300, 200, 100_000],
            ..Default::default()
        };
        let report = run(&mut alg, &dm, 10, &reqs, &config);
        let xs: Vec<u64> = report.checkpoints.iter().map(|c| c.requests).collect();
        assert_eq!(xs, vec![100, 200, 300, reqs.len() as u64]);
        let costs: Vec<u64> = report.checkpoints.iter().map(|c| c.routing_cost).collect();
        assert!(
            costs.windows(2).all(|w| w[0] <= w[1]),
            "cumulative must be monotone"
        );
    }

    #[test]
    fn rbma_cheaper_than_oblivious_on_repetitive_trace() {
        let n = 10;
        let net = builders::leaf_spine(n, 2);
        let dm = Arc::new(DistanceMatrix::between_racks(&net));
        // A few hot pairs requested over and over.
        let reqs: Vec<Pair> = (0..4000u32).map(|i| Pair::new(i % 3, 5 + i % 3)).collect();
        let alpha = 5;
        let mut rbma = Rbma::new(dm.clone(), 3, alpha, RemovalMode::Lazy, 1);
        let r1 = run(&mut rbma, &dm, alpha, &reqs, &SimConfig::default());
        let mut obl = Oblivious::new(n, 3);
        let r2 = run(&mut obl, &dm, alpha, &reqs, &SimConfig::default());
        assert!(
            r1.total.routing_cost < r2.total.routing_cost,
            "R-BMA should beat oblivious on hot pairs: {} vs {}",
            r1.total.routing_cost,
            r2.total.routing_cost
        );
        // Total cost (incl. reconfig) must also win on this easy trace.
        assert!(r1.total.total_cost() < r2.total.total_cost());
    }

    #[test]
    fn reconfig_cost_is_alpha_times_changes() {
        let (dm, reqs) = setup(8);
        let alpha = 7;
        let mut rbma = Rbma::new(dm.clone(), 2, alpha, RemovalMode::Lazy, 2);
        let report = run(&mut rbma, &dm, alpha, &reqs, &SimConfig::default());
        assert_eq!(
            report.total.reconfig_cost,
            alpha * report.total.reconfigurations
        );
    }

    #[test]
    fn verification_hook_runs() {
        let (dm, reqs) = setup(8);
        let mut rbma = Rbma::new(dm.clone(), 2, 4, RemovalMode::Lazy, 3);
        let config = SimConfig {
            verify_every: 50,
            ..Default::default()
        };
        // Passes iff assert_valid never fires.
        let report = run(&mut rbma, &dm, 4, &reqs, &config);
        assert_eq!(report.total.requests, reqs.len() as u64);
    }

    #[test]
    fn evenly_spaced_grid() {
        assert_eq!(SimConfig::evenly_spaced(100, 4), vec![25, 50, 75, 100]);
        assert_eq!(SimConfig::evenly_spaced(10, 1), vec![10]);
    }
}

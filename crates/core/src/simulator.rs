//! Trace-driven simulation with the paper's cost model and checkpointed
//! series (§3.1 methodology).
//!
//! The simulator owns all cost accounting: routing cost is decided by the
//! matching state *at request arrival* (1 if matched, `ℓ_e` otherwise),
//! reconfigurations cost α each. Wall-clock time covers only the serve
//! loop — snapshotting is excluded, and runs are single-threaded, matching
//! "each simulation is run sequentially" in §3.1.
//!
//! Requests arrive through the [`RequestStream`] abstraction: a slice /
//! `Vec` / [`Trace`] replays eagerly, while a `&mut impl RequestSource`
//! streams requests one at a time — the simulator itself holds O(1) state
//! in the stream length, so workloads of tens of millions of requests run
//! at constant memory.

use crate::report::{Checkpoint, RunReport};
use crate::scheduler::OnlineScheduler;
use dcn_topology::{DistanceMatrix, Pair};
use dcn_traces::source::{RequestSource, SourceIter};
use dcn_traces::Trace;
use dcn_util::Stopwatch;

/// Simulation options.
#[derive(Clone, Debug, Default)]
pub struct SimConfig {
    /// Request counts at which to snapshot cumulative series; the trace end
    /// is always snapshotted. Out-of-range entries are ignored.
    pub checkpoints: Vec<usize>,
    /// Verify the matching invariant every this many requests (0 = never;
    /// tests use small values, benches 0).
    pub verify_every: usize,
    /// Seed recorded in the report (provenance only).
    pub seed: u64,
    /// Trace name recorded in the report.
    pub trace_name: String,
}

impl SimConfig {
    /// Evenly spaced checkpoints: up to `count` points up to `total`.
    ///
    /// Degrades gracefully instead of panicking: `count` is clamped to
    /// `1..=total` (a 3-request `--fast` smoke trace asked for 14 points
    /// gets 3), and an empty trace gets an empty grid.
    pub fn evenly_spaced(total: usize, count: usize) -> Vec<usize> {
        if total == 0 {
            return Vec::new();
        }
        let count = count.clamp(1, total);
        (1..=count).map(|i| total * i / count).collect()
    }
}

/// Anything the simulator can consume as a request sequence: an eager slice
/// (`&[Pair]`, `&Vec<Pair>`, `&Trace`) or a lazy `&mut impl RequestSource`
/// stream. The iterator is exact-size so the checkpoint grid can be laid
/// out up front.
pub trait RequestStream {
    /// The concrete request iterator.
    type Iter: ExactSizeIterator<Item = Pair>;

    /// Converts into the request iterator.
    fn into_request_iter(self) -> Self::Iter;
}

impl<'a> RequestStream for &'a [Pair] {
    type Iter = std::iter::Copied<std::slice::Iter<'a, Pair>>;

    fn into_request_iter(self) -> Self::Iter {
        self.iter().copied()
    }
}

impl<'a> RequestStream for &'a Vec<Pair> {
    type Iter = std::iter::Copied<std::slice::Iter<'a, Pair>>;

    fn into_request_iter(self) -> Self::Iter {
        self.iter().copied()
    }
}

impl<'a> RequestStream for &'a Trace {
    type Iter = std::iter::Copied<std::slice::Iter<'a, Pair>>;

    fn into_request_iter(self) -> Self::Iter {
        self.requests.iter().copied()
    }
}

impl<'a, S: RequestSource + ?Sized> RequestStream for &'a mut S {
    type Iter = SourceIter<'a, S>;

    fn into_request_iter(self) -> Self::Iter {
        SourceIter::new(self)
    }
}

/// Runs `scheduler` over `requests`, returning the checkpointed report.
///
/// A streaming source is consumed from its *current* position; call
/// [`RequestSource::reset`] first to replay from the start.
pub fn run<S: OnlineScheduler + ?Sized, R: RequestStream>(
    scheduler: &mut S,
    dm: &DistanceMatrix,
    alpha: u64,
    requests: R,
    config: &SimConfig,
) -> RunReport {
    let requests = requests.into_request_iter();
    let total = requests.len();
    let mut cps: Vec<usize> = config
        .checkpoints
        .iter()
        .copied()
        .filter(|&c| c > 0 && c <= total)
        .collect();
    cps.sort_unstable();
    cps.dedup();
    if cps.last() != Some(&total) && total > 0 {
        cps.push(total);
    }

    let mut state = Checkpoint::default();
    let mut checkpoints = Vec::with_capacity(cps.len());
    let mut next_cp = 0usize;
    let mut sw = Stopwatch::new();

    for (i, pair) in requests.enumerate() {
        sw.start();
        let outcome = scheduler.serve(pair);
        sw.pause();

        state.requests += 1;
        if outcome.was_matched {
            state.matched_requests += 1;
            state.routing_cost += 1;
        } else {
            state.routing_cost += dm.ell(pair) as u64;
        }
        let changes = (outcome.added + outcome.removed) as u64;
        state.reconfigurations += changes;
        state.reconfig_cost += alpha * changes;

        if config.verify_every > 0 && (i + 1) % config.verify_every == 0 {
            scheduler.matching().assert_valid();
        }
        if next_cp < cps.len() && i + 1 == cps[next_cp] {
            state.elapsed_secs = sw.elapsed_secs();
            checkpoints.push(state);
            next_cp += 1;
        }
    }
    state.elapsed_secs = sw.elapsed_secs();

    RunReport {
        algorithm: scheduler.name().to_string(),
        trace: config.trace_name.clone(),
        b: scheduler.cap(),
        alpha,
        seed: config.seed,
        total: state,
        checkpoints,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::oblivious::Oblivious;
    use crate::algorithms::rbma::{Rbma, RemovalMode};
    use dcn_topology::builders;
    use dcn_traces::uniform_source;
    use std::sync::Arc;

    fn setup(n: usize) -> (Arc<DistanceMatrix>, Vec<Pair>) {
        let net = builders::leaf_spine(n, 2); // all distances 2
        let dm = Arc::new(DistanceMatrix::between_racks(&net));
        let reqs: Vec<Pair> = (0..600u32)
            .map(|i| {
                Pair::new(
                    i % n as u32,
                    (i % (n as u32 - 1) + 1 + i % n as u32) % n as u32,
                )
            })
            .filter(|p| p.lo() != p.hi())
            .collect();
        (dm, reqs)
    }

    #[test]
    fn oblivious_cost_is_sum_of_distances() {
        let (dm, reqs) = setup(8);
        let mut alg = Oblivious::new(8, 2);
        let report = run(&mut alg, &dm, 10, &reqs, &SimConfig::default());
        let expected: u64 = reqs.iter().map(|r| dm.ell(*r) as u64).sum();
        assert_eq!(report.total.routing_cost, expected);
        assert_eq!(report.total.reconfig_cost, 0);
        assert_eq!(report.total.requests, reqs.len() as u64);
    }

    #[test]
    fn checkpoints_are_cumulative_and_sorted() {
        let (dm, reqs) = setup(8);
        let mut alg = Oblivious::new(8, 2);
        let config = SimConfig {
            checkpoints: vec![100, 300, 200, 100_000],
            ..Default::default()
        };
        let report = run(&mut alg, &dm, 10, &reqs, &config);
        let xs: Vec<u64> = report.checkpoints.iter().map(|c| c.requests).collect();
        assert_eq!(xs, vec![100, 200, 300, reqs.len() as u64]);
        let costs: Vec<u64> = report.checkpoints.iter().map(|c| c.routing_cost).collect();
        assert!(
            costs.windows(2).all(|w| w[0] <= w[1]),
            "cumulative must be monotone"
        );
    }

    #[test]
    fn rbma_cheaper_than_oblivious_on_repetitive_trace() {
        let n = 10;
        let net = builders::leaf_spine(n, 2);
        let dm = Arc::new(DistanceMatrix::between_racks(&net));
        // A few hot pairs requested over and over.
        let reqs: Vec<Pair> = (0..4000u32).map(|i| Pair::new(i % 3, 5 + i % 3)).collect();
        let alpha = 5;
        let mut rbma = Rbma::new(dm.clone(), 3, alpha, RemovalMode::Lazy, 1);
        let r1 = run(&mut rbma, &dm, alpha, &reqs, &SimConfig::default());
        let mut obl = Oblivious::new(n, 3);
        let r2 = run(&mut obl, &dm, alpha, &reqs, &SimConfig::default());
        assert!(
            r1.total.routing_cost < r2.total.routing_cost,
            "R-BMA should beat oblivious on hot pairs: {} vs {}",
            r1.total.routing_cost,
            r2.total.routing_cost
        );
        // Total cost (incl. reconfig) must also win on this easy trace.
        assert!(r1.total.total_cost() < r2.total.total_cost());
    }

    #[test]
    fn reconfig_cost_is_alpha_times_changes() {
        let (dm, reqs) = setup(8);
        let alpha = 7;
        let mut rbma = Rbma::new(dm.clone(), 2, alpha, RemovalMode::Lazy, 2);
        let report = run(&mut rbma, &dm, alpha, &reqs, &SimConfig::default());
        assert_eq!(
            report.total.reconfig_cost,
            alpha * report.total.reconfigurations
        );
    }

    #[test]
    fn verification_hook_runs() {
        let (dm, reqs) = setup(8);
        let mut rbma = Rbma::new(dm.clone(), 2, 4, RemovalMode::Lazy, 3);
        let config = SimConfig {
            verify_every: 50,
            ..Default::default()
        };
        // Passes iff assert_valid never fires.
        let report = run(&mut rbma, &dm, 4, &reqs, &config);
        assert_eq!(report.total.requests, reqs.len() as u64);
    }

    #[test]
    fn streamed_run_equals_materialized_run() {
        let net = builders::leaf_spine(12, 2);
        let dm = Arc::new(DistanceMatrix::between_racks(&net));
        let mut source = uniform_source(12, 5000, 9);
        let trace = source.materialize();
        let config = SimConfig {
            checkpoints: vec![1000, 2500],
            ..Default::default()
        };

        let mut a = Rbma::new(dm.clone(), 3, 10, RemovalMode::Lazy, 4);
        let eager = run(&mut a, &dm, 10, &trace.requests, &config);
        let mut b = Rbma::new(dm.clone(), 3, 10, RemovalMode::Lazy, 4);
        let streamed = run(&mut b, &dm, 10, &mut source, &config);

        assert_eq!(eager.total.routing_cost, streamed.total.routing_cost);
        assert_eq!(
            eager.total.reconfigurations,
            streamed.total.reconfigurations
        );
        assert_eq!(eager.checkpoints.len(), streamed.checkpoints.len());
        for (x, y) in eager.checkpoints.iter().zip(&streamed.checkpoints) {
            assert_eq!(x.requests, y.requests);
            assert_eq!(x.routing_cost, y.routing_cost);
        }
    }

    #[test]
    fn streamed_run_consumes_from_current_position() {
        let net = builders::leaf_spine(8, 2);
        let dm = Arc::new(DistanceMatrix::between_racks(&net));
        let mut source = uniform_source(8, 100, 2);
        source.next_request();
        let mut alg = Oblivious::new(8, 2);
        let report = run(&mut alg, &dm, 10, &mut source, &SimConfig::default());
        assert_eq!(report.total.requests, 99);
        source.reset();
        let mut alg2 = Oblivious::new(8, 2);
        let full = run(&mut alg2, &dm, 10, &mut source, &SimConfig::default());
        assert_eq!(full.total.requests, 100);
    }

    #[test]
    fn evenly_spaced_grid() {
        assert_eq!(SimConfig::evenly_spaced(100, 4), vec![25, 50, 75, 100]);
        assert_eq!(SimConfig::evenly_spaced(10, 1), vec![10]);
    }

    #[test]
    fn evenly_spaced_clamps_gracefully() {
        // count > total: one checkpoint per request instead of a panic.
        assert_eq!(SimConfig::evenly_spaced(3, 14), vec![1, 2, 3]);
        assert_eq!(SimConfig::evenly_spaced(1, 8), vec![1]);
        // count = 0 still yields the trace end; empty traces yield nothing.
        assert_eq!(SimConfig::evenly_spaced(5, 0), vec![5]);
        assert_eq!(SimConfig::evenly_spaced(0, 4), Vec::<usize>::new());
    }
}

//! The contract between online algorithms and the simulator.
//!
//! The simulator owns all cost accounting; schedulers own the matching and
//! report what they changed. This split keeps the cost model in one place
//! (and lets tests cross-check the reported mutations against the actual
//! matching state).

use dcn_matching::BMatching;
use dcn_topology::Pair;

/// What happened while serving one request.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeOutcome {
    /// Whether the requested pair was a matching edge *when the request
    /// arrived* (determines routing cost: 1 vs `ℓ_e`). Reconfigurations
    /// triggered by the request take effect after it is served (§1.1).
    pub was_matched: bool,
    /// Number of edges the scheduler added to the matching.
    pub added: u32,
    /// Number of edges the scheduler removed from the matching.
    pub removed: u32,
}

/// An online algorithm maintaining a dynamic b-matching.
pub trait OnlineScheduler {
    /// Short machine-readable name for reports (e.g. `"R-BMA"`).
    fn name(&self) -> &str;

    /// The degree bound `b`.
    fn cap(&self) -> usize;

    /// Serves one request and applies any reconfigurations.
    fn serve(&mut self, pair: Pair) -> ServeOutcome;

    /// Read access to the current matching (for verification and analysis).
    fn matching(&self) -> &BMatching;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_default() {
        let o = ServeOutcome::default();
        assert!(!o.was_matched);
        assert_eq!(o.added + o.removed, 0);
    }
}

//! The contract between online algorithms and the simulator.
//!
//! The simulator owns the cost *model*; schedulers own the matching and
//! report what they changed. Requests reach a scheduler in **batches**: the
//! simulator cuts the stream into chunks (aligned to checkpoint and
//! verification boundaries) and makes one
//! [`serve_batch`](OnlineScheduler::serve_batch) call per chunk, which
//! accumulates the chunk's cost components into a [`BatchOutcome`].
//!
//! There are three batch entry points, all required to produce identical
//! accounting:
//!
//! * [`serve_batch_unsorted`](OnlineScheduler::serve_batch_unsorted) — the
//!   straight per-request pass. The default loops
//!   [`serve`](OnlineScheduler::serve) (statically dispatched inside the
//!   implementor, so even the default removes the per-request virtual
//!   call); the hot algorithms override it with a fused loop.
//! * [`serve_batch`](OnlineScheduler::serve_batch) — the preferred path.
//!   Schedulers with pair-bucketed overrides (R-BMA, BMA, Oblivious,
//!   Rotor) preprocess the chunk through [`crate::batch::PairBuckets`] and
//!   amortize per-pair reads over runs of identical pairs; everyone else
//!   inherits the default, which simply delegates to the unsorted pass.
//! * [`serve_batch_sharded`](OnlineScheduler::serve_batch_sharded) — same
//!   as `serve_batch` but shards the bucketing scan across an
//!   [`IntraPool`](crate::parallel::IntraPool); the default ignores the
//!   pool and delegates to `serve_batch`.
//!
//! Accounting is part of the contract: however a scheduler batches, the
//! accumulated [`BatchOutcome`] must equal what per-request serving plus
//! [`BatchOutcome::record`] would produce — batched and unbatched runs are
//! required to yield identical reports (pinned by simulator tests).

use dcn_matching::BMatching;
use dcn_topology::{DistanceMatrix, Pair};

/// What happened while serving one request.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeOutcome {
    /// Whether the requested pair was a matching edge *when the request
    /// arrived* (determines routing cost: 1 vs `ℓ_e`). Reconfigurations
    /// triggered by the request take effect after it is served (§1.1).
    pub was_matched: bool,
    /// Number of edges the scheduler added to the matching.
    pub added: u32,
    /// Number of edges the scheduler removed from the matching.
    pub removed: u32,
}

/// Accumulated cost components of a served batch (the per-chunk unit the
/// simulator folds into its cumulative [`Checkpoint`](crate::Checkpoint)
/// state).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchOutcome {
    /// Requests that arrived on a matching edge (each contributed routing
    /// cost 1).
    pub matched: u64,
    /// Total routing cost of the batch (1 per matched request, `ℓ_e`
    /// otherwise).
    pub routing_cost: u64,
    /// Matching-edge insertions performed while serving the batch.
    pub added: u64,
    /// Matching-edge removals performed while serving the batch.
    pub removed: u64,
}

impl BatchOutcome {
    /// Folds one request's [`ServeOutcome`] into the accumulator — the
    /// single definition of per-request cost accounting, shared by the
    /// default loop and the simulator's contract tests.
    #[inline]
    pub fn record(&mut self, pair: Pair, outcome: ServeOutcome, dm: &DistanceMatrix) {
        self.matched += outcome.was_matched as u64;
        self.routing_cost += if outcome.was_matched {
            1
        } else {
            dm.ell(pair) as u64
        };
        self.added += outcome.added as u64;
        self.removed += outcome.removed as u64;
    }

    /// Insertions + removals (each costs α).
    #[inline]
    pub fn reconfigurations(&self) -> u64 {
        self.added + self.removed
    }
}

/// An online algorithm maintaining a dynamic b-matching.
pub trait OnlineScheduler {
    /// Short machine-readable name for reports (e.g. `"R-BMA"`).
    fn name(&self) -> &str;

    /// The degree bound `b`.
    fn cap(&self) -> usize;

    /// Serves one request and applies any reconfigurations.
    fn serve(&mut self, pair: Pair) -> ServeOutcome;

    /// Serves a batch one request at a time, with no preprocessing.
    ///
    /// Must be behaviorally identical to serving the batch one request at a
    /// time through [`serve`](Self::serve) and folding each outcome with
    /// [`BatchOutcome::record`] — the default does exactly that. `dm` is
    /// the distance matrix the *simulator* accounts routing cost with
    /// (schedulers keep using their own for decisions).
    fn serve_batch_unsorted(
        &mut self,
        batch: &[Pair],
        dm: &DistanceMatrix,
        acc: &mut BatchOutcome,
    ) {
        for &pair in batch {
            let outcome = self.serve(pair);
            acc.record(pair, outcome, dm);
        }
    }

    /// Serves a batch of requests, accumulating cost components into `acc`.
    ///
    /// The preferred entry point: implementors may preprocess the chunk
    /// (e.g. bucket it by rack pair, [`crate::batch::PairBuckets`]) — or
    /// pick a different internal pass per chunk, as R-BMA's specials-share
    /// density dispatch does — as long as the accumulated outcome stays
    /// identical to
    /// [`serve_batch_unsorted`](Self::serve_batch_unsorted) — byte-identical
    /// reports across the two paths are pinned by simulator tests.
    fn serve_batch(&mut self, batch: &[Pair], dm: &DistanceMatrix, acc: &mut BatchOutcome) {
        self.serve_batch_unsorted(batch, dm, acc);
    }

    /// Like [`serve_batch`](Self::serve_batch), but may shard its
    /// preprocessing scan across `pool`'s workers. All state mutation must
    /// stay on the calling thread in request order, so the outcome is
    /// byte-identical at any pool width. The default ignores the pool.
    fn serve_batch_sharded(
        &mut self,
        batch: &[Pair],
        dm: &DistanceMatrix,
        _pool: &crate::parallel::IntraPool,
        acc: &mut BatchOutcome,
    ) {
        self.serve_batch(batch, dm, acc);
    }

    /// Read access to the current matching (for verification and analysis).
    fn matching(&self) -> &BMatching;

    /// Drains the scheduler's local telemetry recorders into `sink` (called
    /// once by the simulator at end of run — never on the serve path). The
    /// default reports nothing.
    fn telemetry_flush(&mut self, _sink: &dcn_telemetry::Telemetry) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_default() {
        let o = ServeOutcome::default();
        assert!(!o.was_matched);
        assert_eq!(o.added + o.removed, 0);
    }

    #[test]
    fn record_accounts_matched_and_unmatched() {
        let dm = DistanceMatrix::uniform(4);
        let mut acc = BatchOutcome::default();
        acc.record(
            Pair::new(0, 1),
            ServeOutcome {
                was_matched: true,
                added: 0,
                removed: 0,
            },
            &dm,
        );
        acc.record(
            Pair::new(1, 2),
            ServeOutcome {
                was_matched: false,
                added: 1,
                removed: 2,
            },
            &dm,
        );
        assert_eq!(acc.matched, 1);
        assert_eq!(acc.routing_cost, 1 + 1, "1 (matched) + ℓ=1 (uniform)");
        assert_eq!(acc.reconfigurations(), 3);
    }
}

//! Deterministic parallel fan-out of simulation runs — a **work-stealing
//! executor** over the job grid, plus deterministic **sharding** for
//! multi-host splits.
//!
//! Cost figures need (algorithm × b × trace-seed × algo-seed) grids of
//! runs; each run is single-threaded (per the paper's methodology) but runs
//! are independent. Workers claim jobs dynamically from a shared atomic
//! cursor — the next idle worker takes the next undone job — so skewed job
//! costs (a 10⁷-request run next to 10⁵-request runs, exactly the shape of
//! the scaling/robustness grids) never leave cores idle behind a static
//! split. Each worker writes its result into that job's preallocated slot,
//! so the output order is job order and byte-identical to
//! [`run_jobs_sequential`] no matter how the OS schedules the workers
//! (every job's RNG streams are pure functions of its own seeds).
//!
//! `threads = 0` means **auto** (one worker per available core); any other
//! value is taken literally. This is the convention every `repro_figures
//! --threads N` target surfaces.
//!
//! A [`ShardSpec`] deterministically partitions any grid for multi-host
//! runs: shard `i/m` owns exactly the jobs (or table rows) whose index is
//! `≡ i (mod m)` — round-robin, so skewed grids split evenly — and the
//! union of all `m` slices is the unsharded grid, in job order
//! ([`run_jobs_sharded`] returns original indices alongside reports, and
//! `repro_figures --merge-json` reassembles shard artifacts byte-for-byte).
//!
//! Every [`Job`] carries a [`TraceSpec`] — a *description* of its workload
//! (generator + parameters + trace seed) — and each worker synthesizes its
//! own request stream in-place. Online-only job grids therefore never
//! allocate a `Vec` of the full trace (peak resident trace memory is O(1)
//! in the request count), there is no shared-trace `Arc` to contend on, and
//! (trace-seed × algo-seed) grids are just more jobs. Only algorithms that
//! declare [`AlgorithmKind::needs_materialized_trace`] (the prediction
//! oracle) materialize their trace, privately and transiently.
//!
//! Execution-*time* figures must not share cores; use `threads = 1` (or
//! [`run_jobs_sequential`]) for those, as the figure harness does.

use crate::algorithms::AlgorithmKind;
use crate::cancel::CancelToken;
use crate::report::RunReport;
use crate::simulator::{run, SimConfig};
use dcn_telemetry::{Histogram, Telemetry};
use dcn_topology::DistanceMatrix;
use dcn_traces::TraceSpec;
use parking_lot::Mutex;
use serde::Serialize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One simulation job: an algorithm configuration plus the workload it runs
/// on.
#[derive(Clone, Debug)]
pub struct Job {
    /// Algorithm to instantiate.
    pub algorithm: AlgorithmKind,
    /// Degree bound b.
    pub b: usize,
    /// Reconfiguration cost α.
    pub alpha: u64,
    /// RNG seed for the algorithm.
    pub seed: u64,
    /// Checkpoint grid (request counts).
    pub checkpoints: Vec<usize>,
    /// Workload description; the worker synthesizes the stream in-place.
    pub trace: TraceSpec,
}

/// A deterministic `index`-of-`count` partition of a job grid (or any other
/// indexed work list): shard `i/m` owns the indices `≡ i (mod m)`.
/// Round-robin assignment keeps skewed grids (where cost grows with index,
/// as in the scaling sweeps) balanced across hosts, and the union of all
/// `m` shards is exactly the full grid, each index owned once.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardSpec {
    index: usize,
    count: usize,
}

impl Default for ShardSpec {
    fn default() -> Self {
        Self::full()
    }
}

impl ShardSpec {
    /// The trivial partition: one shard owning everything.
    pub fn full() -> Self {
        Self { index: 0, count: 1 }
    }

    /// Shard `index` of `count`; panics unless `index < count`.
    pub fn new(index: usize, count: usize) -> Self {
        assert!(
            index < count,
            "shard index {index} out of range for {count} shard(s)"
        );
        Self { index, count }
    }

    /// Parses the CLI form `"i/m"` (e.g. `"0/2"`, `"1/2"`).
    pub fn parse(s: &str) -> Result<Self, String> {
        let (i, m) = s
            .split_once('/')
            .ok_or_else(|| format!("shard spec {s:?} is not of the form i/m"))?;
        let index: usize = i
            .trim()
            .parse()
            .map_err(|_| format!("shard index {i:?} is not a number"))?;
        let count: usize = m
            .trim()
            .parse()
            .map_err(|_| format!("shard count {m:?} is not a number"))?;
        if count == 0 {
            return Err("shard count must be at least 1".into());
        }
        if index >= count {
            return Err(format!(
                "shard index {index} out of range for {count} shard(s)"
            ));
        }
        Ok(Self { index, count })
    }

    /// This shard's position.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Total number of shards.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Whether this is the trivial single-shard partition.
    pub fn is_full(&self) -> bool {
        self.count == 1
    }

    /// Whether this shard owns work item `i`.
    #[inline]
    pub fn owns(&self, i: usize) -> bool {
        i % self.count == self.index
    }

    /// The indices this shard owns out of `0..n`, ascending.
    pub fn owned_indices(&self, n: usize) -> impl Iterator<Item = usize> + '_ {
        (self.index..n).step_by(self.count)
    }
}

impl std::fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

/// Resolves the `threads` knob: `0` = auto (one worker per available
/// core), anything else is taken literally.
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    } else {
        threads
    }
}

/// Runs all jobs using `threads` workers (`0` = auto); results are in job
/// order, identical to [`run_jobs_sequential`].
pub fn run_jobs(dm: &Arc<DistanceMatrix>, jobs: &[Job], threads: usize) -> Vec<RunReport> {
    let indices: Vec<usize> = (0..jobs.len()).collect();
    execute_indices(dm, jobs, &indices, threads)
}

/// Runs the subset of `jobs` owned by `shard` using `threads` workers
/// (`0` = auto). Returns `(original job index, report)` pairs in job order,
/// so the union of all shards' outputs — interleaved by index — is exactly
/// the unsharded [`run_jobs`] result.
pub fn run_jobs_sharded(
    dm: &Arc<DistanceMatrix>,
    jobs: &[Job],
    threads: usize,
    shard: ShardSpec,
) -> Vec<(usize, RunReport)> {
    let indices: Vec<usize> = shard.owned_indices(jobs.len()).collect();
    let reports = execute_indices(dm, jobs, &indices, threads);
    indices.into_iter().zip(reports).collect()
}

/// The work-stealing primitive under [`run_jobs`] (and any other
/// independent-row fan-out, e.g. the lower-bound ablation's per-`b` rows):
/// computes `f(k)` for every `k in 0..n` using up to `threads` workers
/// (`0` = auto) that claim indices from a shared atomic cursor — the next
/// idle worker takes the next undone index, so skewed per-index costs
/// cannot strand work behind a static split — and writes each result into
/// its preallocated slot. `result[k] == f(k)`, in index order, for every
/// thread count.
pub fn steal_map<T: Send>(n: usize, threads: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
    // One global-handle read per fan-out, never per job. With telemetry
    // enabled the instrumented twin runs instead; the path below is the
    // byte-for-byte historical executor.
    let telemetry = dcn_telemetry::global();
    if telemetry.is_enabled() {
        return steal_map_instrumented(n, threads, f, &telemetry);
    }
    let threads = resolve_threads(threads).min(n);
    if threads <= 1 {
        return (0..n)
            .map(|k| {
                // The claim site sits *outside* any per-job supervision:
                // a failpoint panic here kills the whole fan-out, which is
                // exactly the "process died mid-sweep" scenario the
                // journal-resume tests and the CI chaos step simulate.
                dcn_util::failpoint::hit("sweep.job_claim");
                f(k)
            })
            .collect();
    }
    let cursor = AtomicUsize::new(0);
    // One slot per index: workers lock only their own claimed slot, so
    // there is no contention and no post-hoc sort.
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let cursor = &cursor;
            let slots = &slots;
            let f = &f;
            scope.spawn(move || loop {
                let k = cursor.fetch_add(1, Ordering::Relaxed);
                if k >= n {
                    break;
                }
                dcn_util::failpoint::hit("sweep.job_claim");
                *slots[k].lock() = Some(f(k));
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("all claimed indices completed"))
        .collect()
}

/// [`steal_map`] with per-worker accounting: each worker keeps local
/// recorders (jobs claimed, steals, busy/idle nanoseconds, a job wall-clock
/// histogram) and flushes them into `sink` once, when its claim loop ends.
/// A claim of index `k` by worker `w` counts as a **steal** when
/// `k % threads != w`, i.e. the dynamic cursor deviated from the static
/// round-robin split — the signal that load balancing actually moved work.
/// Results are identical to the uninstrumented path (same claim protocol).
fn steal_map_instrumented<T: Send>(
    n: usize,
    threads: usize,
    f: impl Fn(usize) -> T + Sync,
    sink: &Telemetry,
) -> Vec<T> {
    let threads = resolve_threads(threads).min(n);
    sink.add_counter("sweep.jobs", n as u64);
    if threads <= 1 {
        // Sequential fan-out: still attributed, as worker 0 with no steals.
        let mut busy = 0u64;
        let mut job_ns = Histogram::default();
        let t_start = Instant::now();
        let out = (0..n)
            .map(|k| {
                dcn_util::failpoint::hit("sweep.job_claim");
                let t0 = Instant::now();
                let r = f(k);
                let ns = t0.elapsed().as_nanos() as u64;
                busy += ns;
                job_ns.record(ns);
                r
            })
            .collect();
        let wall = t_start.elapsed().as_nanos() as u64;
        sink.add_counter("sweep.worker.0.jobs", n as u64);
        sink.add_counter("sweep.worker.0.busy_ns", busy);
        sink.add_counter("sweep.worker.0.idle_ns", wall.saturating_sub(busy));
        sink.merge_histogram("sweep.job_ns", &job_ns);
        return out;
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for w in 0..threads {
            let cursor = &cursor;
            let slots = &slots;
            let f = &f;
            scope.spawn(move || {
                let mut jobs = 0u64;
                let mut steals = 0u64;
                let mut busy = 0u64;
                let mut job_ns = Histogram::default();
                let t_start = Instant::now();
                loop {
                    let k = cursor.fetch_add(1, Ordering::Relaxed);
                    if k >= n {
                        break;
                    }
                    dcn_util::failpoint::hit("sweep.job_claim");
                    let t0 = Instant::now();
                    let r = f(k);
                    let ns = t0.elapsed().as_nanos() as u64;
                    *slots[k].lock() = Some(r);
                    jobs += 1;
                    busy += ns;
                    job_ns.record(ns);
                    steals += (k % threads != w) as u64;
                }
                let wall = t_start.elapsed().as_nanos() as u64;
                sink.add_counter(&format!("sweep.worker.{w}.jobs"), jobs);
                sink.add_counter(&format!("sweep.worker.{w}.steals"), steals);
                sink.add_counter(&format!("sweep.worker.{w}.busy_ns"), busy);
                sink.add_counter(
                    &format!("sweep.worker.{w}.idle_ns"),
                    wall.saturating_sub(busy),
                );
                sink.merge_histogram("sweep.job_ns", &job_ns);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("all claimed indices completed"))
        .collect()
}

/// Job-grid adapter over [`steal_map`]: `result[k]` is the report of
/// `jobs[indices[k]]`.
fn execute_indices(
    dm: &Arc<DistanceMatrix>,
    jobs: &[Job],
    indices: &[usize],
    threads: usize,
) -> Vec<RunReport> {
    steal_map(indices.len(), threads, |k| execute(dm, &jobs[indices[k]]))
}

/// Single-threaded variant (for wall-clock fidelity).
pub fn run_jobs_sequential(dm: &Arc<DistanceMatrix>, jobs: &[Job]) -> Vec<RunReport> {
    jobs.iter().map(|j| execute(dm, j)).collect()
}

fn execute(dm: &Arc<DistanceMatrix>, job: &Job) -> RunReport {
    execute_with_cancel(dm, job, &CancelToken::none())
}

fn execute_with_cancel(dm: &Arc<DistanceMatrix>, job: &Job, cancel: &CancelToken) -> RunReport {
    dcn_util::failpoint::hit("sweep.job_eval");
    let mut config = SimConfig {
        checkpoints: job.checkpoints.clone(),
        seed: job.seed,
        cancel: cancel.clone(),
        ..SimConfig::default()
    };
    let mut report = if job.algorithm.needs_materialized_trace() {
        // Offline knowledge required: materialize this job's trace privately
        // (borrowed, not cloned, when the spec already wraps one).
        let trace = job.trace.as_trace();
        config.trace_name = trace.name.clone();
        let mut scheduler = job.algorithm.build_with_trace(
            Arc::clone(dm),
            job.b,
            job.alpha,
            job.seed,
            &trace.requests,
        );
        run(scheduler.as_mut(), dm, job.alpha, &trace.requests, &config)
    } else {
        // Online path: stream the workload, O(1) memory in its length.
        let mut source = job.trace.source();
        config.trace_name = source.name().to_string();
        let mut scheduler = job
            .algorithm
            .build_online(Arc::clone(dm), job.b, job.alpha, job.seed);
        run(scheduler.as_mut(), dm, job.alpha, source.as_mut(), &config)
    };
    report.algorithm = job.algorithm.label();
    report
}

/// Supervision policy for [`run_jobs_supervised`].
#[derive(Clone, Debug)]
pub struct Supervisor {
    /// Journal key namespace, conventionally the `repro_figures` target
    /// name (`"demand"`). Keys must be stable across runs for `--resume`
    /// to match completed jobs.
    pub scope: String,
    /// Extra attempts after the first failed one (so a job executes at
    /// most `retries + 1` times).
    pub retries: u32,
    /// Backoff before retry `k` (1-based): `backoff_base << (k-1)` —
    /// deterministic, so injected-failure schedules replay identically.
    pub backoff_base: Duration,
    /// Per-attempt wall-clock budget, observed cooperatively at simulator
    /// chunk boundaries. `None` = no deadline.
    pub deadline: Option<Duration>,
}

impl Default for Supervisor {
    fn default() -> Self {
        Self {
            scope: String::new(),
            retries: 2,
            backoff_base: Duration::from_millis(10),
            deadline: None,
        }
    }
}

impl Supervisor {
    /// A supervisor namespaced under `scope` with the default policy.
    pub fn scoped(scope: impl Into<String>) -> Self {
        Self {
            scope: scope.into(),
            ..Default::default()
        }
    }

    /// A copy with the given retry budget.
    pub fn with_retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }

    /// A copy with the given backoff base (use `Duration::ZERO` in tests).
    pub fn with_backoff(mut self, backoff_base: Duration) -> Self {
        self.backoff_base = backoff_base;
        self
    }

    /// A copy with a per-attempt deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// Structured record of a job that exhausted its retry budget.
#[derive(Clone, Debug, Serialize)]
pub struct JobFailure {
    /// Index of the job in the submitted grid.
    pub index: usize,
    /// The job's journal key (scope + index + configuration fingerprint).
    pub key: String,
    /// `"panic"` or `"deadline"`.
    pub reason: String,
    /// Panic payload of the last attempt, or the deadline description.
    pub detail: String,
    /// Attempts made (`retries + 1` when quarantined).
    pub attempts: u32,
    /// Wall-clock seconds from first attempt to quarantine.
    pub elapsed_secs: f64,
}

/// Outcome of one supervised job: a report, or a quarantine record.
#[derive(Clone, Debug)]
pub enum JobOutcome {
    /// The job produced a report (possibly replayed from the journal).
    Completed(RunReport),
    /// The job exhausted its retry budget and was quarantined.
    Quarantined(JobFailure),
}

impl JobOutcome {
    /// The report, if the job completed.
    pub fn report(&self) -> Option<&RunReport> {
        match self {
            JobOutcome::Completed(r) => Some(r),
            JobOutcome::Quarantined(_) => None,
        }
    }

    /// The failure record, if the job was quarantined.
    pub fn failure(&self) -> Option<&JobFailure> {
        match self {
            JobOutcome::Completed(_) => None,
            JobOutcome::Quarantined(f) => Some(f),
        }
    }
}

/// The deterministic journal key for job `index` of a supervised grid:
/// scope, grid position, and the job's configuration fingerprint. A
/// resumed run rebuilds the same grid and therefore the same keys; a
/// *changed* grid changes the fingerprint, so stale journal entries can
/// never masquerade as the new grid's results.
pub fn job_key(scope: &str, index: usize, job: &Job) -> String {
    format!(
        "{scope}#{index}:{}/b={}/alpha={}/seed={}/{}",
        job.algorithm.label(),
        job.b,
        job.alpha,
        job.seed,
        job.trace.name()
    )
}

/// [`run_jobs`] with fault tolerance: each job runs under `catch_unwind`
/// with `supervisor`'s retry budget, deterministic exponential backoff and
/// optional per-attempt deadline. Jobs that exhaust the budget are
/// returned as [`JobOutcome::Quarantined`] instead of unwinding the sweep.
///
/// When a process-global journal is installed ([`crate::journal::install`])
/// completed jobs are recorded as they finish and already-recorded jobs
/// are replayed without executing — the `--resume` half of the
/// kill-and-resume contract. Outcomes are in job order for every thread
/// count, and a failure-free supervised sweep produces exactly the
/// [`run_jobs`] reports.
pub fn run_jobs_supervised(
    dm: &Arc<DistanceMatrix>,
    jobs: &[Job],
    threads: usize,
    supervisor: &Supervisor,
) -> Vec<JobOutcome> {
    // One global-handle read and one journal lookup per fan-out, shared by
    // every worker closure invocation.
    let telemetry = dcn_telemetry::global();
    let journal = crate::journal::installed();
    steal_map(jobs.len(), threads, |index| {
        execute_supervised(
            dm,
            &jobs[index],
            index,
            supervisor,
            &telemetry,
            journal.as_deref(),
        )
    })
}

fn execute_supervised(
    dm: &Arc<DistanceMatrix>,
    job: &Job,
    index: usize,
    supervisor: &Supervisor,
    telemetry: &Telemetry,
    journal: Option<&crate::journal::RunJournal>,
) -> JobOutcome {
    let key = job_key(&supervisor.scope, index, job);
    if let Some(journal) = journal {
        if let Some(report) = journal.lookup(&key) {
            return JobOutcome::Completed(report);
        }
    }
    let telem_on = telemetry.is_enabled();
    let t0 = Instant::now();
    let mut attempts = 0u32;
    loop {
        attempts += 1;
        let cancel = supervisor
            .deadline
            .map(CancelToken::with_deadline)
            .unwrap_or_default();
        // AssertUnwindSafe: on Err every captured structure (scheduler,
        // stream, accumulators) is dropped with the unwound attempt; the
        // retry rebuilds all job state from the job description alone.
        let attempt = catch_unwind(AssertUnwindSafe(|| execute_with_cancel(dm, job, &cancel)));
        let (reason, detail) = match attempt {
            Ok(report) if !cancel.is_cancelled() => {
                if let Some(journal) = journal {
                    journal.record(&key, &report);
                }
                return JobOutcome::Completed(report);
            }
            Ok(_) => {
                if telem_on {
                    telemetry.add_counter("sweep.deadline_hits", 1);
                }
                (
                    "deadline",
                    format!(
                        "exceeded per-attempt deadline of {:.3}s",
                        supervisor.deadline.unwrap_or_default().as_secs_f64()
                    ),
                )
            }
            Err(payload) => {
                if telem_on {
                    telemetry.add_counter("sweep.panics_caught", 1);
                }
                ("panic", panic_message(payload.as_ref()))
            }
        };
        if attempts > supervisor.retries {
            if telem_on {
                telemetry.add_counter("sweep.quarantined", 1);
            }
            return JobOutcome::Quarantined(JobFailure {
                index,
                key,
                reason: reason.to_string(),
                detail,
                attempts,
                elapsed_secs: t0.elapsed().as_secs_f64(),
            });
        }
        // Deterministic exponential backoff: base << (retry# - 1).
        let backoff = supervisor.backoff_base * (1u32 << (attempts - 1).min(16));
        if telem_on {
            telemetry.add_counter("sweep.retries", 1);
            telemetry.observe("sweep.retry_backoff_ns", backoff.as_nanos() as u64);
        }
        if !backoff.is_zero() {
            std::thread::sleep(backoff);
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_topology::builders;
    use dcn_traces::uniform_trace;

    fn setup() -> Arc<DistanceMatrix> {
        let net = builders::leaf_spine(10, 2);
        Arc::new(DistanceMatrix::between_racks(&net))
    }

    fn spec() -> TraceSpec {
        TraceSpec::Uniform {
            num_racks: 10,
            len: 3000,
            seed: 5,
        }
    }

    fn jobs() -> Vec<Job> {
        let mut jobs = Vec::new();
        for b in [2usize, 4] {
            for seed in 0..3u64 {
                jobs.push(Job {
                    algorithm: AlgorithmKind::Rbma { lazy: true },
                    b,
                    alpha: 5,
                    seed,
                    checkpoints: vec![1000, 2000, 3000],
                    trace: spec(),
                });
            }
        }
        jobs.push(Job {
            algorithm: AlgorithmKind::Oblivious,
            b: 2,
            alpha: 5,
            seed: 0,
            checkpoints: vec![1000, 2000, 3000],
            trace: spec(),
        });
        jobs
    }

    #[test]
    fn parallel_equals_sequential() {
        let dm = setup();
        let js = jobs();
        let seq = run_jobs_sequential(&dm, &js);
        let par = run_jobs(&dm, &js, 4);
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.algorithm, b.algorithm);
            assert_eq!(a.b, b.b);
            assert_eq!(a.seed, b.seed);
            // Costs are deterministic given the seed; only wall-clock differs.
            assert_eq!(a.total.routing_cost, b.total.routing_cost);
            assert_eq!(a.total.reconfigurations, b.total.reconfigurations);
        }
    }

    #[test]
    fn trace_seed_grid_is_deterministic_and_distinct() {
        // (trace-seed × algo-seed) grid: same algorithm, two trace seeds.
        let dm = setup();
        let js: Vec<Job> = (0..2u64)
            .flat_map(|trace_seed| {
                (0..2u64).map(move |seed| Job {
                    algorithm: AlgorithmKind::Rbma { lazy: true },
                    b: 3,
                    alpha: 5,
                    seed,
                    checkpoints: vec![],
                    trace: spec().with_seed(trace_seed),
                })
            })
            .collect();
        let seq = run_jobs_sequential(&dm, &js);
        let par = run_jobs(&dm, &js, 3);
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.total.routing_cost, b.total.routing_cost);
        }
        // Different trace seeds must actually change the workload.
        assert_ne!(seq[0].total.routing_cost, seq[2].total.routing_cost);
    }

    #[test]
    fn streamed_jobs_match_materialized_jobs() {
        // The streamed path must be cost-identical to replaying the
        // materialized trace the spec describes.
        let dm = setup();
        let trace = spec().as_trace().into_owned();
        let streamed = jobs();
        let materialized: Vec<Job> = streamed
            .iter()
            .map(|j| Job {
                trace: TraceSpec::materialized(trace.clone()),
                ..j.clone()
            })
            .collect();
        let a = run_jobs_sequential(&dm, &streamed);
        let b = run_jobs_sequential(&dm, &materialized);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.total.routing_cost, y.total.routing_cost);
            assert_eq!(x.total.reconfigurations, y.total.reconfigurations);
            assert_eq!(x.trace, y.trace, "trace provenance must agree");
        }
    }

    #[test]
    fn predictive_jobs_materialize_transparently() {
        let dm = setup();
        let job = Job {
            algorithm: AlgorithmKind::PredictiveRbma { noise: 0.0 },
            b: 2,
            alpha: 5,
            seed: 1,
            checkpoints: vec![],
            trace: spec(),
        };
        let a = run_jobs_sequential(&dm, std::slice::from_ref(&job));
        let b = run_jobs_sequential(&dm, std::slice::from_ref(&job));
        assert_eq!(a[0].total.routing_cost, b[0].total.routing_cost);
        assert_eq!(a[0].total.requests, 3000);
    }

    #[test]
    fn materialized_spec_runs_csv_style_traces() {
        let dm = setup();
        let trace = uniform_trace(10, 500, 7);
        let job = Job {
            algorithm: AlgorithmKind::Bma,
            b: 2,
            alpha: 5,
            seed: 0,
            checkpoints: vec![],
            trace: TraceSpec::materialized(trace.clone()),
        };
        let out = run_jobs(&dm, &[job], 2);
        assert_eq!(out[0].trace, trace.name);
        assert_eq!(out[0].total.requests, 500);
    }

    #[test]
    fn demand_specs_and_demand_aware_flow_through_unchanged() {
        // The demand layer rides the existing pipeline: a TraceSpec::Matrix
        // workload and the DemandAware static baseline need no sweep-side
        // special casing, parallel equals sequential, and the baseline beats
        // oblivious on its own forecast matrix.
        let dm = setup();
        let matrix = dcn_demand::DemandMatrix::zipf_pairs(10, 1.4, 3);
        let spec = TraceSpec::matrix(matrix.clone(), 4000, 11);
        let seq_spec = TraceSpec::sequence(
            dcn_demand::MatrixSequence::zipf_switching(10, 2, 1000, 1.2, 5),
            13,
        );
        let jobs = vec![
            Job {
                algorithm: AlgorithmKind::demand_aware(matrix),
                b: 3,
                alpha: 5,
                seed: 0,
                checkpoints: vec![2000],
                trace: spec.clone(),
            },
            Job {
                algorithm: AlgorithmKind::Oblivious,
                b: 3,
                alpha: 5,
                seed: 0,
                checkpoints: vec![2000],
                trace: spec.clone(),
            },
            Job {
                algorithm: AlgorithmKind::Rbma { lazy: true },
                b: 3,
                alpha: 5,
                seed: 1,
                checkpoints: vec![],
                trace: seq_spec.clone(),
            },
        ];
        let seq = run_jobs_sequential(&dm, &jobs);
        let par = run_jobs(&dm, &jobs, 3);
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.total.routing_cost, b.total.routing_cost);
        }
        assert_eq!(seq[0].algorithm, "DemandAware");
        assert_eq!(seq[0].trace, spec.name());
        assert_eq!(seq[0].total.reconfigurations, 0, "static baseline");
        assert!(
            seq[0].total.routing_cost < seq[1].total.routing_cost,
            "demand-aware must beat oblivious on its own matrix: {} vs {}",
            seq[0].total.routing_cost,
            seq[1].total.routing_cost
        );
        assert_eq!(seq[2].trace, seq_spec.name());
        assert_eq!(seq[2].total.requests, 2000);
    }

    #[test]
    fn work_stealing_matches_sequential_for_every_thread_count() {
        // The executor contract: for every worker count 1–8 (more workers
        // than jobs included), the report vector is identical to the
        // sequential run — same order, same costs, same checkpoints.
        let dm = setup();
        let js = jobs();
        let seq = run_jobs_sequential(&dm, &js);
        for threads in 1..=8usize {
            let par = run_jobs(&dm, &js, threads);
            assert_eq!(seq.len(), par.len(), "threads={threads}");
            for (i, (a, b)) in seq.iter().zip(&par).enumerate() {
                assert_eq!(a.algorithm, b.algorithm, "threads={threads} job={i}");
                assert_eq!(a.b, b.b, "threads={threads} job={i}");
                assert_eq!(a.seed, b.seed, "threads={threads} job={i}");
                assert_eq!(
                    a.total.routing_cost, b.total.routing_cost,
                    "threads={threads} job={i}"
                );
                assert_eq!(
                    a.total.reconfigurations, b.total.reconfigurations,
                    "threads={threads} job={i}"
                );
                assert_eq!(
                    a.checkpoints.len(),
                    b.checkpoints.len(),
                    "threads={threads} job={i}"
                );
                for (x, y) in a.checkpoints.iter().zip(&b.checkpoints) {
                    assert_eq!(x.requests, y.requests, "threads={threads} job={i}");
                    assert_eq!(x.routing_cost, y.routing_cost, "threads={threads} job={i}");
                }
            }
        }
    }

    #[test]
    fn steal_map_is_index_ordered_for_every_thread_count() {
        // The shared primitive behind run_jobs and the row fan-outs:
        // result[k] == f(k) regardless of worker count, including more
        // workers than indices and the empty case.
        for threads in 0..=6usize {
            let out = steal_map(9, threads, |k| k * k);
            assert_eq!(
                out,
                (0..9).map(|k| k * k).collect::<Vec<_>>(),
                "t={threads}"
            );
        }
        assert_eq!(steal_map(0, 4, |k| k), Vec::<usize>::new());
    }

    #[test]
    fn zero_threads_means_auto() {
        // The 0 = auto convention must run (not panic) and stay
        // deterministic.
        let dm = setup();
        let js = jobs();
        let auto = run_jobs(&dm, &js, 0);
        let seq = run_jobs_sequential(&dm, &js);
        for (a, b) in auto.iter().zip(&seq) {
            assert_eq!(a.total.routing_cost, b.total.routing_cost);
        }
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }

    #[test]
    fn shard_union_is_the_unsharded_grid_in_job_order() {
        let dm = setup();
        let js = jobs();
        let full = run_jobs(&dm, &js, 2);
        for m in 1..=4usize {
            let mut merged: Vec<Option<RunReport>> = vec![None; js.len()];
            for i in 0..m {
                let shard = ShardSpec::new(i, m);
                for (idx, report) in run_jobs_sharded(&dm, &js, 2, shard) {
                    assert!(shard.owns(idx), "shard {shard} yielded foreign job {idx}");
                    assert!(merged[idx].is_none(), "job {idx} produced twice");
                    merged[idx] = Some(report);
                }
            }
            for (idx, (got, want)) in merged.iter().zip(&full).enumerate() {
                let got = got.as_ref().unwrap_or_else(|| panic!("job {idx} missing"));
                assert_eq!(got.algorithm, want.algorithm, "m={m} job={idx}");
                assert_eq!(
                    got.total.routing_cost, want.total.routing_cost,
                    "m={m} job={idx}"
                );
                assert_eq!(
                    got.total.reconfigurations, want.total.reconfigurations,
                    "m={m} job={idx}"
                );
            }
        }
    }

    #[test]
    fn shard_spec_parses_and_partitions() {
        let s = ShardSpec::parse("1/3").expect("valid spec");
        assert_eq!((s.index(), s.count()), (1, 3));
        assert_eq!(s.to_string(), "1/3");
        assert!(!s.is_full());
        assert!(ShardSpec::full().is_full());
        assert_eq!(s.owned_indices(8).collect::<Vec<_>>(), vec![1, 4, 7]);
        // Every index is owned by exactly one shard.
        for n in [0usize, 1, 7, 20] {
            for m in 1..=5usize {
                for i in 0..n {
                    let owners = (0..m).filter(|&k| ShardSpec::new(k, m).owns(i)).count();
                    assert_eq!(owners, 1, "index {i} of {n} under {m} shards");
                }
            }
        }
        for bad in ["", "2", "a/b", "3/3", "1/0", "0/"] {
            assert!(ShardSpec::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn results_in_job_order() {
        let dm = setup();
        let js = jobs();
        let out = run_jobs(&dm, &js, 3);
        for (job, report) in js.iter().zip(&out) {
            assert_eq!(report.b, job.b);
            assert_eq!(report.seed, job.seed);
            assert_eq!(report.algorithm, job.algorithm.label());
        }
    }

    #[test]
    fn single_job_runs_inline() {
        let dm = setup();
        let js = vec![Job {
            algorithm: AlgorithmKind::Bma,
            b: 3,
            alpha: 4,
            seed: 0,
            checkpoints: vec![1500],
            trace: spec(),
        }];
        let out = run_jobs(&dm, &js, 8);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].algorithm, "BMA");
        assert_eq!(out[0].checkpoints.len(), 2, "1500 plus trace end");
    }

    #[test]
    fn supervised_equals_plain_when_failure_free() {
        // No armed failpoints, no journal: supervised execution is the
        // plain executor plus a catch_unwind shell, and must produce the
        // identical reports in the identical order at every thread count.
        // Wall-clock is the one legitimately varying field; zero it before
        // the byte comparison (same canonicalization as the telemetry
        // identity proptest).
        let canonical = |r: &RunReport| {
            let mut r = r.clone();
            r.total.elapsed_secs = 0.0;
            for c in &mut r.checkpoints {
                c.elapsed_secs = 0.0;
            }
            r.to_json()
        };
        let dm = setup();
        let js = jobs();
        let plain = run_jobs(&dm, &js, 2);
        for threads in [1usize, 4] {
            let sup = Supervisor::scoped("test").with_backoff(Duration::ZERO);
            let outcomes = run_jobs_supervised(&dm, &js, threads, &sup);
            assert_eq!(outcomes.len(), plain.len());
            for (i, (o, want)) in outcomes.iter().zip(&plain).enumerate() {
                let got = o
                    .report()
                    .unwrap_or_else(|| panic!("job {i} unexpectedly quarantined"));
                assert_eq!(canonical(got), canonical(want), "threads={threads} job={i}");
            }
        }
    }

    #[test]
    fn supervised_deadline_quarantines_with_structured_failure() {
        // A zero deadline trips before the first chunk of every attempt:
        // the job must exhaust its budget and come back as a structured
        // quarantine row, not a panic and not a bogus report.
        let dm = setup();
        let js = &jobs()[..2];
        let sup = Supervisor::scoped("test")
            .with_retries(1)
            .with_backoff(Duration::ZERO)
            .with_deadline(Duration::ZERO);
        let outcomes = run_jobs_supervised(&dm, js, 2, &sup);
        for (i, o) in outcomes.iter().enumerate() {
            let failure = o
                .failure()
                .unwrap_or_else(|| panic!("job {i} should have quarantined on the zero deadline"));
            assert_eq!(failure.index, i);
            assert_eq!(failure.reason, "deadline");
            assert_eq!(failure.attempts, 2, "retries=1 means 2 attempts");
            assert!(failure.key.starts_with("test#"), "key: {}", failure.key);
            // The failure row serializes (it lands in QUARANTINE artifacts).
            let json = dcn_util::json::to_json_string(failure).unwrap();
            assert!(json.contains("\"reason\":\"deadline\""), "{json}");
        }
    }

    #[test]
    fn job_keys_are_stable_and_distinct() {
        let js = jobs();
        let keys: Vec<String> = js
            .iter()
            .enumerate()
            .map(|(i, j)| job_key("demand", i, j))
            .collect();
        let mut deduped = keys.clone();
        deduped.sort();
        deduped.dedup();
        assert_eq!(deduped.len(), keys.len(), "keys must be unique");
        assert_eq!(keys, {
            let again: Vec<String> = js
                .iter()
                .enumerate()
                .map(|(i, j)| job_key("demand", i, j))
                .collect();
            again
        });
        assert!(keys[0].contains("/b=2/"), "fingerprint in key: {}", keys[0]);
    }

    #[test]
    fn report_names_match_source_names() {
        let dm = setup();
        let js = vec![Job {
            algorithm: AlgorithmKind::Rbma { lazy: true },
            b: 2,
            alpha: 5,
            seed: 0,
            checkpoints: vec![],
            trace: spec(),
        }];
        let out = run_jobs_sequential(&dm, &js);
        assert_eq!(out[0].trace, spec().name());
    }
}

//! Deterministic parallel fan-out of simulation runs.
//!
//! Cost figures need (algorithm × b × seed) grids of runs; each run is
//! single-threaded (per the paper's methodology) but runs are independent,
//! so the grid fans out over worker threads via a crossbeam channel. The
//! output order is deterministic regardless of scheduling: results carry
//! their job index and are re-sorted.
//!
//! Execution-*time* figures must not share cores; use `threads = 1` (or
//! [`run_jobs_sequential`]) for those, as the figure harness does.

use crate::algorithms::AlgorithmKind;
use crate::report::RunReport;
use crate::simulator::{run, SimConfig};
use dcn_topology::DistanceMatrix;
use dcn_traces::Trace;
use parking_lot::Mutex;
use std::sync::Arc;

/// One simulation job.
#[derive(Clone, Debug)]
pub struct Job {
    /// Algorithm to instantiate.
    pub algorithm: AlgorithmKind,
    /// Degree bound b.
    pub b: usize,
    /// Reconfiguration cost α.
    pub alpha: u64,
    /// RNG seed for the algorithm.
    pub seed: u64,
    /// Checkpoint grid (request counts).
    pub checkpoints: Vec<usize>,
}

/// Runs all jobs over the shared trace using `threads` workers; results are
/// in job order.
pub fn run_jobs(
    dm: &Arc<DistanceMatrix>,
    trace: &Trace,
    jobs: &[Job],
    threads: usize,
) -> Vec<RunReport> {
    assert!(threads >= 1);
    if threads == 1 || jobs.len() <= 1 {
        return run_jobs_sequential(dm, trace, jobs);
    }
    let (tx, rx) = crossbeam::channel::unbounded::<(usize, Job)>();
    for (i, j) in jobs.iter().cloned().enumerate() {
        tx.send((i, j)).expect("queue send");
    }
    drop(tx);

    let results: Mutex<Vec<Option<RunReport>>> = Mutex::new(vec![None; jobs.len()]);
    std::thread::scope(|scope| {
        for _ in 0..threads.min(jobs.len()) {
            let rx = rx.clone();
            let results = &results;
            let dm = Arc::clone(dm);
            let trace = &trace;
            scope.spawn(move || {
                while let Ok((i, job)) = rx.recv() {
                    let report = execute(&dm, trace, &job);
                    results.lock()[i] = Some(report);
                }
            });
        }
    });
    results
        .into_inner()
        .into_iter()
        .map(|r| r.expect("all jobs completed"))
        .collect()
}

/// Single-threaded variant (for wall-clock fidelity).
pub fn run_jobs_sequential(
    dm: &Arc<DistanceMatrix>,
    trace: &Trace,
    jobs: &[Job],
) -> Vec<RunReport> {
    jobs.iter().map(|j| execute(dm, trace, j)).collect()
}

fn execute(dm: &Arc<DistanceMatrix>, trace: &Trace, job: &Job) -> RunReport {
    let mut scheduler =
        job.algorithm
            .build(Arc::clone(dm), job.b, job.alpha, job.seed, &trace.requests);
    let config = SimConfig {
        checkpoints: job.checkpoints.clone(),
        verify_every: 0,
        seed: job.seed,
        trace_name: trace.name.clone(),
    };
    let mut report = run(scheduler.as_mut(), dm, job.alpha, &trace.requests, &config);
    report.algorithm = job.algorithm.label();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_topology::builders;
    use dcn_traces::uniform_trace;

    fn setup() -> (Arc<DistanceMatrix>, Trace) {
        let net = builders::leaf_spine(10, 2);
        let dm = Arc::new(DistanceMatrix::between_racks(&net));
        let trace = uniform_trace(10, 3000, 5);
        (dm, trace)
    }

    fn jobs() -> Vec<Job> {
        let mut jobs = Vec::new();
        for b in [2usize, 4] {
            for seed in 0..3u64 {
                jobs.push(Job {
                    algorithm: AlgorithmKind::Rbma { lazy: true },
                    b,
                    alpha: 5,
                    seed,
                    checkpoints: vec![1000, 2000, 3000],
                });
            }
        }
        jobs.push(Job {
            algorithm: AlgorithmKind::Oblivious,
            b: 2,
            alpha: 5,
            seed: 0,
            checkpoints: vec![1000, 2000, 3000],
        });
        jobs
    }

    #[test]
    fn parallel_equals_sequential() {
        let (dm, trace) = setup();
        let js = jobs();
        let seq = run_jobs_sequential(&dm, &trace, &js);
        let par = run_jobs(&dm, &trace, &js, 4);
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.algorithm, b.algorithm);
            assert_eq!(a.b, b.b);
            assert_eq!(a.seed, b.seed);
            // Costs are deterministic given the seed; only wall-clock differs.
            assert_eq!(a.total.routing_cost, b.total.routing_cost);
            assert_eq!(a.total.reconfigurations, b.total.reconfigurations);
        }
    }

    #[test]
    fn results_in_job_order() {
        let (dm, trace) = setup();
        let js = jobs();
        let out = run_jobs(&dm, &trace, &js, 3);
        for (job, report) in js.iter().zip(&out) {
            assert_eq!(report.b, job.b);
            assert_eq!(report.seed, job.seed);
            assert_eq!(report.algorithm, job.algorithm.label());
        }
    }

    #[test]
    fn single_job_runs_inline() {
        let (dm, trace) = setup();
        let js = vec![Job {
            algorithm: AlgorithmKind::Bma,
            b: 3,
            alpha: 4,
            seed: 0,
            checkpoints: vec![1500],
        }];
        let out = run_jobs(&dm, &trace, &js, 8);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].algorithm, "BMA");
        assert_eq!(out[0].checkpoints.len(), 2, "1500 plus trace end");
    }
}

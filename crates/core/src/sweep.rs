//! Deterministic parallel fan-out of simulation runs.
//!
//! Cost figures need (algorithm × b × trace-seed × algo-seed) grids of
//! runs; each run is single-threaded (per the paper's methodology) but runs
//! are independent, so the grid fans out over worker threads via a
//! crossbeam channel. The output order is deterministic regardless of
//! scheduling: results carry their job index and are re-sorted.
//!
//! Every [`Job`] carries a [`TraceSpec`] — a *description* of its workload
//! (generator + parameters + trace seed) — and each worker synthesizes its
//! own request stream in-place. Online-only job grids therefore never
//! allocate a `Vec` of the full trace (peak resident trace memory is O(1)
//! in the request count), there is no shared-trace `Arc` to contend on, and
//! (trace-seed × algo-seed) grids are just more jobs. Only algorithms that
//! declare [`AlgorithmKind::needs_materialized_trace`] (the prediction
//! oracle) materialize their trace, privately and transiently.
//!
//! Execution-*time* figures must not share cores; use `threads = 1` (or
//! [`run_jobs_sequential`]) for those, as the figure harness does.

use crate::algorithms::AlgorithmKind;
use crate::report::RunReport;
use crate::simulator::{run, SimConfig};
use dcn_topology::DistanceMatrix;
use dcn_traces::TraceSpec;
use parking_lot::Mutex;
use std::sync::Arc;

/// One simulation job: an algorithm configuration plus the workload it runs
/// on.
#[derive(Clone, Debug)]
pub struct Job {
    /// Algorithm to instantiate.
    pub algorithm: AlgorithmKind,
    /// Degree bound b.
    pub b: usize,
    /// Reconfiguration cost α.
    pub alpha: u64,
    /// RNG seed for the algorithm.
    pub seed: u64,
    /// Checkpoint grid (request counts).
    pub checkpoints: Vec<usize>,
    /// Workload description; the worker synthesizes the stream in-place.
    pub trace: TraceSpec,
}

/// Runs all jobs using `threads` workers; results are in job order.
pub fn run_jobs(dm: &Arc<DistanceMatrix>, jobs: &[Job], threads: usize) -> Vec<RunReport> {
    assert!(threads >= 1);
    if threads == 1 || jobs.len() <= 1 {
        return run_jobs_sequential(dm, jobs);
    }
    let (tx, rx) = crossbeam::channel::unbounded::<(usize, Job)>();
    for (i, j) in jobs.iter().cloned().enumerate() {
        tx.send((i, j)).expect("queue send");
    }
    drop(tx);

    let results: Mutex<Vec<Option<RunReport>>> = Mutex::new(vec![None; jobs.len()]);
    std::thread::scope(|scope| {
        for _ in 0..threads.min(jobs.len()) {
            let rx = rx.clone();
            let results = &results;
            let dm = Arc::clone(dm);
            scope.spawn(move || {
                while let Ok((i, job)) = rx.recv() {
                    let report = execute(&dm, &job);
                    results.lock()[i] = Some(report);
                }
            });
        }
    });
    results
        .into_inner()
        .into_iter()
        .map(|r| r.expect("all jobs completed"))
        .collect()
}

/// Single-threaded variant (for wall-clock fidelity).
pub fn run_jobs_sequential(dm: &Arc<DistanceMatrix>, jobs: &[Job]) -> Vec<RunReport> {
    jobs.iter().map(|j| execute(dm, j)).collect()
}

fn execute(dm: &Arc<DistanceMatrix>, job: &Job) -> RunReport {
    let mut config = SimConfig {
        checkpoints: job.checkpoints.clone(),
        seed: job.seed,
        ..SimConfig::default()
    };
    let mut report = if job.algorithm.needs_materialized_trace() {
        // Offline knowledge required: materialize this job's trace privately
        // (borrowed, not cloned, when the spec already wraps one).
        let trace = job.trace.as_trace();
        config.trace_name = trace.name.clone();
        let mut scheduler = job.algorithm.build_with_trace(
            Arc::clone(dm),
            job.b,
            job.alpha,
            job.seed,
            &trace.requests,
        );
        run(scheduler.as_mut(), dm, job.alpha, &trace.requests, &config)
    } else {
        // Online path: stream the workload, O(1) memory in its length.
        let mut source = job.trace.source();
        config.trace_name = source.name().to_string();
        let mut scheduler = job
            .algorithm
            .build_online(Arc::clone(dm), job.b, job.alpha, job.seed);
        run(scheduler.as_mut(), dm, job.alpha, source.as_mut(), &config)
    };
    report.algorithm = job.algorithm.label();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_topology::builders;
    use dcn_traces::uniform_trace;

    fn setup() -> Arc<DistanceMatrix> {
        let net = builders::leaf_spine(10, 2);
        Arc::new(DistanceMatrix::between_racks(&net))
    }

    fn spec() -> TraceSpec {
        TraceSpec::Uniform {
            num_racks: 10,
            len: 3000,
            seed: 5,
        }
    }

    fn jobs() -> Vec<Job> {
        let mut jobs = Vec::new();
        for b in [2usize, 4] {
            for seed in 0..3u64 {
                jobs.push(Job {
                    algorithm: AlgorithmKind::Rbma { lazy: true },
                    b,
                    alpha: 5,
                    seed,
                    checkpoints: vec![1000, 2000, 3000],
                    trace: spec(),
                });
            }
        }
        jobs.push(Job {
            algorithm: AlgorithmKind::Oblivious,
            b: 2,
            alpha: 5,
            seed: 0,
            checkpoints: vec![1000, 2000, 3000],
            trace: spec(),
        });
        jobs
    }

    #[test]
    fn parallel_equals_sequential() {
        let dm = setup();
        let js = jobs();
        let seq = run_jobs_sequential(&dm, &js);
        let par = run_jobs(&dm, &js, 4);
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.algorithm, b.algorithm);
            assert_eq!(a.b, b.b);
            assert_eq!(a.seed, b.seed);
            // Costs are deterministic given the seed; only wall-clock differs.
            assert_eq!(a.total.routing_cost, b.total.routing_cost);
            assert_eq!(a.total.reconfigurations, b.total.reconfigurations);
        }
    }

    #[test]
    fn trace_seed_grid_is_deterministic_and_distinct() {
        // (trace-seed × algo-seed) grid: same algorithm, two trace seeds.
        let dm = setup();
        let js: Vec<Job> = (0..2u64)
            .flat_map(|trace_seed| {
                (0..2u64).map(move |seed| Job {
                    algorithm: AlgorithmKind::Rbma { lazy: true },
                    b: 3,
                    alpha: 5,
                    seed,
                    checkpoints: vec![],
                    trace: spec().with_seed(trace_seed),
                })
            })
            .collect();
        let seq = run_jobs_sequential(&dm, &js);
        let par = run_jobs(&dm, &js, 3);
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.total.routing_cost, b.total.routing_cost);
        }
        // Different trace seeds must actually change the workload.
        assert_ne!(seq[0].total.routing_cost, seq[2].total.routing_cost);
    }

    #[test]
    fn streamed_jobs_match_materialized_jobs() {
        // The streamed path must be cost-identical to replaying the
        // materialized trace the spec describes.
        let dm = setup();
        let trace = spec().as_trace().into_owned();
        let streamed = jobs();
        let materialized: Vec<Job> = streamed
            .iter()
            .map(|j| Job {
                trace: TraceSpec::materialized(trace.clone()),
                ..j.clone()
            })
            .collect();
        let a = run_jobs_sequential(&dm, &streamed);
        let b = run_jobs_sequential(&dm, &materialized);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.total.routing_cost, y.total.routing_cost);
            assert_eq!(x.total.reconfigurations, y.total.reconfigurations);
            assert_eq!(x.trace, y.trace, "trace provenance must agree");
        }
    }

    #[test]
    fn predictive_jobs_materialize_transparently() {
        let dm = setup();
        let job = Job {
            algorithm: AlgorithmKind::PredictiveRbma { noise: 0.0 },
            b: 2,
            alpha: 5,
            seed: 1,
            checkpoints: vec![],
            trace: spec(),
        };
        let a = run_jobs_sequential(&dm, std::slice::from_ref(&job));
        let b = run_jobs_sequential(&dm, std::slice::from_ref(&job));
        assert_eq!(a[0].total.routing_cost, b[0].total.routing_cost);
        assert_eq!(a[0].total.requests, 3000);
    }

    #[test]
    fn materialized_spec_runs_csv_style_traces() {
        let dm = setup();
        let trace = uniform_trace(10, 500, 7);
        let job = Job {
            algorithm: AlgorithmKind::Bma,
            b: 2,
            alpha: 5,
            seed: 0,
            checkpoints: vec![],
            trace: TraceSpec::materialized(trace.clone()),
        };
        let out = run_jobs(&dm, &[job], 2);
        assert_eq!(out[0].trace, trace.name);
        assert_eq!(out[0].total.requests, 500);
    }

    #[test]
    fn demand_specs_and_demand_aware_flow_through_unchanged() {
        // The demand layer rides the existing pipeline: a TraceSpec::Matrix
        // workload and the DemandAware static baseline need no sweep-side
        // special casing, parallel equals sequential, and the baseline beats
        // oblivious on its own forecast matrix.
        let dm = setup();
        let matrix = dcn_demand::DemandMatrix::zipf_pairs(10, 1.4, 3);
        let spec = TraceSpec::matrix(matrix.clone(), 4000, 11);
        let seq_spec = TraceSpec::sequence(
            dcn_demand::MatrixSequence::zipf_switching(10, 2, 1000, 1.2, 5),
            13,
        );
        let jobs = vec![
            Job {
                algorithm: AlgorithmKind::demand_aware(matrix),
                b: 3,
                alpha: 5,
                seed: 0,
                checkpoints: vec![2000],
                trace: spec.clone(),
            },
            Job {
                algorithm: AlgorithmKind::Oblivious,
                b: 3,
                alpha: 5,
                seed: 0,
                checkpoints: vec![2000],
                trace: spec.clone(),
            },
            Job {
                algorithm: AlgorithmKind::Rbma { lazy: true },
                b: 3,
                alpha: 5,
                seed: 1,
                checkpoints: vec![],
                trace: seq_spec.clone(),
            },
        ];
        let seq = run_jobs_sequential(&dm, &jobs);
        let par = run_jobs(&dm, &jobs, 3);
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.total.routing_cost, b.total.routing_cost);
        }
        assert_eq!(seq[0].algorithm, "DemandAware");
        assert_eq!(seq[0].trace, spec.name());
        assert_eq!(seq[0].total.reconfigurations, 0, "static baseline");
        assert!(
            seq[0].total.routing_cost < seq[1].total.routing_cost,
            "demand-aware must beat oblivious on its own matrix: {} vs {}",
            seq[0].total.routing_cost,
            seq[1].total.routing_cost
        );
        assert_eq!(seq[2].trace, seq_spec.name());
        assert_eq!(seq[2].total.requests, 2000);
    }

    #[test]
    fn results_in_job_order() {
        let dm = setup();
        let js = jobs();
        let out = run_jobs(&dm, &js, 3);
        for (job, report) in js.iter().zip(&out) {
            assert_eq!(report.b, job.b);
            assert_eq!(report.seed, job.seed);
            assert_eq!(report.algorithm, job.algorithm.label());
        }
    }

    #[test]
    fn single_job_runs_inline() {
        let dm = setup();
        let js = vec![Job {
            algorithm: AlgorithmKind::Bma,
            b: 3,
            alpha: 4,
            seed: 0,
            checkpoints: vec![1500],
            trace: spec(),
        }];
        let out = run_jobs(&dm, &js, 8);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].algorithm, "BMA");
        assert_eq!(out[0].checkpoints.len(), 2, "1500 plus trace end");
    }

    #[test]
    fn report_names_match_source_names() {
        let dm = setup();
        let js = vec![Job {
            algorithm: AlgorithmKind::Rbma { lazy: true },
            b: 2,
            alpha: 5,
            seed: 0,
            checkpoints: vec![],
            trace: spec(),
        }];
        let out = run_jobs_sequential(&dm, &js);
        assert_eq!(out[0].trace, spec().name());
    }
}

//! # dcn-core
//!
//! The paper's primary contribution as a library: **online (b,a)-matching
//! for reconfigurable optical datacenters**.
//!
//! The model (§1.1): racks communicate over a fixed network with
//! shortest-path lengths `ℓ_e`; `b` optical circuit switches provide a
//! reconfigurable b-matching `M`. Serving request `e` costs 1 if `e ∈ M`
//! and `ℓ_e` otherwise; each matching-edge insertion or removal costs `α`.
//!
//! * [`scheduler`] — the [`OnlineScheduler`] contract and serve outcomes.
//! * [`algorithms`] — the algorithms of §2/§3:
//!   [`algorithms::rbma::Rbma`] (the paper's randomized O(γ·log b)
//!   algorithm), [`algorithms::bma::Bma`] (the deterministic Θ(b) baseline
//!   of Bienkowski et al. \[11\]), [`algorithms::static_offline`] (SO-BMA),
//!   [`algorithms::oblivious::Oblivious`], plus a RotorNet-style oblivious
//!   rotor and a prediction-augmented R-BMA (§5 future work).
//! * [`simulator`] — request-driven execution with checkpointed
//!   routing-cost / reconfiguration-cost / wall-clock series (the x/y data
//!   of Figs. 1–4). Consumes any [`simulator::RequestStream`]: an eager
//!   slice or an O(1)-memory [`dcn_traces::RequestSource`] stream.
//! * [`batch`] — serve-chunk preprocessing: counting-sort each chunk by
//!   rack pair into a reusable slab ([`batch::PairBuckets`]) so schedulers
//!   amortize membership scans, ℓ-lookups and counter reads over runs of
//!   identical pairs while keeping reports byte-identical.
//! * [`parallel`] — intra-run parallelism: a persistent fork-join pool
//!   ([`parallel::IntraPool`]) that shards one simulation's bucketing scans
//!   by rack-pair ownership ([`simulator::SimConfig::intra_threads`]).
//! * [`sweep`] — deterministic parallel fan-out of
//!   (algorithm × b × trace-seed × algo-seed) runs across threads; each
//!   job carries a [`dcn_traces::TraceSpec`] and synthesizes its own
//!   stream in-place.
//! * [`cancel`] / [`journal`] / [`sweep::run_jobs_supervised`] — the
//!   fault-tolerance layer: cooperative per-job deadlines observed at chunk
//!   boundaries, `catch_unwind` supervision with a deterministic retry
//!   budget and structured quarantine ([`sweep::JobFailure`]), and a
//!   resumable completed-job journal ([`journal::RunJournal`]) written with
//!   atomic rename so kill-and-resume reproduces an uninterrupted run
//!   byte-for-byte (DESIGN §8).
//! * Telemetry — the simulator, schedulers and both executors flush event
//!   counters and log2 latency histograms into a
//!   [`dcn_telemetry::Telemetry`] handle
//!   ([`simulator::SimConfig::telemetry`]; disabled by default). Reports
//!   stay byte-identical with telemetry on, off, or compiled out.
//! * [`ratio`] — adversarial fitness: an online algorithm's total cost
//!   relative to the static offline baseline on the same trace (the
//!   objective the adversary search in `dcn-adversary` maximizes).
//! * [`report`] — serializable run reports and cross-seed averaging.
//!
//! # Quickstart
//!
//! ```
//! use dcn_core::algorithms::rbma::{Rbma, RemovalMode};
//! use dcn_core::simulator::{run, SimConfig};
//! use dcn_topology::{builders, DistanceMatrix};
//! use dcn_traces::generators::facebook::{facebook_cluster_source, FacebookCluster};
//! use std::sync::Arc;
//!
//! let net = builders::fat_tree_with_racks(16);
//! let dm = Arc::new(DistanceMatrix::between_racks(&net));
//! // A lazy request stream — nothing is materialized.
//! let mut trace = facebook_cluster_source(FacebookCluster::Database, 16, 20_000, 42);
//! let alpha = 10;
//! let mut rbma = Rbma::new(dm.clone(), 4, alpha, RemovalMode::Lazy, 7);
//! let report = run(&mut rbma, &dm, alpha, &mut trace, &SimConfig::default());
//! assert!(report.total.routing_cost > 0);
//! ```

pub mod algorithms;
pub mod analysis;
pub mod batch;
pub mod cancel;
pub mod journal;
pub mod parallel;
pub mod ratio;
pub mod report;
pub mod scheduler;
pub mod simulator;
pub mod sweep;

pub use batch::PairBuckets;
pub use cancel::CancelToken;
pub use journal::RunJournal;
pub use parallel::IntraPool;
pub use ratio::{cost_ratio_vs_static, RatioOutcome};
pub use report::{AveragedSeries, Checkpoint, RunReport};
pub use scheduler::{OnlineScheduler, ServeOutcome};
pub use simulator::{run, total_served, RequestStream, ServeMode, SimConfig};
pub use sweep::{JobFailure, JobOutcome, ShardSpec, Supervisor};

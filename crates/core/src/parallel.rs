//! Intra-run parallelism: a persistent fork-join pool that shards **one**
//! simulation's serve batches across worker threads.
//!
//! The sweep executor ([`crate::sweep`]) parallelizes *across* runs; this
//! module parallelizes *inside* a single run. The unit of work is one
//! broadcast per serve chunk: every worker scans the chunk and handles the
//! rack pairs it owns (ownership is `pair_id % width`, fixed for the run),
//! and the caller thread participates as worker 0. Reconciliation happens
//! only at chunk boundaries — and the simulator cuts chunks at checkpoint,
//! verification and (for rotor-style schedulers) reconfiguration
//! boundaries, so those are exactly the barriers.
//!
//! Two batch phases shard: the bucketing/counting **scan** (see
//! [`crate::batch::PairBuckets::bucket`] and
//! [`crate::batch::PersistentPairSlab::begin_chunk_sharded`]) and the
//! closed-form per-pair **charging** pre-pass (R-BMA's Phase A), whose
//! writes land in disjoint pair-owned slots and whose per-worker
//! (cost, matched) partials fold deterministically in worker order. Every
//! RNG draw — the specials schedule, Phase B — stays on the caller thread
//! in original request order. That is what makes sharded runs
//! byte-identical to sequential ones at any worker count — the contract
//! `repro_figures scaling` asserts live.
//!
//! The pool is deliberately tiny: `std::sync::{Mutex, Condvar}` (the
//! vendored `parking_lot` carries no condvar), one generation counter, no
//! queues. A `broadcast` costs two lock acquisitions per worker — noise
//! against a 1024-request chunk — and spawning happens once per run, not
//! per chunk (`scoped` spawn-per-chunk costs ~10µs; this is ~100ns).

use dcn_telemetry::Telemetry;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// A lifetime-erased reference to the borrowed job closure. The `'static`
/// is a lie told to the type system; it is sound because
/// [`IntraPool::broadcast`] does not return until every worker has finished
/// calling the closure (see the safety argument there).
#[derive(Clone, Copy)]
struct JobRef(&'static (dyn Fn(usize) + Sync));

/// A shared mutable view over `&mut [T]` for [`IntraPool::broadcast`] jobs
/// whose workers touch provably **disjoint** indices — the `pair_id %
/// width` ownership discipline of the sharded scan and charging passes.
///
/// Raw-pointer accesses sidestep the exclusive-alias rule a `&mut` slice
/// would impose across workers. Soundness rests on the same two facts as
/// the pool's lifetime erasure: (1) the ownership discipline maps every
/// index to exactly one worker, so no two threads ever touch the same
/// element, and (2) `broadcast` is a full barrier — it does not return
/// until every worker is done — so all worker writes happen-before the
/// caller's next read of the slice.
pub(crate) struct ShardSlice<T> {
    ptr: *mut T,
    len: usize,
}

unsafe impl<T: Send> Send for ShardSlice<T> {}
unsafe impl<T: Send> Sync for ShardSlice<T> {}

impl<T> ShardSlice<T> {
    /// Wraps `slice` for the duration of one broadcast; the caller must
    /// not touch `slice` through any other path until the broadcast
    /// returns.
    pub(crate) fn new(slice: &mut [T]) -> Self {
        ShardSlice {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
        }
    }

    /// Reads element `i`.
    ///
    /// # Safety
    /// `i < len`, and no other worker reads or writes index `i` during
    /// this broadcast.
    #[inline]
    pub(crate) unsafe fn read(&self, i: usize) -> T
    where
        T: Copy,
    {
        debug_assert!(i < self.len);
        unsafe { *self.ptr.add(i) }
    }

    /// Overwrites element `i` (dropping the old value).
    ///
    /// # Safety
    /// As for [`Self::read`].
    #[inline]
    pub(crate) unsafe fn write(&self, i: usize, v: T) {
        debug_assert!(i < self.len);
        unsafe { *self.ptr.add(i) = v };
    }

    /// Mutable reference to element `i`; must not outlive the broadcast.
    ///
    /// # Safety
    /// As for [`Self::read`], plus: at most one such reference per index
    /// may be live at a time.
    #[inline]
    #[allow(clippy::mut_from_ref)]
    pub(crate) unsafe fn get_mut(&self, i: usize) -> &mut T {
        debug_assert!(i < self.len);
        unsafe { &mut *self.ptr.add(i) }
    }
}

struct PoolState {
    job: Option<JobRef>,
    /// Bumped per broadcast; workers run each generation exactly once.
    generation: u64,
    /// Workers still inside the current generation's job.
    remaining: usize,
    /// A worker's job invocation panicked (re-raised on the caller).
    panicked: bool,
    shutdown: bool,
}

struct Shared {
    state: Mutex<PoolState>,
    /// Signals workers: new generation or shutdown.
    work: Condvar,
    /// Signals the caller: `remaining` reached zero.
    done: Condvar,
}

/// Per-worker shard-imbalance accounting for an instrumented pool (see
/// [`IntraPool::instrumented`]). One relaxed add per worker per broadcast —
/// the uninstrumented pool carries none of it.
struct PoolStats {
    /// Broadcasts issued since the last flush.
    broadcasts: AtomicU64,
    /// Per-worker nanoseconds spent inside job invocations since the last
    /// flush (busy time; the gap to the slowest worker is the imbalance).
    busy_ns: Vec<AtomicU64>,
}

/// Persistent fork-join pool of `width - 1` spawned workers plus the
/// calling thread (worker index 0). `width <= 1` degrades to inline calls
/// with no threads and no synchronization.
pub struct IntraPool {
    width: usize,
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    stats: Option<PoolStats>,
}

impl IntraPool {
    /// Creates a pool of `width` workers total (the caller counts as one;
    /// `width - 1` threads are spawned). `0` and `1` both mean "no
    /// parallelism".
    pub fn new(width: usize) -> Self {
        Self::build(width, false)
    }

    /// Like [`IntraPool::new`], but each broadcast also records per-worker
    /// busy time for shard-imbalance telemetry (drained by
    /// [`IntraPool::telemetry_flush`]). The simulator picks this flavor only
    /// when its run has an enabled telemetry handle.
    pub fn instrumented(width: usize) -> Self {
        Self::build(width, true)
    }

    fn build(width: usize, instrumented: bool) -> Self {
        let width = width.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState {
                job: None,
                generation: 0,
                remaining: 0,
                panicked: false,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let handles = (1..width)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared, w))
            })
            .collect();
        Self {
            width,
            shared,
            handles,
            stats: instrumented.then(|| PoolStats {
                broadcasts: AtomicU64::new(0),
                busy_ns: (0..width).map(|_| AtomicU64::new(0)).collect(),
            }),
        }
    }

    /// Total worker count, including the calling thread.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Drains accumulated per-worker busy time into `sink` as
    /// `intra.worker.{w}.busy_ns` counters plus an `intra.imbalance_pct`
    /// gauge (`(max - min) / max` busy time across workers). No-op on an
    /// uninstrumented pool.
    pub fn telemetry_flush(&self, sink: &Telemetry) {
        let Some(stats) = &self.stats else { return };
        sink.add_counter(
            "intra.broadcasts",
            stats.broadcasts.swap(0, Ordering::Relaxed),
        );
        let busy: Vec<u64> = stats
            .busy_ns
            .iter()
            .map(|b| b.swap(0, Ordering::Relaxed))
            .collect();
        for (w, ns) in busy.iter().enumerate() {
            sink.add_counter(&format!("intra.worker.{w}.busy_ns"), *ns);
        }
        let max = busy.iter().copied().max().unwrap_or(0);
        let min = busy.iter().copied().min().unwrap_or(0);
        if max > 0 {
            sink.gauge_max("intra.imbalance_pct", ((max - min) * 100 / max) as i64);
        }
    }

    /// Runs `f(w)` once for every worker index `w in 0..width`, with the
    /// caller executing `f(0)`, and returns when **all** invocations have
    /// finished (a full fork-join barrier).
    ///
    /// Safety of the internal borrow erasure: workers only pick up the job
    /// after observing the new generation, and `remaining` reaches zero only
    /// after every worker's invocation has returned — so the erased
    /// reference to `f` is never used after `broadcast` returns, i.e. never
    /// outlives the borrow.
    pub fn broadcast<F: Fn(usize) + Sync>(&self, f: F) {
        match &self.stats {
            None => self.broadcast_inner(&f),
            // The timing wrapper exists only on instrumented pools, so the
            // default path pays nothing (not even a time read).
            Some(stats) => {
                stats.broadcasts.fetch_add(1, Ordering::Relaxed);
                self.broadcast_inner(&|w: usize| {
                    let t0 = Instant::now();
                    f(w);
                    stats.busy_ns[w].fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                });
            }
        }
    }

    fn broadcast_inner(&self, f: &(dyn Fn(usize) + Sync)) {
        dcn_util::failpoint::hit("intra.broadcast");
        if self.width <= 1 {
            f(0);
            return;
        }
        // SAFETY: the erased reference never outlives this call — the wait
        // loop below blocks until every worker's invocation has returned.
        let job = JobRef(unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(f)
        });
        {
            let mut st = self.shared.state.lock().unwrap();
            debug_assert_eq!(st.remaining, 0, "broadcast while one is in flight");
            st.job = Some(job);
            st.generation += 1;
            st.remaining = self.width - 1;
            self.shared.work.notify_all();
        }
        let caller_result = catch_unwind(AssertUnwindSafe(|| f(0)));
        let mut st = self.shared.state.lock().unwrap();
        while st.remaining > 0 {
            st = self.shared.done.wait(st).unwrap();
        }
        st.job = None;
        let worker_panicked = std::mem::replace(&mut st.panicked, false);
        drop(st);
        if let Err(payload) = caller_result {
            std::panic::resume_unwind(payload);
        }
        if worker_panicked {
            panic!("IntraPool worker panicked during broadcast");
        }
    }
}

impl Drop for IntraPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
            self.shared.work.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared, w: usize) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if st.shutdown {
                    return;
                }
                if st.generation != seen {
                    seen = st.generation;
                    break st.job.expect("job is set when the generation advances");
                }
                st = shared.work.wait(st).unwrap();
            }
        };
        // broadcast blocks until remaining == 0, so the pointee closure is
        // still alive for the whole invocation despite the erased lifetime.
        let result = catch_unwind(AssertUnwindSafe(|| (job.0)(w)));
        let mut st = shared.state.lock().unwrap();
        if result.is_err() {
            st.panicked = true;
        }
        st.remaining -= 1;
        if st.remaining == 0 {
            shared.done.notify_one();
        }
    }
}

/// Resolves an intra-run worker-count knob: `0` = one worker per available
/// core, anything else is taken literally (`1` = off).
///
/// The resolved width is **per simulation**: every sweep job that asks for
/// a pool gets its own `IntraPool` of this width sharding that run's
/// bucketing scan, independent of — and composing with — the sweep-level
/// worker count (`sweep::run_jobs`'s `threads`, `repro_figures --threads`).
/// Running S sweep workers at intra width W occupies up to `S × W` cores;
/// both knobs default conservatively (`--intra-threads` defaults to 1, the
/// sweep count to one worker per core), so over-subscription is always an
/// explicit choice.
pub fn resolve_intra(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    } else {
        threads
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn broadcast_reaches_every_worker_exactly_once() {
        for width in [1usize, 2, 3, 8] {
            let pool = IntraPool::new(width);
            let hits: Vec<AtomicU64> = (0..width).map(|_| AtomicU64::new(0)).collect();
            pool.broadcast(|w| {
                hits[w].fetch_add(1, Ordering::Relaxed);
            });
            for (w, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::Relaxed), 1, "width {width}, worker {w}");
            }
        }
    }

    #[test]
    fn pool_is_reusable_across_many_broadcasts() {
        let pool = IntraPool::new(4);
        let total = AtomicU64::new(0);
        for _ in 0..200 {
            pool.broadcast(|w| {
                total.fetch_add(w as u64 + 1, Ordering::Relaxed);
            });
        }
        // Each broadcast adds 1+2+3+4 = 10.
        assert_eq!(total.load(Ordering::Relaxed), 2000);
    }

    #[test]
    fn sharded_sums_are_exact() {
        // The shape schedulers use: each worker owns indices i % width == w
        // and writes disjoint slots; the barrier makes the merge safe.
        let pool = IntraPool::new(3);
        let data: Vec<u64> = (0..10_000).collect();
        let partial: Vec<AtomicU64> = (0..pool.width()).map(|_| AtomicU64::new(0)).collect();
        pool.broadcast(|w| {
            let mut sum = 0u64;
            for (i, &x) in data.iter().enumerate() {
                if i % pool.width() == w {
                    sum += x;
                }
            }
            partial[w].store(sum, Ordering::Relaxed);
        });
        let total: u64 = partial.iter().map(|p| p.load(Ordering::Relaxed)).sum();
        assert_eq!(total, 10_000 * 9_999 / 2);
    }

    #[test]
    fn worker_panic_propagates_to_the_caller() {
        let pool = IntraPool::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.broadcast(|w| {
                if w == 1 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err());
        // The pool survives the panic and keeps serving broadcasts.
        let count = AtomicU64::new(0);
        pool.broadcast(|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn resolve_intra_auto_and_literal() {
        assert!(resolve_intra(0) >= 1);
        assert_eq!(resolve_intra(1), 1);
        assert_eq!(resolve_intra(5), 5);
    }
}

//! Link-level analysis: translate matchings into the bandwidth-tax terms
//! that motivate the whole problem (§1.1: “routing can be seen as a form of
//! bandwidth tax”; throughput is inversely proportional to route length
//! \[2, 58\]).
//!
//! Given a trace and a matching, replay the traffic with ECMP over the
//! fixed network (unmatched pairs) and direct circuits (matched pairs) and
//! compare the induced link-load profiles against the oblivious baseline.

use dcn_topology::routing::EcmpRouter;
use dcn_topology::{Network, Pair};
use serde::Serialize;

/// Link-load profile of one configuration.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct LoadProfile {
    /// Maximum load on any fixed-network link.
    pub max_fixed_load: f64,
    /// Mean load over loaded fixed-network links.
    pub mean_fixed_load: f64,
    /// Total hop-traffic on the fixed network (requests × hops).
    pub fixed_hop_traffic: f64,
    /// Traffic served by optical circuits (requests over matching edges).
    pub optical_traffic: f64,
}

/// Side-by-side comparison against the oblivious baseline.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct LoadComparison {
    /// Loads with no reconfigurable links.
    pub oblivious: LoadProfile,
    /// Loads with the given matching installed.
    pub with_matching: LoadProfile,
}

impl LoadComparison {
    /// Relative reduction of the hottest fixed-network link.
    pub fn max_load_reduction(&self) -> f64 {
        if self.oblivious.max_fixed_load == 0.0 {
            0.0
        } else {
            1.0 - self.with_matching.max_fixed_load / self.oblivious.max_fixed_load
        }
    }

    /// Fraction of traffic offloaded to optical circuits.
    pub fn offloaded_fraction(&self) -> f64 {
        let total = self.with_matching.optical_traffic
            + (self.oblivious.fixed_hop_traffic - self.with_matching.fixed_hop_traffic).max(0.0);
        let requests = self.with_matching.optical_traffic;
        if total == 0.0 {
            0.0
        } else {
            requests / total.max(requests)
        }
    }
}

fn profile(router: &EcmpRouter<'_>, requests: &[Pair], matching: &[Pair]) -> LoadProfile {
    let (fixed, optical) = router.replay(requests, matching);
    LoadProfile {
        max_fixed_load: fixed.max_load(),
        mean_fixed_load: fixed.mean_load(),
        fixed_hop_traffic: fixed.total_hop_traffic,
        optical_traffic: optical.total_hop_traffic,
    }
}

/// Replays `requests` with and without `matching` over `net` and compares
/// the link-load profiles.
pub fn link_load_comparison(net: &Network, requests: &[Pair], matching: &[Pair]) -> LoadComparison {
    let router = EcmpRouter::new(net);
    LoadComparison {
        oblivious: profile(&router, requests, &[]),
        with_matching: profile(&router, requests, matching),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_topology::builders;

    #[test]
    fn matched_hot_pair_drains_fixed_network() {
        let net = builders::leaf_spine(6, 2);
        let hot = Pair::new(0, 1);
        let requests = vec![hot; 50];
        let cmp = link_load_comparison(&net, &requests, &[hot]);
        assert!(cmp.oblivious.max_fixed_load > 0.0);
        assert_eq!(cmp.with_matching.max_fixed_load, 0.0);
        assert!((cmp.max_load_reduction() - 1.0).abs() < 1e-12);
        assert_eq!(cmp.with_matching.optical_traffic, 50.0);
    }

    #[test]
    fn empty_matching_equals_oblivious() {
        let net = builders::fat_tree(4);
        let requests: Vec<Pair> = (0..40u32)
            .map(|i| Pair::new(i % 8, (i % 7 + 1 + i % 8) % 8))
            .filter(|p| p.lo() != p.hi())
            .collect();
        let cmp = link_load_comparison(&net, &requests, &[]);
        assert_eq!(
            cmp.oblivious.max_fixed_load,
            cmp.with_matching.max_fixed_load
        );
        assert_eq!(cmp.max_load_reduction(), 0.0);
        assert_eq!(cmp.with_matching.optical_traffic, 0.0);
    }

    #[test]
    fn partial_matching_reduces_hop_traffic() {
        let net = builders::fat_tree(4);
        // Two hot pairs leaving the same rack (their loads share rack 0's
        // uplinks); matching one of them must halve the hottest link.
        let mut requests = Vec::new();
        for _ in 0..30 {
            requests.push(Pair::new(0, 4)); // cross-pod, ℓ=4
            requests.push(Pair::new(0, 6));
        }
        let cmp = link_load_comparison(&net, &requests, &[Pair::new(0, 4)]);
        assert!(cmp.with_matching.fixed_hop_traffic < cmp.oblivious.fixed_hop_traffic);
        assert!(cmp.with_matching.optical_traffic > 0.0);
        assert!(cmp.max_load_reduction() > 0.0);
    }
}

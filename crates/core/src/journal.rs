//! Resumable run journal: one JSON line per completed sweep job.
//!
//! `repro_figures --journal FILE` installs a process-global [`RunJournal`];
//! the supervised executor ([`crate::sweep::run_jobs_supervised`]) records
//! each job's [`RunReport`] under a deterministic key the moment it
//! completes, and consults the journal before executing so `--resume`
//! skips finished work. Quarantined jobs are *not* recorded — a resumed
//! run retries them from scratch.
//!
//! # Line format and atomicity
//!
//! Each line is a self-contained object:
//!
//! ```text
//! {"key":"demand#3:R-BMA/b=6/a=10/seed=…/zipf-…","digest":1234…,"report":{…}}
//! ```
//!
//! `digest` is the FxHash64 of the serialized report; on replay a line
//! whose report does not re-serialize to its digest is dropped (and
//! re-run) rather than trusted. Every record rewrites the whole journal
//! through `dcn_util::fsx::write_atomic` (write-then-rename), so a process
//! killed at *any* instruction leaves either the previous or the new
//! complete journal on disk — never a torn line. A trailing partial line
//! in a journal written by other means is tolerated and ignored.
//!
//! Replay correctness rests on `RunReport::from_json(to_json)` being a
//! byte-exact round trip (pinned in `report` tests): a resumed artifact is
//! assembled from parsed reports and still compares byte-identical to an
//! uninterrupted run's artifact.

use crate::report::RunReport;
use std::collections::HashMap;
use std::hash::Hasher;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// A file-backed map from job key to completed [`RunReport`].
#[derive(Debug)]
pub struct RunJournal {
    path: PathBuf,
    state: Mutex<State>,
}

#[derive(Debug, Default)]
struct State {
    completed: HashMap<String, RunReport>,
    /// The full serialized journal, one record per line; rewritten
    /// atomically on every append.
    content: String,
}

fn digest(report_json: &str) -> u64 {
    let mut h = dcn_util::FxHasher::default();
    h.write(report_json.as_bytes());
    h.finish()
}

impl RunJournal {
    /// Opens a journal at `path`.
    ///
    /// With `resume = false` any existing file is ignored and overwritten
    /// by the first record. With `resume = true` existing records are
    /// replayed into memory: corrupt or digest-mismatched lines are
    /// reported on stderr and skipped (their jobs re-run), and a missing
    /// file is an empty journal.
    pub fn open(path: impl Into<PathBuf>, resume: bool) -> Result<RunJournal, String> {
        let path = path.into();
        let mut state = State::default();
        if resume {
            match std::fs::read_to_string(&path) {
                Ok(text) => {
                    for (lineno, line) in text.lines().enumerate() {
                        if line.trim().is_empty() {
                            continue;
                        }
                        match Self::parse_line(line) {
                            Ok((key, report)) => {
                                state.content.push_str(line);
                                state.content.push('\n');
                                state.completed.insert(key, report);
                            }
                            Err(e) => {
                                // A torn tail is expected after a hard kill
                                // of a non-atomic writer; anything else is
                                // worth a warning. Either way the job
                                // simply re-runs.
                                eprintln!(
                                    "journal {}: skipping line {}: {e}",
                                    path.display(),
                                    lineno + 1
                                );
                            }
                        }
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(format!("cannot read journal {}: {e}", path.display())),
            }
        }
        Ok(RunJournal {
            path,
            state: Mutex::new(state),
        })
    }

    fn parse_line(line: &str) -> Result<(String, RunReport), String> {
        let v = dcn_util::json::parse_json(line)?;
        let key = v
            .get("key")
            .and_then(|k| k.as_str())
            .ok_or("record is missing 'key'")?
            .to_string();
        let recorded_digest = v
            .get("digest")
            .and_then(|d| d.as_u64())
            .ok_or("record is missing 'digest'")?;
        let report_value = v.get("report").ok_or("record is missing 'report'")?;
        let report = RunReport::from_json_value(report_value)?;
        let actual = digest(&report.to_json());
        if actual != recorded_digest {
            return Err(format!(
                "digest mismatch (recorded {recorded_digest}, recomputed {actual})"
            ));
        }
        Ok((key, report))
    }

    /// The journal's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The completed report recorded under `key`, if any.
    pub fn lookup(&self, key: &str) -> Option<RunReport> {
        self.state.lock().unwrap().completed.get(key).cloned()
    }

    /// Number of completed jobs on record.
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().completed.len()
    }

    /// Whether no jobs are on record.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records a completed job and persists the journal atomically.
    ///
    /// Serialized under the journal's lock: concurrent sweep workers append
    /// whole records in some order, and each persisted state is a valid
    /// journal. A persistence failure panics — continuing would complete
    /// the sweep while silently losing resumability.
    pub fn record(&self, key: &str, report: &RunReport) {
        dcn_util::failpoint::hit("journal.record");
        let mut state = self.state.lock().unwrap();
        let report_json = report.to_json();
        let line = format!(
            "{{\"key\":{},\"digest\":{},\"report\":{}}}\n",
            dcn_util::json::to_json_string(&key).expect("string serialization cannot fail"),
            digest(&report_json),
            report_json
        );
        state.content.push_str(&line);
        state.completed.insert(key.to_string(), report.clone());
        dcn_util::fsx::write_atomic(&self.path, state.content.as_bytes())
            .unwrap_or_else(|e| panic!("cannot persist journal {}: {e}", self.path.display()));
    }
}

static GLOBAL: Mutex<Option<Arc<RunJournal>>> = Mutex::new(None);

/// Installs `journal` as the process-global journal consulted by the
/// supervised executor. Replaces any previous installation.
pub fn install(journal: RunJournal) -> Arc<RunJournal> {
    let journal = Arc::new(journal);
    *GLOBAL.lock().unwrap() = Some(journal.clone());
    journal
}

/// Removes the process-global journal (tests; end of a journaled run).
pub fn uninstall() {
    *GLOBAL.lock().unwrap() = None;
}

/// The installed process-global journal, if any.
pub fn installed() -> Option<Arc<RunJournal>> {
    GLOBAL.lock().unwrap().clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Checkpoint;

    fn report(seed: u64) -> RunReport {
        let total = Checkpoint {
            requests: 100,
            routing_cost: 17 + seed,
            reconfig_cost: 30,
            reconfigurations: 3,
            matched_requests: 80,
            elapsed_secs: 1.0 / 3.0,
        };
        RunReport {
            algorithm: "R-BMA".into(),
            trace: "zipf".into(),
            b: 6,
            alpha: 10,
            seed,
            checkpoints: vec![total],
            total,
        }
    }

    fn tmp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "dcn_journal_{tag}_{}_{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    #[test]
    fn record_then_resume_round_trips_reports_exactly() {
        let path = tmp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        let j = RunJournal::open(&path, false).unwrap();
        j.record("a", &report(1));
        j.record("b", &report(2));
        assert_eq!(j.len(), 2);

        let resumed = RunJournal::open(&path, true).unwrap();
        assert_eq!(resumed.len(), 2);
        assert_eq!(
            resumed.lookup("a").unwrap().to_json(),
            report(1).to_json(),
            "replayed report must re-serialize byte-identically"
        );
        assert!(resumed.lookup("missing").is_none());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn fresh_open_ignores_an_existing_journal() {
        let path = tmp_path("fresh");
        std::fs::write(&path, "garbage\n").unwrap();
        let j = RunJournal::open(&path, false).unwrap();
        assert!(j.is_empty());
        j.record("x", &report(9));
        let resumed = RunJournal::open(&path, true).unwrap();
        assert_eq!(resumed.len(), 1, "garbage must have been overwritten");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_lines_are_skipped_not_trusted() {
        let path = tmp_path("corrupt");
        let _ = std::fs::remove_file(&path);
        let j = RunJournal::open(&path, false).unwrap();
        j.record("good", &report(5));
        // Simulate a torn tail and a digest-tampered record.
        let mut text = std::fs::read_to_string(&path).unwrap();
        let tampered = text.replace("\"digest\":", "\"digest\":9");
        text.push_str(&tampered.lines().next().unwrap().replace("good", "evil"));
        text.push_str("\n{\"key\":\"torn");
        std::fs::write(&path, &text).unwrap();

        let resumed = RunJournal::open(&path, true).unwrap();
        assert_eq!(resumed.len(), 1);
        assert!(resumed.lookup("good").is_some());
        assert!(
            resumed.lookup("evil").is_none(),
            "digest mismatch must drop the record"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_resumes_empty() {
        let path = tmp_path("missing");
        let _ = std::fs::remove_file(&path);
        let j = RunJournal::open(&path, true).unwrap();
        assert!(j.is_empty());
    }
}

//! Cooperative cancellation for long simulation runs.
//!
//! A [`CancelToken`] is a cheap, cloneable flag the supervised sweep
//! executor hands to [`crate::simulator::run`] through
//! [`crate::simulator::SimConfig::cancel`]. The simulator polls it once
//! per serve chunk — never inside the per-request hot loop — so a job
//! whose wall-clock deadline has passed stops at the next chunk boundary
//! and returns its partial report instead of being torn down mid-state.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A cooperative stop signal, optionally carrying a wall-clock deadline.
///
/// The default token is *inert*: it holds no allocation and
/// [`should_stop`](CancelToken::should_stop) is a single `None` check, so
/// unsupervised runs pay nothing for the hook.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Option<Arc<Inner>>);

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// An inert token that never requests a stop.
    pub fn none() -> Self {
        CancelToken(None)
    }

    /// A token that stops only when [`cancel`](CancelToken::cancel) is called.
    pub fn manual() -> Self {
        CancelToken(Some(Arc::new(Inner {
            cancelled: AtomicBool::new(false),
            deadline: None,
        })))
    }

    /// A token that additionally trips once `timeout` has elapsed from now.
    pub fn with_deadline(timeout: Duration) -> Self {
        CancelToken(Some(Arc::new(Inner {
            cancelled: AtomicBool::new(false),
            deadline: Some(Instant::now() + timeout),
        })))
    }

    /// Requests a stop. No-op on an inert token.
    pub fn cancel(&self) {
        if let Some(inner) = &self.0 {
            inner.cancelled.store(true, Ordering::Relaxed);
        }
    }

    /// Whether a stop has been requested (flag only; does not consult the
    /// clock). After a run, this tells the supervisor whether the report it
    /// got back is partial.
    pub fn is_cancelled(&self) -> bool {
        self.0
            .as_ref()
            .is_some_and(|inner| inner.cancelled.load(Ordering::Relaxed))
    }

    /// Polls the token at a chunk boundary: returns `true` when the run
    /// should stop, latching the flag if the deadline has passed so
    /// [`is_cancelled`](CancelToken::is_cancelled) reflects it afterwards.
    #[inline]
    pub fn should_stop(&self) -> bool {
        let Some(inner) = &self.0 else {
            return false;
        };
        if inner.cancelled.load(Ordering::Relaxed) {
            return true;
        }
        if let Some(deadline) = inner.deadline {
            if Instant::now() >= deadline {
                inner.cancelled.store(true, Ordering::Relaxed);
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_token_never_stops() {
        let t = CancelToken::none();
        assert!(!t.should_stop());
        t.cancel();
        assert!(!t.should_stop());
        assert!(!t.is_cancelled());
    }

    #[test]
    fn manual_cancel_is_seen_by_clones() {
        let t = CancelToken::manual();
        let c = t.clone();
        assert!(!c.should_stop());
        t.cancel();
        assert!(c.should_stop());
        assert!(c.is_cancelled());
    }

    #[test]
    fn expired_deadline_latches_the_flag() {
        let t = CancelToken::with_deadline(Duration::ZERO);
        assert!(t.should_stop());
        assert!(t.is_cancelled());
    }

    #[test]
    fn future_deadline_does_not_stop() {
        let t = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!t.should_stop());
        assert!(!t.is_cancelled());
    }
}

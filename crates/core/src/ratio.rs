//! Adversarial fitness: an online algorithm's total cost relative to the
//! static offline baseline (SO-BMA, §3) on the *same* trace.
//!
//! The ratio `total_cost(ALG) / routing_cost(SO-BMA)` is the natural
//! severity measure for adversarial trace search: SO-BMA pays no
//! reconfiguration cost and sees the whole trace in advance, so a high
//! ratio means the trace genuinely exploits the online algorithm's
//! weakness (forced reconfigurations, mispredicted recency) rather than
//! merely being expensive for everyone. The lower-bound construction of
//! §2.4 manifests exactly this way: on the star nemesis every
//! deterministic algorithm's ratio grows with `b`, which is what the
//! adversary search tries to rediscover — and beat — automatically.

use crate::algorithms::{static_offline, AlgorithmKind};
use crate::report::RunReport;
use crate::simulator::{run, SimConfig};
use dcn_topology::DistanceMatrix;
use dcn_traces::Trace;
use std::sync::Arc;

/// One fitness evaluation: the online run, the offline denominator, and
/// their ratio.
#[derive(Clone, Debug)]
pub struct RatioOutcome {
    /// Full report of the online run (checkpoints per [`SimConfig`]).
    pub online: RunReport,
    /// SO-BMA's routing cost on the same trace, clamped to ≥ 1 so the
    /// ratio is always finite (a zero-cost trace means every request was
    /// matched, which only happens on degenerate inputs).
    pub offline_cost: u64,
    /// `online.total.total_cost() / offline_cost`.
    pub ratio: f64,
}

/// Runs `kind` over `trace` and divides its total cost by SO-BMA's
/// routing cost on the same trace.
///
/// The trace must be materialized: the offline baseline aggregates the
/// whole sequence, and the prediction-augmented variant builds its oracle
/// from it. `config.checkpoints` and friends pass through to the online
/// run unchanged.
pub fn cost_ratio_vs_static(
    kind: &AlgorithmKind,
    dm: &Arc<DistanceMatrix>,
    b: usize,
    alpha: u64,
    seed: u64,
    trace: &Trace,
    config: &SimConfig,
) -> RatioOutcome {
    let requests = trace.prefix(trace.len());
    let mut scheduler = if kind.needs_materialized_trace() {
        kind.build_with_trace(dm.clone(), b, alpha, seed, requests)
    } else {
        kind.build_online(dm.clone(), b, alpha, seed)
    };
    let online = run(&mut *scheduler, dm, alpha, trace, config);
    let matching = static_offline::so_bma_matching(dm, requests, b);
    let offline_cost = static_offline::static_routing_cost(dm, requests, &matching).max(1);
    let ratio = online.total.total_cost() as f64 / offline_cost as f64;
    RatioOutcome {
        online,
        offline_cost,
        ratio,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_topology::{builders, Pair};
    use dcn_traces::{star_uniform_source, uniform_trace, RequestSource};

    fn setup(n: usize) -> Arc<DistanceMatrix> {
        Arc::new(DistanceMatrix::between_racks(&builders::leaf_spine(n, 2)))
    }

    #[test]
    fn ratio_is_total_over_offline() {
        let dm = setup(8);
        let trace = uniform_trace(8, 500, 11);
        let out = cost_ratio_vs_static(
            &AlgorithmKind::Bma,
            &dm,
            2,
            10,
            0,
            &trace,
            &SimConfig::default(),
        );
        assert!(out.offline_cost >= 1);
        let expect = out.online.total.total_cost() as f64 / out.offline_cost as f64;
        assert!((out.ratio - expect).abs() < 1e-12);
        assert!(out.ratio > 0.0);
    }

    #[test]
    fn ratio_is_deterministic_for_fixed_inputs() {
        let dm = setup(8);
        let trace = uniform_trace(8, 400, 7);
        let kind = AlgorithmKind::Rbma { lazy: true };
        let a = cost_ratio_vs_static(&kind, &dm, 2, 10, 3, &trace, &SimConfig::default());
        let b = cost_ratio_vs_static(&kind, &dm, 2, 10, 3, &trace, &SimConfig::default());
        assert_eq!(a.online.total.total_cost(), b.online.total.total_cost());
        assert_eq!(a.offline_cost, b.offline_cost);
        assert_eq!(a.ratio, b.ratio);
    }

    #[test]
    fn star_nemesis_ratio_exceeds_one_for_bma() {
        // On the §2.4 lower-bound construction the online algorithm pays
        // reconfigurations and mispredictions the clairvoyant static
        // baseline never does, so its ratio must be strictly above 1.
        let b = 2;
        let spokes = b + 1;
        let dm = setup(spokes + 1);
        let alpha = 10;
        let star = star_uniform_source(spokes, alpha as usize, 50, 21).materialize();
        let out = cost_ratio_vs_static(
            &AlgorithmKind::Bma,
            &dm,
            b,
            alpha,
            0,
            &star,
            &SimConfig::default(),
        );
        assert!(out.ratio > 1.0, "ratio {}", out.ratio);
    }

    #[test]
    fn offline_cost_clamps_to_one() {
        // A trace whose every request lands in the static matching gives
        // SO-BMA routing cost = len (all cost 1), never 0 — but a trivial
        // single-pair trace exercises the clamp path closest: offline cost
        // is len ≥ 1 and the ratio stays finite.
        let dm = setup(4);
        let reqs = vec![Pair::new(0, 1); 50];
        let trace = Trace::new(4, reqs, "const");
        let out = cost_ratio_vs_static(
            &AlgorithmKind::Oblivious,
            &dm,
            1,
            5,
            0,
            &trace,
            &SimConfig::default(),
        );
        assert!(out.offline_cost >= 1);
        assert!(out.ratio.is_finite());
    }
}

//! Batch preprocessing: bucket a serve chunk by rack pair into a
//! reusable slab, so schedulers pay their expensive per-pair reads
//! (matching membership, ℓ-lookup, counter fetch) once per **distinct**
//! pair instead of once per request.
//!
//! Layout after [`PairBuckets::bucket`] (counting-sort by dense pair id):
//!
//! ```text
//! batch:    [ (2,5) (1,3) (2,5) (2,5) (0,1) (1,3) ]   original order kept
//!                │     │     │     │     │     │
//! ids:      [    0     1     0     0     2     1  ]   request → slab slot
//!                                                     (u32, one atomic store)
//! distinct: [ (2,5) (1,3) (0,1) ]                     first-occurrence order
//! counts:   [   3     2     1   ]                     multiplicity per pair
//! slab:     [  S₀    S₁    S₂  ]                      scheduler state S, one
//!                                                     per distinct pair
//! ```
//!
//! The serve pass then walks the batch in **original request order**
//! (mandatory for byte-identical `RunReport`s — RNG draws and evictions
//! are order-sensitive) but every step is a cheap `slab[ids[i]]` load;
//! slow scalar paths run only on the rare state-changing requests and
//! patch the slab entries they invalidate.
//!
//! With an [`IntraPool`], the bucketing scan itself shards by pair
//! ownership (`pair_id % width`): each worker builds a private
//! `WorkerBuckets` over the pairs it owns and stores request ids into
//! disjoint `ids` slots, so the scan is embarrassingly parallel; the
//! worker slabs are concatenated in worker order afterwards. The slab
//! *order* differs across widths but is behavior-neutral — schedulers
//! only ever index it through `ids` — so reports stay byte-identical at
//! any worker count.
//!
//! Everything is reused across chunks: the dense `map` is cleaned by
//! iterating the previous chunk's distinct pairs (not by refilling n²
//! slots), and `ids`/`pairs`/`counts`/`slab` keep their capacity.

use crate::parallel::{IntraPool, ShardSlice};
use dcn_topology::Pair;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Mutex;

/// Above this rack count the dense n²-slot pair map is not worth its
/// memory/reset cost and callers fall back to the unsorted serve path.
pub const DENSE_RACK_LIMIT: usize = 1024;

const EMPTY: u32 = u32::MAX;

#[inline]
fn pair_id(pair: Pair, n: usize) -> usize {
    pair.lo() as usize * n + pair.hi() as usize
}

/// One worker's private bucketing state: a dense pair-id → local-slot
/// map plus the distinct pairs it owns, in first-occurrence order.
struct WorkerBuckets<S> {
    n: usize,
    map: Vec<u32>,
    pairs: Vec<Pair>,
    counts: Vec<u32>,
    states: Vec<S>,
}

impl<S> WorkerBuckets<S> {
    fn new() -> Self {
        WorkerBuckets {
            n: 0,
            map: Vec::new(),
            pairs: Vec::new(),
            counts: Vec::new(),
            states: Vec::new(),
        }
    }

    /// Prepares for a new chunk: clears only the map slots the previous
    /// chunk touched (O(distinct), not O(n²)) unless the topology size
    /// changed.
    fn reset(&mut self, n: usize) {
        if self.n != n {
            self.n = n;
            self.map.clear();
            self.map.resize(n * n, EMPTY);
        } else {
            for &p in &self.pairs {
                self.map[pair_id(p, n)] = EMPTY;
            }
        }
        self.pairs.clear();
        self.counts.clear();
        self.states.clear();
    }
}

/// Reusable chunk-bucketing scratch: request → slab-slot ids plus one
/// scheduler-defined state `S` per distinct pair. See the module docs
/// for the layout.
pub struct PairBuckets<S> {
    n: usize,
    width: usize,
    workers: Vec<Mutex<WorkerBuckets<S>>>,
    ids: Vec<AtomicU32>,
    pairs: Vec<Pair>,
    counts: Vec<u32>,
    slab: Vec<S>,
    offsets: Vec<u32>,
    /// CSR occurrence index ([`Self::build_positions`]): request positions
    /// of slot `j` are `positions[starts[j]..starts[j + 1]]`, ascending.
    starts: Vec<u32>,
    positions: Vec<u32>,
    cursors: Vec<u32>,
}

impl<S> Default for PairBuckets<S> {
    fn default() -> Self {
        PairBuckets {
            n: 0,
            width: 1,
            workers: Vec::new(),
            ids: Vec::new(),
            pairs: Vec::new(),
            counts: Vec::new(),
            slab: Vec::new(),
            offsets: Vec::new(),
            starts: Vec::new(),
            positions: Vec::new(),
            cursors: Vec::new(),
        }
    }
}

impl<S> std::fmt::Debug for PairBuckets<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PairBuckets")
            .field("n", &self.n)
            .field("width", &self.width)
            .field("distinct", &self.pairs.len())
            .finish()
    }
}

impl<S> PairBuckets<S> {
    /// Buckets `batch` over an `n`-rack topology, building one `S` per
    /// distinct pair via `init` (which must be a **pure read** of frozen
    /// scheduler state — it may run on any worker, in any pair order).
    ///
    /// Returns `false` — leaving the scratch untouched for reuse — when
    /// the chunk is not worth bucketing (`n` of zero or above
    /// [`DENSE_RACK_LIMIT`]); callers then serve the unsorted path.
    ///
    /// With `pool`, the scan shards by `pair_id % width`: workers read
    /// the same frozen state and write disjoint slots, and because `init`
    /// is pure, every slab value is identical to the sequential scan's —
    /// only the slab *order* shifts, which nothing observes.
    pub fn bucket<F>(&mut self, batch: &[Pair], n: usize, init: F, pool: Option<&IntraPool>) -> bool
    where
        S: Send,
        F: Fn(Pair) -> S + Sync,
    {
        if n == 0 || n > DENSE_RACK_LIMIT {
            return false;
        }
        let width = pool.map_or(1, IntraPool::width).max(1);
        self.n = n;
        self.width = width;
        while self.workers.len() < width {
            self.workers.push(Mutex::new(WorkerBuckets::new()));
        }
        if self.ids.len() < batch.len() {
            self.ids.resize_with(batch.len(), || AtomicU32::new(EMPTY));
        }

        {
            let workers = &self.workers;
            let ids = &self.ids[..batch.len()];
            let init = &init;
            let scan = move |w: usize| {
                let mut st = workers[w].lock().unwrap();
                st.reset(n);
                let st = &mut *st;
                if width == 1 {
                    for (i, &pair) in batch.iter().enumerate() {
                        let pid = pair_id(pair, n);
                        let mut id = st.map[pid];
                        if id == EMPTY {
                            id = st.pairs.len() as u32;
                            st.map[pid] = id;
                            st.pairs.push(pair);
                            st.counts.push(0);
                            st.states.push(init(pair));
                        }
                        st.counts[id as usize] += 1;
                        ids[i].store(id, Ordering::Relaxed);
                    }
                } else {
                    for (i, &pair) in batch.iter().enumerate() {
                        let pid = pair_id(pair, n);
                        if pid % width != w {
                            continue;
                        }
                        let mut id = st.map[pid];
                        if id == EMPTY {
                            id = st.pairs.len() as u32;
                            st.map[pid] = id;
                            st.pairs.push(pair);
                            st.counts.push(0);
                            st.states.push(init(pair));
                        }
                        st.counts[id as usize] += 1;
                        ids[i].store(id, Ordering::Relaxed);
                    }
                }
            };
            match pool {
                Some(pool) if width > 1 => pool.broadcast(scan),
                _ => scan(0),
            }
        }

        // Merge: concatenate worker slots in worker order. Pairs/counts
        // are copied (the worker keeps its list — reset() needs it to
        // clean the dense map); states are moved.
        self.pairs.clear();
        self.counts.clear();
        self.slab.clear();
        self.offsets.clear();
        for worker in &mut self.workers[..width] {
            let st = worker.get_mut().unwrap();
            self.offsets.push(self.pairs.len() as u32);
            self.pairs.extend_from_slice(&st.pairs);
            self.counts.extend_from_slice(&st.counts);
            self.slab.append(&mut st.states);
        }
        if width > 1 {
            for (i, &pair) in batch.iter().enumerate() {
                let local = *self.ids[i].get_mut();
                let owner = pair_id(pair, n) % width;
                *self.ids[i].get_mut() = local + self.offsets[owner];
            }
        }
        true
    }

    /// Slab slot of request `i` (valid for the last bucketed chunk).
    #[inline]
    pub fn id_at(&self, i: usize) -> usize {
        self.ids[i].load(Ordering::Relaxed) as usize
    }

    /// Distinct pairs of the last bucketed chunk, in slab order.
    pub fn distinct(&self) -> &[Pair] {
        &self.pairs
    }

    /// Multiplicity of each distinct pair, parallel to [`Self::distinct`].
    pub fn counts(&self) -> &[u32] {
        &self.counts
    }

    /// Slab slot of an arbitrary pair, if it occurred in the last
    /// bucketed chunk (used to patch eviction victims).
    pub fn id_of(&self, pair: Pair) -> Option<usize> {
        let pid = pair_id(pair, self.n);
        let owner = if self.width > 1 { pid % self.width } else { 0 };
        let st = self.workers[owner].lock().unwrap();
        if st.n != self.n || pid >= st.map.len() {
            return None;
        }
        match st.map[pid] {
            EMPTY => None,
            local => Some(local as usize + self.offsets[owner] as usize),
        }
    }

    /// Detaches the slab so the caller can mutate it while still calling
    /// `id_at`/`id_of` on `self`; pair it with [`Self::restore_slab`].
    pub fn take_slab(&mut self) -> Vec<S> {
        std::mem::take(&mut self.slab)
    }

    /// Returns a slab taken via [`Self::take_slab`], preserving its
    /// capacity for the next chunk.
    pub fn restore_slab(&mut self, slab: Vec<S>) {
        self.slab = slab;
    }

    /// Builds the CSR occurrence index for the last bucketed chunk of
    /// `len` requests: for every slot `j`, [`Self::positions_of`]`(j)`
    /// lists the original request positions of pair `j`, ascending.
    ///
    /// One prefix sum over the distinct pairs plus one sequential pass
    /// over the (already remapped) `ids` — the batch itself is not
    /// re-read. Schedulers that serve by *schedule* instead of by walking
    /// requests (R-BMA's precomputed special positions) call this right
    /// after [`Self::bucket`].
    pub fn build_positions(&mut self, len: usize) {
        let distinct = self.pairs.len();
        self.starts.clear();
        self.starts.reserve(distinct + 1);
        let mut acc = 0u32;
        self.starts.push(0);
        for &c in &self.counts {
            acc += c;
            self.starts.push(acc);
        }
        self.cursors.clear();
        self.cursors.extend_from_slice(&self.starts[..distinct]);
        self.positions.clear();
        self.positions.resize(len, 0);
        for i in 0..len {
            let slot = self.ids[i].load(Ordering::Relaxed) as usize;
            let cur = self.cursors[slot];
            self.positions[cur as usize] = i as u32;
            self.cursors[slot] = cur + 1;
        }
    }

    /// Ascending request positions of slot `j` (valid after
    /// [`Self::build_positions`]).
    #[inline]
    pub fn positions_of(&self, j: usize) -> &[u32] {
        &self.positions[self.starts[j] as usize..self.starts[j + 1] as usize]
    }

    /// How many occurrences of slot `j` lie strictly after request
    /// position `p` (valid after [`Self::build_positions`]) — the
    /// multiplier for a mid-chunk cost-correction at `p`.
    #[inline]
    pub fn occurrences_after(&self, j: usize, p: u32) -> u32 {
        let seg = self.positions_of(j);
        (seg.len() - seg.partition_point(|&q| q <= p)) as u32
    }
}

/// Chunk-bucketing scratch whose per-pair state **persists across
/// chunks**: a pair keeps its slab slot (and its `S`) for the lifetime
/// of the scheduler, so the expensive per-pair initialization runs once
/// *ever* per pair — not once per chunk — and there is no per-chunk
/// write-back at all.
///
/// [`PairBuckets`] re-derives every slab entry from scheduler state at
/// each chunk; this type instead makes the slab *be* the scheduler
/// state. The contract is therefore inverted: `init` runs only on a
/// pair's first occurrence in the scheduler's lifetime, and the caller
/// must patch slab entries whenever out-of-band mutations (evictions,
/// matching flips) invalidate them — including for pairs absent from
/// the current chunk, which is why [`Self::slot_of`] resolves *any*
/// previously seen pair.
///
/// **Layout: slot ≡ dense pair id.** The slab is addressed directly by
/// `lo·n + hi` (n² entries), so the counting scan is a *single*
/// dependent random access per request — one `(epoch << 16) |
/// multiplicity` tag word decides "seen this chunk?" and yields the
/// running count at once — where a slot-compacted layout would pay a
/// pair-id → slot indirection first. Tags are u32 (16-bit epoch,
/// 16-bit multiplicity) and the CSR index u16, precisely so the arrays
/// the scan hammers stay half the size a naive u64/u32 layout would
/// be; a separate ever-seen bitmap survives the (rare, amortized-free)
/// epoch wrap that clears the tags. The n² arrays are bounded by
/// [`DENSE_RACK_LIMIT`] (the same gate as [`PairBuckets`]) and
/// allocated once per topology.
///
/// Per chunk, [`Self::begin_chunk`] runs the counting scan and builds
/// the CSR occurrence index; [`Self::active`] then lists this chunk's
/// distinct slots. Chunk-scoped accessors ([`Self::count`],
/// [`Self::positions_of`]) are valid for active slots only;
/// [`Self::occurrences_after`] degrades to 0 for slots not in the
/// current chunk, which is exactly the correction multiplier a patch
/// of an absent pair needs.
pub struct PersistentPairSlab<S> {
    n: usize,
    /// Pair-id-indexed state, n² entries; live only where the `ever`
    /// bit is set.
    slab: Vec<S>,
    /// Pair-id-indexed `(epoch << 16) | multiplicity`. A stale (or
    /// zero) epoch = not seen this chunk. The 16-bit epoch wraps every
    /// 65535 chunks, at which point the whole array is cleared (epoch 0
    /// is never current); the 16-bit multiplicity caps the chunk length
    /// ([`Self::begin_chunk`] rejects longer batches).
    tags: Vec<u32>,
    /// Pair-id-indexed "initialized at least once" bitmap — the
    /// ever-seen test must survive the epoch wrap that clears `tags`.
    /// Atomic because one 64-pair word can span several workers'
    /// ownership classes in the sharded scan (`fetch_or` there,
    /// plain `get_mut` ops on the sequential path).
    ever: Vec<AtomicU64>,
    /// Pair-id-indexed CSR start of the current chunk (valid while
    /// active); doubles as the fill cursor during the build. u16 is
    /// enough: offsets are bounded by the 16-bit chunk length.
    sstart: Vec<u16>,
    cursors: Vec<u16>,
    /// Append-only log of every pair ever initialized (store dumps).
    seen: Vec<Pair>,
    /// Current 16-bit tag epoch (1 ≤ epoch ≤ 0xFFFF once any chunk ran).
    epoch: u32,
    /// Times the 16-bit epoch wrapped (telemetry; a topology reset is
    /// not a wrap).
    wraps: u64,
    /// Pair ids occurring in the current chunk, first-occurrence order
    /// (after a sharded chunk: worker-concatenation order — the
    /// consumers are order-independent, see [`Self::begin_chunk_sharded`]).
    active: Vec<u32>,
    /// Worker-boundary prefix offsets into `active` for the last sharded
    /// chunk (`active[bounds[w]..bounds[w+1]]` = worker `w`'s slots);
    /// `[0, active.len()]` after a sequential chunk.
    active_bounds: Vec<u32>,
    /// Request position → pair id, for the current chunk.
    ids: Vec<u32>,
    /// CSR position store (request positions, hence u16 as well).
    positions: Vec<u16>,
    /// Per-worker first-occurrence staging for the sharded counting scan
    /// (locked once per worker per broadcast, merged in worker order).
    worker_active: Vec<Mutex<Vec<u32>>>,
    /// Per-worker staging of first-*ever* pairs (merged into `seen`).
    worker_seen: Vec<Mutex<Vec<Pair>>>,
}

impl<S> Default for PersistentPairSlab<S> {
    fn default() -> Self {
        PersistentPairSlab {
            n: 0,
            slab: Vec::new(),
            tags: Vec::new(),
            ever: Vec::new(),
            sstart: Vec::new(),
            cursors: Vec::new(),
            seen: Vec::new(),
            epoch: 0,
            wraps: 0,
            active: Vec::new(),
            active_bounds: Vec::new(),
            ids: Vec::new(),
            positions: Vec::new(),
            worker_active: Vec::new(),
            worker_seen: Vec::new(),
        }
    }
}

impl<S> std::fmt::Debug for PersistentPairSlab<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PersistentPairSlab")
            .field("n", &self.n)
            .field("seen", &self.seen.len())
            .field("active", &self.active.len())
            .finish()
    }
}

impl<S: Default> PersistentPairSlab<S> {
    /// Drops all slots when the rack universe changes size (slot ids
    /// are topology-relative).
    fn ensure_topology(&mut self, n: usize) {
        if self.n != n {
            self.n = n;
            self.slab.clear();
            self.slab.resize_with(n * n, S::default);
            self.tags.clear();
            self.tags.resize(n * n, 0);
            self.ever.clear();
            self.ever
                .resize_with((n * n).div_ceil(64), || AtomicU64::new(0));
            self.sstart.clear();
            self.sstart.resize(n * n, 0);
            self.cursors.clear();
            self.cursors.resize(n * n, 0);
            self.seen.clear();
            self.active.clear();
            self.epoch = 0;
        }
    }

    /// Slot of `pair`, allocating (and running `init`) if it was never
    /// seen. The out-of-chunk entry point for state migrations.
    pub fn slot_for<F: FnOnce(Pair) -> S>(&mut self, pair: Pair, n: usize, init: F) -> usize {
        self.ensure_topology(n);
        let pid = pair_id(pair, n);
        let (w, b) = (pid / 64, 1u64 << (pid % 64));
        if *self.ever[w].get_mut() & b == 0 {
            self.slab[pid] = init(pair);
            self.seen.push(pair);
            *self.ever[w].get_mut() |= b;
        }
        pid
    }

    /// Opens a chunk: counting scan over `batch` (running `init` only on
    /// first-*ever* occurrences) plus the CSR occurrence index. Returns
    /// `false` — leaving all state untouched — when `n` is zero or above
    /// [`DENSE_RACK_LIMIT`], or the batch exceeds the 16-bit per-chunk
    /// multiplicity field; callers then serve an unsorted path.
    pub fn begin_chunk<F: FnMut(Pair) -> S>(
        &mut self,
        batch: &[Pair],
        n: usize,
        mut init: F,
    ) -> bool {
        if n == 0 || n > DENSE_RACK_LIMIT || batch.len() > u16::MAX as usize {
            return false;
        }
        self.ensure_topology(n);
        self.epoch += 1;
        if self.epoch > 0xFFFF {
            // 16-bit epoch wrap: clear all tags so epoch 0 ("stale")
            // can never alias a current chunk. Once per 65535 chunks.
            self.tags.iter_mut().for_each(|t| *t = 0);
            self.epoch = 1;
            self.wraps += 1;
        }
        let epoch_bits = self.epoch << 16;
        self.active.clear();
        if self.ids.len() < batch.len() {
            self.ids.resize(batch.len(), 0);
        }
        for (i, &pair) in batch.iter().enumerate() {
            let pid = pair_id(pair, n);
            let tag = self.tags[pid];
            if tag & !0xFFFF == epoch_bits {
                self.tags[pid] = tag + 1;
            } else {
                let (w, b) = (pid / 64, 1u64 << (pid % 64));
                if *self.ever[w].get_mut() & b == 0 {
                    self.slab[pid] = init(pair);
                    self.seen.push(pair);
                    *self.ever[w].get_mut() |= b;
                }
                self.tags[pid] = epoch_bits | 1;
                self.active.push(pid as u32);
            }
            self.ids[i] = pid as u32;
        }

        // CSR occurrence index: prefix sum over the active slots, then
        // one sequential pass over `ids` — the batch is not re-read.
        let mut off = 0u16;
        for &pid in &self.active {
            let pid = pid as usize;
            self.sstart[pid] = off;
            self.cursors[pid] = off;
            off = off.wrapping_add((self.tags[pid] & 0xFFFF) as u16);
        }
        self.positions.clear();
        self.positions.resize(batch.len(), 0);
        for (i, &pid) in self.ids[..batch.len()].iter().enumerate() {
            let cur = self.cursors[pid as usize];
            self.positions[cur as usize] = i as u16;
            self.cursors[pid as usize] = cur + 1;
        }
        self.active_bounds.clear();
        self.active_bounds.push(0);
        self.active_bounds.push(self.active.len() as u32);
        true
    }

    /// [`Self::begin_chunk`] with the counting scan and the CSR fill
    /// broadcast across `pool` under `pair_id % width` ownership: every
    /// worker walks the whole batch but touches only the tags, slab
    /// slots and CSR cursors of the pairs it owns (plus the `ids` slot
    /// of each owned request), so all writes are disjoint; first-ever
    /// initialization and first-occurrence slots stage per worker and
    /// merge in worker order. `active` therefore lists this chunk's
    /// distinct slots in worker-concatenation order rather than global
    /// first-occurrence order — behavior-neutral, because every consumer
    /// of `active` is order-independent (commutative accumulation,
    /// idempotent bitmap stores, per-slot closed-form writes).
    ///
    /// Gates and state effects are exactly [`Self::begin_chunk`]'s; a
    /// width-1 pool degrades to the sequential scan.
    pub fn begin_chunk_sharded<F>(
        &mut self,
        batch: &[Pair],
        n: usize,
        init: F,
        pool: &IntraPool,
    ) -> bool
    where
        S: Send,
        F: Fn(Pair) -> S + Sync,
    {
        let width = pool.width();
        if width <= 1 {
            return self.begin_chunk(batch, n, init);
        }
        if n == 0 || n > DENSE_RACK_LIMIT || batch.len() > u16::MAX as usize {
            return false;
        }
        self.ensure_topology(n);
        self.epoch += 1;
        if self.epoch > 0xFFFF {
            self.tags.iter_mut().for_each(|t| *t = 0);
            self.epoch = 1;
            self.wraps += 1;
        }
        let epoch_bits = self.epoch << 16;
        if self.ids.len() < batch.len() {
            self.ids.resize(batch.len(), 0);
        }
        while self.worker_active.len() < width {
            self.worker_active.push(Mutex::new(Vec::new()));
            self.worker_seen.push(Mutex::new(Vec::new()));
        }

        // Broadcast 1: counting/tag scan. SAFETY (for every ShardSlice
        // access below): `tags[pid]`/`slab[pid]` are touched only by the
        // worker owning `pid % width`, and `ids[i]` only by the owner of
        // request i's pair — all indices in bounds (pid < n², i <
        // batch.len()); the broadcast barrier orders these writes before
        // the sequential reads that follow.
        {
            let tags = ShardSlice::new(&mut self.tags);
            let slab = ShardSlice::new(&mut self.slab);
            let ids = ShardSlice::new(&mut self.ids[..batch.len()]);
            let ever = &self.ever;
            let worker_active = &self.worker_active;
            let worker_seen = &self.worker_seen;
            let init = &init;
            pool.broadcast(move |w| {
                let mut active = worker_active[w].lock().unwrap();
                let mut seen = worker_seen[w].lock().unwrap();
                active.clear();
                seen.clear();
                for (i, &pair) in batch.iter().enumerate() {
                    let pid = pair_id(pair, n);
                    if pid % width != w {
                        continue;
                    }
                    unsafe {
                        let tag = tags.read(pid);
                        if tag & !0xFFFF == epoch_bits {
                            tags.write(pid, tag + 1);
                        } else {
                            let (wd, b) = (pid / 64, 1u64 << (pid % 64));
                            // The `ever` word may span ownership classes:
                            // the bit itself is owner-exclusive but the
                            // word is shared, hence the atomic OR.
                            if ever[wd].load(Ordering::Relaxed) & b == 0 {
                                slab.write(pid, init(pair));
                                seen.push(pair);
                                ever[wd].fetch_or(b, Ordering::Relaxed);
                            }
                            tags.write(pid, epoch_bits | 1);
                            active.push(pid as u32);
                        }
                        ids.write(i, pid as u32);
                    }
                }
            });
        }

        // Merge the per-worker stagings (worker order — deterministic
        // for a given width) and lay out the CSR offsets sequentially:
        // O(distinct), off the scan's critical path.
        self.active.clear();
        self.active_bounds.clear();
        self.active_bounds.push(0);
        for w in 0..width {
            self.active
                .extend_from_slice(self.worker_active[w].get_mut().unwrap());
            self.active_bounds.push(self.active.len() as u32);
            self.seen
                .extend_from_slice(self.worker_seen[w].get_mut().unwrap());
        }
        let mut off = 0u16;
        for &pid in &self.active {
            let pid = pid as usize;
            self.sstart[pid] = off;
            self.cursors[pid] = off;
            off = off.wrapping_add((self.tags[pid] & 0xFFFF) as u16);
        }
        self.positions.clear();
        self.positions.resize(batch.len(), 0);

        // Broadcast 2: CSR position fill. SAFETY: `cursors[pid]` is
        // owner-exclusive; each `positions` slot lies inside the CSR
        // region of exactly one pid, hence of exactly one owner; the
        // barrier again orders writes before the caller's reads.
        {
            let ids = &self.ids[..batch.len()];
            let cursors = ShardSlice::new(&mut self.cursors);
            let positions = ShardSlice::new(&mut self.positions);
            pool.broadcast(move |w| {
                for (i, &pid) in ids.iter().enumerate() {
                    let pid = pid as usize;
                    if pid % width != w {
                        continue;
                    }
                    unsafe {
                        let cur = cursors.read(pid);
                        positions.write(cur as usize, i as u16);
                        cursors.write(pid, cur + 1);
                    }
                }
            });
        }
        true
    }

    /// Slots of the current chunk's distinct pairs, first-occurrence
    /// order (worker-concatenation order after a sharded chunk).
    #[inline]
    pub fn active(&self) -> &[u32] {
        &self.active
    }

    /// Worker `w`'s slice of [`Self::active`] for the current chunk —
    /// the slots whose pairs `w` owns, in `w`'s first-occurrence order.
    /// After a sequential chunk only worker 0 is populated.
    #[inline]
    pub fn active_of(&self, w: usize) -> &[u32] {
        if w + 1 >= self.active_bounds.len() {
            return &[];
        }
        let lo = self.active_bounds[w] as usize;
        let hi = self.active_bounds[w + 1] as usize;
        &self.active[lo..hi]
    }

    /// Multiplicity of slot `j` in the current chunk (valid for active
    /// slots).
    #[inline]
    pub fn count(&self, j: usize) -> u32 {
        debug_assert_eq!(self.tags[j] >> 16, self.epoch);
        self.tags[j] & 0xFFFF
    }

    /// Slab slot of request `i` in the current chunk.
    #[inline]
    pub fn id_at(&self, i: usize) -> usize {
        self.ids[i] as usize
    }

    /// Slot of any pair ever seen by this slab — present in the current
    /// chunk or not (patching an eviction victim must reach its
    /// persistent state either way).
    #[inline]
    pub fn slot_of(&self, pair: Pair) -> Option<usize> {
        let pid = pair_id(pair, self.n);
        match self.ever.get(pid / 64) {
            Some(w) if w.load(Ordering::Relaxed) & (1 << (pid % 64)) != 0 => Some(pid),
            _ => None,
        }
    }

    /// Every pair ever initialized, in first-initialization order (the
    /// iteration base for dumping the store back out).
    pub fn seen(&self) -> &[Pair] {
        &self.seen
    }

    /// Number of pairs ever seen.
    pub fn len(&self) -> usize {
        self.seen.len()
    }

    /// Whether no pair was ever seen.
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }

    /// Times the 16-bit tag epoch has wrapped (and cleared the tag
    /// array) over this slab's lifetime — cumulative, for telemetry.
    pub fn epoch_wraps(&self) -> u64 {
        self.wraps
    }

    /// State of `slot` (valid whether or not the slot is active).
    #[inline]
    pub fn state(&self, slot: usize) -> &S {
        &self.slab[slot]
    }

    /// Mutable state of `slot` (valid whether or not the slot is
    /// active).
    #[inline]
    pub fn state_mut(&mut self, slot: usize) -> &mut S {
        &mut self.slab[slot]
    }

    /// Ascending request positions of active slot `j` in the current
    /// chunk.
    #[inline]
    pub fn positions_of(&self, j: usize) -> &[u16] {
        let start = self.sstart[j] as usize;
        &self.positions[start..start + self.count(j) as usize]
    }

    /// Occurrences of slot `j` strictly after request position `p` in
    /// the current chunk — 0 when `j` does not occur in it at all (the
    /// correction multiplier for patching an absent pair).
    #[inline]
    pub fn occurrences_after(&self, j: usize, p: u32) -> u32 {
        if self.tags[j] >> 16 != self.epoch {
            return 0;
        }
        let seg = {
            let start = self.sstart[j] as usize;
            &self.positions[start..start + (self.tags[j] & 0xFFFF) as usize]
        };
        (seg.len() - seg.partition_point(|&q| q as u32 <= p)) as u32
    }

    /// Detaches the slab so the caller can mutate it while still calling
    /// the chunk accessors on `self`; pair with [`Self::restore_slab`].
    pub fn take_slab(&mut self) -> Vec<S> {
        std::mem::take(&mut self.slab)
    }

    /// Returns a slab taken via [`Self::take_slab`].
    pub fn restore_slab(&mut self, slab: Vec<S>) {
        self.slab = slab;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pairs_of(raw: &[(u32, u32)]) -> Vec<Pair> {
        raw.iter().map(|&(a, b)| Pair::new(a, b)).collect()
    }

    #[test]
    fn buckets_group_duplicates_and_keep_request_order() {
        let batch = pairs_of(&[(2, 5), (1, 3), (2, 5), (2, 5), (0, 1), (1, 3)]);
        let mut buckets: PairBuckets<u32> = PairBuckets::default();
        assert!(buckets.bucket(&batch, 8, |p| p.lo() + p.hi(), None));
        assert_eq!(buckets.distinct().len(), 3);
        assert_eq!(buckets.counts().iter().sum::<u32>(), 6);
        for (i, &pair) in batch.iter().enumerate() {
            let id = buckets.id_at(i);
            assert_eq!(buckets.distinct()[id], pair);
            assert_eq!(buckets.id_of(pair), Some(id));
            let slab = buckets.take_slab();
            assert_eq!(slab[id], pair.lo() + pair.hi());
            buckets.restore_slab(slab);
        }
        assert_eq!(buckets.id_of(Pair::new(6, 7)), None);
    }

    #[test]
    fn rebucketing_reuses_scratch_without_leftovers() {
        let mut buckets: PairBuckets<u32> = PairBuckets::default();
        assert!(buckets.bucket(&pairs_of(&[(0, 1), (2, 3)]), 4, |_| 7, None));
        assert!(buckets.bucket(&pairs_of(&[(1, 2), (1, 2)]), 4, |_| 9, None));
        assert_eq!(buckets.distinct(), &[Pair::new(1, 2)]);
        assert_eq!(buckets.counts(), &[2]);
        assert_eq!(buckets.id_of(Pair::new(0, 1)), None, "stale entry leaked");
        // Topology resize keeps it correct too.
        assert!(buckets.bucket(&pairs_of(&[(5, 9)]), 10, |_| 1, None));
        assert_eq!(buckets.distinct(), &[Pair::new(5, 9)]);
    }

    #[test]
    fn oversized_topologies_are_rejected() {
        let mut buckets: PairBuckets<u32> = PairBuckets::default();
        assert!(!buckets.bucket(&pairs_of(&[(0, 1)]), DENSE_RACK_LIMIT + 1, |_| 0, None));
        assert!(!buckets.bucket(&pairs_of(&[]), 0, |_| 0, None));
    }

    #[test]
    fn persistent_slab_inits_once_and_survives_chunks() {
        let mut slab: PersistentPairSlab<u32> = PersistentPairSlab::default();
        let mut inits = 0u32;
        let chunk1 = pairs_of(&[(0, 1), (2, 3), (0, 1)]);
        assert!(slab.begin_chunk(&chunk1, 8, |_| {
            inits += 1;
            inits
        }));
        assert_eq!(inits, 2, "one init per distinct pair");
        assert_eq!(slab.active().len(), 2);
        let a = slab.id_at(0);
        assert_eq!(slab.id_at(2), a);
        assert_eq!(slab.count(a), 2);
        assert_eq!(slab.positions_of(a), &[0, 2]);

        // Second chunk: (0,1) keeps its slot and state, no re-init;
        // the absent pair (2,3) still resolves for patching.
        let chunk2 = pairs_of(&[(0, 1), (4, 5)]);
        assert!(slab.begin_chunk(&chunk2, 8, |_| {
            inits += 1;
            inits
        }));
        assert_eq!(inits, 3, "only the new pair initialized");
        assert_eq!(slab.id_at(0), a);
        assert_eq!(*slab.state(a), 1, "state persisted across chunks");
        assert_eq!(slab.count(a), 1);
        let absent = slab
            .slot_of(Pair::new(2, 3))
            .expect("absent pair keeps its slot");
        assert_eq!(
            slab.occurrences_after(absent, 0),
            0,
            "absent pair has no occurrences"
        );
        assert_eq!(slab.occurrences_after(a, 0), 0);
        let present = slab.slot_of(Pair::new(4, 5)).unwrap();
        assert_eq!(slab.occurrences_after(present, 0), 1);
        assert_eq!(slab.occurrences_after(present, 1), 0);
        assert_eq!(slab.len(), 3);
        assert_eq!(slab.seen()[0], Pair::new(0, 1));
    }

    #[test]
    fn persistent_slab_rejects_oversized_and_resets_on_resize() {
        let mut slab: PersistentPairSlab<u32> = PersistentPairSlab::default();
        assert!(!slab.begin_chunk(&pairs_of(&[(0, 1)]), DENSE_RACK_LIMIT + 1, |_| 0));
        assert!(!slab.begin_chunk(&[], 0, |_| 0));
        assert!(slab.is_empty());

        assert!(slab.begin_chunk(&pairs_of(&[(0, 1)]), 4, |_| 7));
        assert_eq!(slab.len(), 1);
        // Topology resize invalidates slots: everything re-initializes.
        assert!(slab.begin_chunk(&pairs_of(&[(0, 1)]), 6, |_| 9));
        assert_eq!(slab.len(), 1);
        assert_eq!(*slab.state(slab.id_at(0)), 9);
        assert_eq!(slab.slot_of(Pair::new(2, 3)), None);
    }

    #[test]
    fn sharded_scan_matches_sequential_modulo_slab_order() {
        let n = 16u32;
        let batch: Vec<Pair> = (0..500u32)
            .map(|i| Pair::new((i * 7) % n, ((i * 7) % n + 1 + (i * 13) % (n - 1)) % n))
            .collect();
        let mut seq: PairBuckets<u64> = PairBuckets::default();
        assert!(seq.bucket(
            &batch,
            n as usize,
            |p| p.lo() as u64 * 100 + p.hi() as u64,
            None
        ));
        for width in [2usize, 3, 4] {
            let pool = IntraPool::new(width);
            let mut shd: PairBuckets<u64> = PairBuckets::default();
            assert!(shd.bucket(
                &batch,
                n as usize,
                |p| p.lo() as u64 * 100 + p.hi() as u64,
                Some(&pool)
            ));
            assert_eq!(shd.counts().iter().sum::<u32>(), batch.len() as u32);
            assert_eq!(shd.distinct().len(), seq.distinct().len(), "width {width}");
            // Per-request view is identical even though slab order is not.
            let seq_slab = seq.take_slab();
            let shd_slab = shd.take_slab();
            for (i, &pair) in batch.iter().enumerate() {
                assert_eq!(shd.distinct()[shd.id_at(i)], pair);
                assert_eq!(seq_slab[seq.id_at(i)], shd_slab[shd.id_at(i)]);
                assert_eq!(shd.id_of(pair), Some(shd.id_at(i)));
            }
            seq.restore_slab(seq_slab);
            shd.restore_slab(shd_slab);
        }
    }
}

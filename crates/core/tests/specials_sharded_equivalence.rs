//! Specials-heavy intra-sharding equivalence (the PR 9 serve-pass
//! parallelism + specials fast path): at small α nearly every request is
//! a Theorem-1 special, so these traces drive the R-BMA slow path — the
//! hint-clean fast specials, the fault/eviction machinery, the
//! density-dispatch divert to the unsorted fused loop — through the
//! sharded Phase-A charge at every width. The full `RunReport` (totals
//! and every checkpoint field) must be identical across widths 1–4 and
//! against the per-request reference, and the runs must be non-vacuous:
//! specials actually fired (every R-BMA reconfiguration is caused by a
//! special request, so a positive reconfiguration count proves it).

use dcn_core::algorithms::rbma::{Rbma, RemovalMode};
use dcn_core::{run, RunReport, ServeMode, SimConfig};
use dcn_topology::{builders, DistanceMatrix, Pair};
use proptest::prelude::*;
use std::sync::Arc;

/// Specials-heavy trace: alternating permutation and star segments.
/// Permutation laps touch every pair once (distinct-pair chunks, short
/// runs — the worst case for closed-form charging); star segments slam
/// one hub rack (maximal eviction pressure, hence marked-set and
/// fault traffic). Deterministic xorshift, no state shared with the
/// scheduler's RNG.
fn specials_heavy_trace(n: u32, len: usize, seed: u64) -> Vec<Pair> {
    let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    let all: Vec<Pair> = (0..n)
        .flat_map(|a| (a + 1..n).map(move |b| Pair::new(a, b)))
        .collect();
    let mut out = Vec::with_capacity(len);
    let mut perm_i = (next() % all.len() as u64) as usize;
    while out.len() < len {
        // Permutation segment: a stride-walk lap over distinct pairs.
        let seg = 20 + (next() % 60) as usize;
        let stride = 1 + (next() % (all.len() as u64 - 1)) as usize;
        for _ in 0..seg {
            out.push(all[perm_i]);
            perm_i = (perm_i + stride) % all.len();
        }
        // Star segment: hub-concentrated churn.
        let hub = (next() % n as u64) as u32;
        let seg = 20 + (next() % 60) as usize;
        for _ in 0..seg {
            let mut other = (next() % n as u64) as u32;
            if other == hub {
                other = (other + 1) % n;
            }
            out.push(Pair::new(hub, other));
        }
    }
    out.truncate(len);
    out
}

fn assert_reports_identical(a: &RunReport, b: &RunReport, ctx: &str) {
    assert_eq!(a.total.requests, b.total.requests, "{ctx}");
    assert_eq!(a.total.routing_cost, b.total.routing_cost, "{ctx}");
    assert_eq!(a.total.reconfig_cost, b.total.reconfig_cost, "{ctx}");
    assert_eq!(a.total.reconfigurations, b.total.reconfigurations, "{ctx}");
    assert_eq!(a.total.matched_requests, b.total.matched_requests, "{ctx}");
    assert_eq!(a.checkpoints.len(), b.checkpoints.len(), "{ctx}");
    for (x, y) in a.checkpoints.iter().zip(&b.checkpoints) {
        assert_eq!(x.requests, y.requests, "{ctx}");
        assert_eq!(x.routing_cost, y.routing_cost, "{ctx}");
        assert_eq!(x.reconfig_cost, y.reconfig_cost, "{ctx}");
        assert_eq!(x.reconfigurations, y.reconfigurations, "{ctx}");
        assert_eq!(x.matched_requests, y.matched_requests, "{ctx}");
    }
}

fn check_specials_heavy(racks: usize, len: usize, seed: u64, batch: usize, alpha: u64, b: usize) {
    let net = builders::fat_tree_with_racks(racks);
    let dm = Arc::new(DistanceMatrix::between_racks(&net));
    let n = dm.num_racks();
    let trace = specials_heavy_trace(n as u32, len, seed);
    let base = SimConfig {
        checkpoints: vec![len / 3 + 1, len.saturating_sub(1)],
        ..Default::default()
    };
    for mode in [RemovalMode::Lazy, RemovalMode::Strict] {
        let make = || Rbma::new(Arc::clone(&dm), b, alpha, mode, 7);
        // Per-request reference (no batching, no slab, no dispatch).
        let reference = run(
            &mut make(),
            &dm,
            alpha,
            &trace,
            &base
                .clone()
                .with_batch_size(1)
                .with_serve_mode(ServeMode::Unsorted),
        );
        // Non-vacuity: the trace must actually drive the specials slow
        // path. Every R-BMA matching insertion happens inside a special
        // request, so reconfigurations > 0 proves specials fired (and at
        // these α nearly every request is one).
        assert!(
            reference.total.reconfigurations > 0,
            "vacuous trace: no specials fired (α={alpha}, len={len}, seed={seed})"
        );
        for intra in 1usize..=4 {
            let sharded = run(
                &mut make(),
                &dm,
                alpha,
                &trace,
                &base
                    .clone()
                    .with_batch_size(batch)
                    .with_intra_threads(intra),
            );
            assert_reports_identical(
                &sharded,
                &reference,
                &format!("specials-heavy {mode:?} α={alpha} batch={batch} intra={intra}"),
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn sharded_serve_is_exact_on_specials_heavy_traces(
        racks in 6usize..16,
        len in 400usize..2_000,
        seed in 0u64..10_000,
        batch in 32usize..300,
        alpha in 1u64..5,
        b in 2usize..5,
    ) {
        check_specials_heavy(racks, len, seed, batch, alpha, b);
    }
}

/// Pinned corners: α = 1 (every request special), a batch big enough to
/// cross the density-dispatch warmup inside one run, and a trace long
/// enough that the dispatch actually diverts chunks to the unsorted
/// fused loop mid-run (the PR 9 adaptive path).
#[test]
fn pinned_specials_heavy_corners() {
    // Everything special, small caches: maximal fault/eviction churn.
    check_specials_heavy(8, 1_500, 42, 128, 1, 2);
    // Crosses the 1024-request dispatch warmup with α = 4 (fat-tree
    // ℓ ∈ {2,4} ⇒ k_e ∈ {1,2}): the sorted pass serves the first chunks,
    // then the density estimate diverts to the fused loop.
    check_specials_heavy(10, 4_000, 7, 512, 4, 3);
    // Width > chunk count: more workers than work must stay exact.
    check_specials_heavy(6, 450, 3, 512, 2, 2);
}

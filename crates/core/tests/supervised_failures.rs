//! Fault-injection coverage for the supervised sweep executor: injected
//! panics are retried, exhausted budgets quarantine with structured rows,
//! claim-site kills escape supervision (the "process died" simulation),
//! and a kill-and-resume through the journal reproduces the fault-free
//! results exactly.
//!
//! Failpoint state is process-global, and several sites here (`sim.chunk`,
//! `sweep.job_eval`, `sweep.job_claim`) are reached by *any* concurrently
//! running sweep — which is why these tests live in their own integration
//! binary (their own process) and serialize against each other through
//! `FAULT_LOCK`.

use dcn_core::algorithms::AlgorithmKind;
use dcn_core::sweep::{run_jobs, run_jobs_supervised, Job, Supervisor};
use dcn_core::{journal, RunReport};
use dcn_topology::{builders, DistanceMatrix};
use dcn_traces::TraceSpec;
use dcn_util::failpoint;
use std::sync::{Arc, Mutex};
use std::time::Duration;

static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn locked() -> std::sync::MutexGuard<'static, ()> {
    FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn setup() -> Arc<DistanceMatrix> {
    let net = builders::leaf_spine(10, 2);
    Arc::new(DistanceMatrix::between_racks(&net))
}

fn jobs(n: usize) -> Vec<Job> {
    (0..n)
        .map(|i| Job {
            algorithm: AlgorithmKind::Rbma { lazy: true },
            b: 2 + i % 3,
            alpha: 5,
            seed: i as u64,
            checkpoints: vec![1000, 2000],
            trace: TraceSpec::Uniform {
                num_racks: 10,
                len: 3000,
                seed: 7,
            },
        })
        .collect()
}

fn canonical(r: &RunReport) -> String {
    let mut r = r.clone();
    r.total.elapsed_secs = 0.0;
    for c in &mut r.checkpoints {
        c.elapsed_secs = 0.0;
    }
    r.to_json()
}

fn fast_supervisor(scope: &str) -> Supervisor {
    Supervisor::scoped(scope).with_backoff(Duration::ZERO)
}

#[test]
fn injected_panic_is_retried_to_success_and_counted() {
    let _g = locked();
    let dm = setup();
    let js = jobs(4);
    let clean: Vec<String> = run_jobs(&dm, &js, 1).iter().map(canonical).collect();

    // Telemetry coverage for the ISSUE's sweep.* counters rides along:
    // install an enabled sink, run with one injected panic, drain.
    let sink = dcn_telemetry::Telemetry::enabled();
    dcn_telemetry::install_global(sink.clone());
    failpoint::arm(
        "sweep.job_eval",
        failpoint::Action::Panic,
        failpoint::Trigger::Nth(2),
    );
    let outcomes = run_jobs_supervised(&dm, &js, 2, &fast_supervisor("retry"));
    failpoint::disarm("sweep.job_eval");
    dcn_telemetry::install_global(dcn_telemetry::Telemetry::disabled());

    assert_eq!(failpoint::fired("sweep.job_eval"), 0, "disarmed resets");
    for (i, (o, want)) in outcomes.iter().zip(&clean).enumerate() {
        let got = o
            .report()
            .unwrap_or_else(|| panic!("job {i} quarantined despite retry budget"));
        assert_eq!(&canonical(got), want, "job {i} must match the clean run");
    }
    if dcn_telemetry::compiled() {
        let snap = sink.drain();
        assert_eq!(snap.counters.get("sweep.panics_caught"), Some(&1));
        assert_eq!(snap.counters.get("sweep.retries"), Some(&1));
        assert!(!snap.counters.contains_key("sweep.quarantined"));
        let backoff = snap
            .histograms
            .get("sweep.retry_backoff_ns")
            .expect("retry backoff histogram");
        assert_eq!(backoff.count, 1);
    }
}

#[test]
fn exhausted_retries_quarantine_instead_of_aborting() {
    let _g = locked();
    let dm = setup();
    let js = jobs(3);

    // Every chunk of every attempt panics: jobs must exhaust the budget
    // and come back as structured rows while the sweep itself survives.
    failpoint::arm(
        "sim.chunk",
        failpoint::Action::Panic,
        failpoint::Trigger::Always,
    );
    let sup = fast_supervisor("quarantine").with_retries(1);
    let outcomes = run_jobs_supervised(&dm, &js, 2, &sup);
    failpoint::disarm("sim.chunk");

    assert_eq!(outcomes.len(), js.len());
    for (i, o) in outcomes.iter().enumerate() {
        let f = o
            .failure()
            .unwrap_or_else(|| panic!("job {i} should have quarantined"));
        assert_eq!(f.index, i);
        assert_eq!(f.reason, "panic");
        assert_eq!(f.attempts, 2);
        assert!(
            f.detail.contains("sim.chunk"),
            "panic payload should be preserved: {}",
            f.detail
        );
        assert!(f.elapsed_secs >= 0.0);
    }
}

#[test]
fn claim_site_kill_escapes_supervision() {
    let _g = locked();
    let dm = setup();
    let js = jobs(4);

    // The claim site sits outside the per-job catch_unwind by design: a
    // panic there is the simulated process kill, and must unwind out of
    // the supervised fan-out rather than quarantine.
    failpoint::arm(
        "sweep.job_claim",
        failpoint::Action::Panic,
        failpoint::Trigger::Nth(2),
    );
    let r = std::panic::catch_unwind(|| run_jobs_supervised(&dm, &js, 1, &fast_supervisor("kill")));
    failpoint::disarm("sweep.job_claim");
    assert!(r.is_err(), "claim-site panic must kill the sweep");
}

#[test]
fn kill_then_resume_reproduces_the_fault_free_run() {
    let _g = locked();
    let dm = setup();
    let js = jobs(6);
    let clean: Vec<String> = run_jobs(&dm, &js, 1).iter().map(canonical).collect();

    let path =
        std::env::temp_dir().join(format!("dcn_supervised_kill_{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);

    // Run 1: journal fresh, killed at the 4th claim (sequentially, so
    // exactly 3 jobs complete and land in the journal before the kill).
    journal::install(journal::RunJournal::open(&path, false).unwrap());
    failpoint::arm(
        "sweep.job_claim",
        failpoint::Action::Panic,
        failpoint::Trigger::Nth(4),
    );
    let killed =
        std::panic::catch_unwind(|| run_jobs_supervised(&dm, &js, 1, &fast_supervisor("resume")));
    failpoint::disarm("sweep.job_claim");
    journal::uninstall();
    assert!(killed.is_err(), "the armed claim failpoint must kill run 1");

    // Run 2: resume from the journal. Completed jobs replay, the rest run.
    let resumed_journal = journal::RunJournal::open(&path, true).unwrap();
    assert_eq!(resumed_journal.len(), 3, "three jobs before the kill");
    journal::install(resumed_journal);
    let outcomes = run_jobs_supervised(&dm, &js, 4, &fast_supervisor("resume"));
    journal::uninstall();

    for (i, (o, want)) in outcomes.iter().zip(&clean).enumerate() {
        let got = o.report().unwrap_or_else(|| panic!("job {i} missing"));
        assert_eq!(
            &canonical(got),
            want,
            "resumed job {i} must equal the fault-free run"
        );
    }
    // And the journal now holds every job.
    let final_journal = journal::RunJournal::open(&path, true).unwrap();
    assert_eq!(final_journal.len(), js.len());
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn delay_failpoint_slows_but_does_not_change_results() {
    let _g = locked();
    let dm = setup();
    let js = jobs(2);
    let clean: Vec<String> = run_jobs(&dm, &js, 1).iter().map(canonical).collect();

    failpoint::arm(
        "intra.broadcast",
        failpoint::Action::Delay(Duration::from_millis(1)),
        failpoint::Trigger::Percent(50),
    );
    failpoint::arm(
        "sim.chunk",
        failpoint::Action::Delay(Duration::from_millis(1)),
        failpoint::Trigger::Percent(25),
    );
    let outcomes = run_jobs_supervised(&dm, &js, 2, &fast_supervisor("delay"));
    failpoint::disarm("intra.broadcast");
    failpoint::disarm("sim.chunk");

    for (i, (o, want)) in outcomes.iter().zip(&clean).enumerate() {
        assert_eq!(&canonical(o.report().unwrap()), want, "job {i}");
    }
}

//! Property tests for the bucket-sort serve preprocessing: for **every**
//! scheduler with a bucketed `serve_batch` override (R-BMA lazy/strict,
//! BMA over both recency indexes, Oblivious, Rotor) and for schedulers on
//! the default path, the sorted, unsorted, per-request and intra-sharded
//! serve paths must produce exactly equal `RunReport`s — every checkpoint
//! field, not just totals — across batch sizes, duplicate-heavy /
//! permutation / star trace shapes, checkpoint boundaries that land inside
//! batches, verification boundaries coprime to the batch size, and rotor
//! reconfiguration (rotation) boundaries that force the mid-chunk
//! fallback.

use dcn_core::algorithms::bma::{Bma, BmaBTree};
use dcn_core::algorithms::oblivious::Oblivious;
use dcn_core::algorithms::periodic::PeriodicRebuild;
use dcn_core::algorithms::rbma::{Rbma, RemovalMode};
use dcn_core::algorithms::rotor::Rotor;
use dcn_core::{run, OnlineScheduler, RunReport, ServeMode, SimConfig};
use dcn_topology::{builders, DistanceMatrix, Pair};
use proptest::prelude::*;
use std::sync::Arc;

/// The trace shapes the bucketing must stay exact on: long runs of
/// identical pairs (the best case for run-aware upkeep), all-distinct
/// pairs (the worst case), and hub-concentrated churn (the
/// eviction-heavy case).
#[derive(Clone, Copy, Debug)]
enum Shape {
    DuplicateHeavy,
    Permutation,
    Star,
}

/// Deterministic trace synthesis from an xorshift stream — no RNG state
/// shared with the schedulers under test.
fn make_trace(shape: Shape, n: u32, len: usize, seed: u64) -> Vec<Pair> {
    let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    let pair = |a: u64, b: u64| {
        let a = (a % n as u64) as u32;
        let mut b = (b % n as u64) as u32;
        if a == b {
            b = (b + 1) % n;
        }
        Pair::new(a, b)
    };
    let mut out = Vec::with_capacity(len);
    match shape {
        Shape::DuplicateHeavy => {
            // A hot pool of 3 pairs, emitted in runs of 1..=8.
            let pool: Vec<Pair> = (0..3).map(|_| pair(next(), next())).collect();
            while out.len() < len {
                let p = pool[(next() % pool.len() as u64) as usize];
                for _ in 0..=(next() % 8) {
                    out.push(p);
                }
            }
        }
        Shape::Permutation => {
            // Walk all distinct pairs with a stride coprime to the count:
            // within each lap every pair occurs exactly once, so chunks
            // carry no duplicates at all.
            let all: Vec<Pair> = (0..n)
                .flat_map(|a| (a + 1..n).map(move |b| Pair::new(a, b)))
                .collect();
            let mut stride = 1 + (next() % all.len() as u64) as usize;
            while stride > 1 && all.len() % stride == 0 {
                stride -= 1;
            }
            let mut i = (next() % all.len() as u64) as usize;
            for _ in 0..len {
                out.push(all[i]);
                i = (i + stride) % all.len();
            }
        }
        Shape::Star => {
            // Everything hits one hub rack — maximal eviction pressure on
            // that rack's cache / recency list.
            let hub = next() % n as u64;
            for _ in 0..len {
                out.push(pair(hub, next()));
            }
        }
    }
    out.truncate(len);
    out
}

/// Reports must agree on every field except wall-clock time.
fn assert_reports_identical(a: &RunReport, b: &RunReport, ctx: &str) {
    assert_eq!(a.total.requests, b.total.requests, "{ctx}");
    assert_eq!(a.total.routing_cost, b.total.routing_cost, "{ctx}");
    assert_eq!(a.total.reconfig_cost, b.total.reconfig_cost, "{ctx}");
    assert_eq!(a.total.reconfigurations, b.total.reconfigurations, "{ctx}");
    assert_eq!(a.total.matched_requests, b.total.matched_requests, "{ctx}");
    assert_eq!(a.checkpoints.len(), b.checkpoints.len(), "{ctx}");
    for (x, y) in a.checkpoints.iter().zip(&b.checkpoints) {
        assert_eq!(x.requests, y.requests, "{ctx}");
        assert_eq!(x.routing_cost, y.routing_cost, "{ctx}");
        assert_eq!(x.reconfig_cost, y.reconfig_cost, "{ctx}");
        assert_eq!(x.reconfigurations, y.reconfigurations, "{ctx}");
        assert_eq!(x.matched_requests, y.matched_requests, "{ctx}");
    }
}

type Factory = Box<dyn Fn() -> Box<dyn OnlineScheduler>>;

/// Every scheduler the equivalence must hold for: the bucketed overrides
/// (R-BMA in both removal modes, BMA over both recency indexes,
/// Oblivious, Rotor), a short-period rotor whose rotation boundaries fall
/// *inside* chunks (exercising the mid-chunk fallback), and a default-path
/// scheduler (Periodic) as the control.
fn factories(dm: &Arc<DistanceMatrix>, alpha: u64) -> Vec<(&'static str, Factory)> {
    let n = dm.num_racks();
    let d = |f: fn(Arc<DistanceMatrix>, u64) -> Box<dyn OnlineScheduler>| {
        let dm = Arc::clone(dm);
        Box::new(move || f(dm.clone(), alpha)) as Factory
    };
    vec![
        (
            "rbma-lazy",
            d(|dm, a| Box::new(Rbma::new(dm, 3, a, RemovalMode::Lazy, 7))),
        ),
        (
            "rbma-strict",
            d(|dm, a| Box::new(Rbma::new(dm, 3, a, RemovalMode::Strict, 7))),
        ),
        ("bma", d(|dm, a| Box::new(Bma::new(dm, 3, a)))),
        ("bma-btree", d(|dm, a| Box::new(BmaBTree::new(dm, 3, a)))),
        (
            "oblivious",
            Box::new(move || Box::new(Oblivious::new(n, 3))),
        ),
        (
            "rotor-short",
            Box::new(move || Box::new(Rotor::new(n, 2, 5))),
        ),
        (
            "rotor-long",
            Box::new(move || Box::new(Rotor::new(n, 2, 1_000_000))),
        ),
        (
            "periodic-default-path",
            d(|dm, _| Box::new(PeriodicRebuild::new(dm, 3, 50))),
        ),
    ]
}

fn check_all_paths(shape: Shape, racks: usize, len: usize, seed: u64, batch: usize, alpha: u64) {
    let net = builders::fat_tree_with_racks(racks);
    let dm = Arc::new(DistanceMatrix::between_racks(&net));
    // fat_tree_with_racks may round the rack count up — draw pairs from
    // the actual universe so bucketing sees the full id range.
    let n = dm.num_racks();
    let trace = make_trace(shape, n as u32, len, seed);
    // Checkpoints deliberately off the batch grid; verification interval
    // coprime to common batch sizes.
    let base = SimConfig {
        checkpoints: vec![len / 3 + 1, len / 2, len.saturating_sub(1)],
        verify_every: 53,
        ..Default::default()
    };
    for (name, make) in factories(&dm, alpha) {
        let mut reference = make();
        let unbatched = run(
            reference.as_mut(),
            &dm,
            alpha,
            &trace,
            &base
                .clone()
                .with_batch_size(1)
                .with_serve_mode(ServeMode::Unsorted),
        );
        let config = base.clone().with_batch_size(batch);
        let mut s = make();
        let sorted = run(s.as_mut(), &dm, alpha, &trace, &config);
        assert_reports_identical(&sorted, &unbatched, &format!("{name} sorted b={batch}"));
        let mut s = make();
        let unsorted = run(
            s.as_mut(),
            &dm,
            alpha,
            &trace,
            &config.clone().with_serve_mode(ServeMode::Unsorted),
        );
        assert_reports_identical(&unsorted, &unbatched, &format!("{name} unsorted b={batch}"));
        let mut s = make();
        let whole = run(
            s.as_mut(),
            &dm,
            alpha,
            &trace,
            &base.clone().with_batch_size(len.max(1)),
        );
        assert_reports_identical(&whole, &unbatched, &format!("{name} whole-trace batch"));
        for intra in [2usize, 3] {
            let mut s = make();
            let sharded = run(
                s.as_mut(),
                &dm,
                alpha,
                &trace,
                &config.clone().with_intra_threads(intra),
            );
            assert_reports_identical(
                &sharded,
                &unbatched,
                &format!("{name} sharded b={batch} intra={intra}"),
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn every_serve_path_reports_identically(
        shape_sel in 0usize..3,
        racks in 6usize..20,
        len in 60usize..400,
        seed in 0u64..10_000,
        batch in 2usize..130,
        alpha in 1u64..15,
    ) {
        let shape = [Shape::DuplicateHeavy, Shape::Permutation, Shape::Star][shape_sel];
        check_all_paths(shape, racks, len, seed, batch, alpha);
    }
}

/// Pinned worst-case corners the proptest might not draw every run.
#[test]
fn pinned_corner_cases() {
    // Batch size 2 with runs of duplicates; alpha 1 (every request special
    // for uniform-distance R-BMA, instant buys for BMA).
    check_all_paths(Shape::DuplicateHeavy, 8, 200, 42, 2, 1);
    // Star hub churn with a batch larger than the trace.
    check_all_paths(Shape::Star, 16, 150, 7, 1024, 10);
    // Permutation sweep where every pair in a chunk is distinct.
    check_all_paths(Shape::Permutation, 12, 300, 3, 64, 8);
}

//! Telemetry must be a pure observer: for every scheduler, batch size and
//! intra-pool width, a run with an enabled `Telemetry` handle must produce
//! a **byte-identical** `RunReport` (serialized JSON, wall-clock zeroed —
//! the one field defined to vary) to the same run with telemetry disabled.
//! RNG streams, cost accounting and checkpoint grids may not shift by one
//! event. Alongside the identity, the enabled run must actually have
//! recorded something (when the layer is compiled in), so the property
//! cannot pass vacuously.

use dcn_core::algorithms::bma::Bma;
use dcn_core::algorithms::oblivious::Oblivious;
use dcn_core::algorithms::rbma::{Rbma, RemovalMode};
use dcn_core::algorithms::rotor::Rotor;
use dcn_core::{run, OnlineScheduler, RunReport, SimConfig};
use dcn_telemetry::Telemetry;
use dcn_topology::{builders, DistanceMatrix, Pair};
use proptest::prelude::*;
use std::sync::Arc;

/// Deterministic skewed trace from an xorshift stream (hot pairs repeat,
/// so hits, buys, evictions and specials all fire).
fn make_trace(n: u32, len: usize, seed: u64) -> Vec<Pair> {
    let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    (0..len)
        .map(|_| {
            // Square the draw to skew toward low rack ids.
            let a = ((next() % n as u64) * (next() % n as u64) / n as u64) as u32;
            let mut b = (next() % n as u64) as u32;
            if a == b {
                b = (b + 1) % n;
            }
            Pair::new(a, b)
        })
        .collect()
}

/// The report serialization with wall-clock (the one legitimately varying
/// field) zeroed everywhere.
fn canonical_json(mut report: RunReport) -> String {
    report.total.elapsed_secs = 0.0;
    for c in &mut report.checkpoints {
        c.elapsed_secs = 0.0;
    }
    report.to_json()
}

type Factory = Box<dyn Fn() -> Box<dyn OnlineScheduler>>;

fn factories(dm: &Arc<DistanceMatrix>) -> Vec<(&'static str, Factory)> {
    let n = dm.num_racks();
    let d = |f: fn(Arc<DistanceMatrix>) -> Box<dyn OnlineScheduler>| {
        let dm = Arc::clone(dm);
        Box::new(move || f(dm.clone())) as Factory
    };
    vec![
        (
            "rbma-lazy",
            d(|dm| Box::new(Rbma::new(dm, 3, 10, RemovalMode::Lazy, 7))),
        ),
        (
            "rbma-strict",
            d(|dm| Box::new(Rbma::new(dm, 3, 10, RemovalMode::Strict, 7))),
        ),
        ("bma", d(|dm| Box::new(Bma::new(dm, 3, 10)))),
        (
            "oblivious",
            Box::new(move || Box::new(Oblivious::new(n, 3))),
        ),
        ("rotor", Box::new(move || Box::new(Rotor::new(n, 2, 37)))),
    ]
}

fn check_identity(racks: usize, len: usize, seed: u64, batch: usize, intra: usize) {
    let net = builders::fat_tree_with_racks(racks);
    let dm = Arc::new(DistanceMatrix::between_racks(&net));
    let trace = make_trace(dm.num_racks() as u32, len, seed);
    // Checkpoints off the batch grid; explicit disabled baseline so an
    // installed global handle (other tests, other processes) can't leak in.
    let base = SimConfig {
        checkpoints: vec![len / 3 + 1, len.saturating_sub(1)],
        batch_size: batch,
        intra_threads: intra,
        telemetry: Telemetry::disabled(),
        ..SimConfig::default()
    };
    for (name, make) in factories(&dm) {
        let mut s = make();
        let off = run(s.as_mut(), &dm, 10, &trace, &base);
        let sink = Telemetry::enabled();
        let mut s = make();
        let on = run(
            s.as_mut(),
            &dm,
            10,
            &trace,
            &base.clone().with_telemetry(sink.clone()),
        );
        assert_eq!(
            canonical_json(off),
            canonical_json(on),
            "{name} b={batch} intra={intra}: telemetry perturbed the report"
        );
        if dcn_telemetry::compiled() {
            let snap = sink.snapshot();
            assert_eq!(
                snap.counters.get("serve.requests").copied(),
                Some(len as u64),
                "{name}: enabled run must count its requests"
            );
            let hist = snap
                .histograms
                .get("serve.chunk_ns")
                .unwrap_or_else(|| panic!("{name}: chunk latency histogram missing"));
            assert!(hist.count > 0 && hist.percentile(99) >= hist.percentile(50));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn reports_are_byte_identical_with_telemetry_on_or_off(
        racks in 6usize..16,
        len in 60usize..300,
        seed in 0u64..10_000,
        batch in 1usize..130,
        intra in 1usize..4,
    ) {
        check_identity(racks, len, seed, batch, intra);
    }
}

/// Pinned corners: per-request serving, whole-trace batches, widest pool.
#[test]
fn pinned_corner_cases() {
    check_identity(8, 150, 42, 1, 1);
    check_identity(12, 200, 7, 100_000, 1);
    check_identity(10, 200, 3, 64, 3);
}

/// The supervised executor is under the same contract: with the sink on,
/// its retry/quarantine accounting may not shift a single reported byte,
/// and the new `sweep.*` supervision counters flow into the registry the
/// sweep executor already feeds.
#[test]
fn supervised_sweep_reports_identical_with_telemetry_on_or_off() {
    use dcn_core::algorithms::AlgorithmKind;
    use dcn_core::sweep::{run_jobs_supervised, Job, Supervisor};
    use dcn_traces::TraceSpec;

    let net = builders::fat_tree_with_racks(12);
    let dm = Arc::new(DistanceMatrix::between_racks(&net));
    let jobs: Vec<Job> = (0..5u64)
        .map(|seed| Job {
            algorithm: AlgorithmKind::Rbma { lazy: true },
            b: 3,
            alpha: 10,
            seed,
            checkpoints: vec![800],
            trace: TraceSpec::Uniform {
                num_racks: 12,
                len: 2000,
                seed: 3,
            },
        })
        .collect();
    let sup = Supervisor::scoped("telem");

    // Off: whatever global handle is installed right now is disabled (no
    // test in this binary installs one before this point).
    let off: Vec<String> = run_jobs_supervised(&dm, &jobs, 2, &sup)
        .iter()
        .map(|o| canonical_json(o.report().expect("failure-free").clone()))
        .collect();

    // On: supervised runs pick the sink up through the global handle, the
    // same way `repro_figures --telemetry` wires it.
    let sink = Telemetry::enabled();
    dcn_telemetry::install_global(sink.clone());
    let on: Vec<String> = run_jobs_supervised(&dm, &jobs, 2, &sup)
        .iter()
        .map(|o| canonical_json(o.report().expect("failure-free").clone()))
        .collect();
    dcn_telemetry::install_global(Telemetry::disabled());

    assert_eq!(off, on, "telemetry perturbed a supervised sweep");
    if dcn_telemetry::compiled() {
        let snap = sink.drain();
        assert_eq!(snap.counters.get("sweep.jobs").copied(), Some(5));
        assert_eq!(
            snap.counters.get("serve.requests").copied(),
            Some(5 * 2000),
            "each supervised job must flush its serve counters"
        );
        // Failure-free: the supervision counters stay silent rather than
        // emitting zero-valued noise.
        assert!(!snap.counters.contains_key("sweep.retries"));
        assert!(!snap.counters.contains_key("sweep.quarantined"));
    }
}

//! Compact undirected graph in CSR (compressed sparse row) form.
//!
//! The simulator performs BFS over switch-level topologies of at most a few
//! hundred nodes, but does so once per rack per experiment; CSR keeps that
//! cache-friendly and allocation-free per traversal.

use std::collections::VecDeque;

/// Node identifier within a [`Graph`].
pub type NodeId = u32;

/// Incremental edge-list builder for [`Graph`].
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    num_nodes: usize,
    edges: Vec<(NodeId, NodeId)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `num_nodes` isolated nodes.
    pub fn new(num_nodes: usize) -> Self {
        Self {
            num_nodes,
            edges: Vec::new(),
        }
    }

    /// Adds an undirected edge `{u, v}`.
    ///
    /// Self-loops and duplicate edges are rejected with a panic: the
    /// datacenter topologies built in this workspace never contain them, so
    /// their appearance indicates a builder bug.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> &mut Self {
        assert!(u != v, "self-loop {u}");
        assert!(
            (u as usize) < self.num_nodes && (v as usize) < self.num_nodes,
            "edge out of range"
        );
        self.edges.push((u, v));
        self
    }

    /// Finalizes into a CSR graph. Panics on duplicate edges.
    pub fn build(&self) -> Graph {
        let n = self.num_nodes;
        let mut degree = vec![0u32; n];
        for &(u, v) in &self.edges {
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0u32;
        offsets.push(0);
        for d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut neighbors = vec![0 as NodeId; 2 * self.edges.len()];
        for &(u, v) in &self.edges {
            neighbors[cursor[u as usize] as usize] = v;
            cursor[u as usize] += 1;
            neighbors[cursor[v as usize] as usize] = u;
            cursor[v as usize] += 1;
        }
        let graph = Graph {
            offsets,
            neighbors,
            num_edges: self.edges.len(),
        };
        graph.assert_simple();
        graph
    }
}

/// Immutable undirected graph in CSR form.
#[derive(Clone, Debug)]
pub struct Graph {
    /// `offsets[v]..offsets[v+1]` indexes `neighbors` for node `v`.
    offsets: Vec<u32>,
    neighbors: Vec<NodeId>,
    num_edges: usize,
}

impl Graph {
    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Degree of node `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    /// Neighbors of node `v`.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.neighbors[self.offsets[v as usize] as usize..self.offsets[v as usize + 1] as usize]
    }

    /// Breadth-first distances (in hops) from `source` to every node;
    /// `u32::MAX` marks unreachable nodes. `scratch` is reused across calls
    /// to avoid reallocation; it is resized as needed.
    pub fn bfs_into(&self, source: NodeId, dist: &mut Vec<u32>, queue: &mut VecDeque<NodeId>) {
        let n = self.num_nodes();
        dist.clear();
        dist.resize(n, u32::MAX);
        queue.clear();
        dist[source as usize] = 0;
        queue.push_back(source);
        while let Some(u) = queue.pop_front() {
            let du = dist[u as usize];
            for &w in self.neighbors(u) {
                if dist[w as usize] == u32::MAX {
                    dist[w as usize] = du + 1;
                    queue.push_back(w);
                }
            }
        }
    }

    /// Convenience wrapper around [`Graph::bfs_into`] allocating fresh buffers.
    pub fn bfs(&self, source: NodeId) -> Vec<u32> {
        let mut dist = Vec::new();
        let mut queue = VecDeque::new();
        self.bfs_into(source, &mut dist, &mut queue);
        dist
    }

    /// Whether the graph is connected (true for the empty graph).
    pub fn is_connected(&self) -> bool {
        if self.num_nodes() == 0 {
            return true;
        }
        self.bfs(0).iter().all(|&d| d != u32::MAX)
    }

    fn assert_simple(&self) {
        for v in 0..self.num_nodes() as NodeId {
            let nb = self.neighbors(v);
            let mut sorted: Vec<NodeId> = nb.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), nb.len(), "duplicate edge at node {v}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> Graph {
        let mut b = GraphBuilder::new(n);
        for i in 0..n - 1 {
            b.add_edge(i as NodeId, (i + 1) as NodeId);
        }
        b.build()
    }

    #[test]
    fn csr_layout() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1)
            .add_edge(1, 2)
            .add_edge(2, 3)
            .add_edge(3, 0);
        let g = b.build();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 4);
        for v in 0..4 {
            assert_eq!(g.degree(v), 2);
        }
        let mut nb: Vec<_> = g.neighbors(0).to_vec();
        nb.sort_unstable();
        assert_eq!(nb, vec![1, 3]);
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = path_graph(5);
        assert_eq!(g.bfs(0), vec![0, 1, 2, 3, 4]);
        assert_eq!(g.bfs(2), vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn disconnected_detected() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1).add_edge(2, 3);
        let g = b.build();
        assert!(!g.is_connected());
        assert_eq!(g.bfs(0)[2], u32::MAX);
        assert!(path_graph(3).is_connected());
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn rejects_self_loop() {
        GraphBuilder::new(2).add_edge(1, 1);
    }

    #[test]
    #[should_panic(expected = "duplicate edge")]
    fn rejects_duplicate_edge() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1).add_edge(1, 0);
        b.build();
    }

    #[test]
    fn bfs_into_reuses_buffers() {
        let g = path_graph(6);
        let mut dist = Vec::new();
        let mut queue = VecDeque::new();
        g.bfs_into(1, &mut dist, &mut queue);
        assert_eq!(dist, vec![1, 0, 1, 2, 3, 4]);
        g.bfs_into(5, &mut dist, &mut queue);
        assert_eq!(dist, vec![5, 4, 3, 2, 1, 0]);
    }
}

//! Unordered rack pairs — the request/matching-edge currency of the model.
//!
//! A request is a pair `{s, t} ∈ V²` (§1.1); a matching edge is likewise an
//! unordered pair. `Pair` normalizes the order and packs into a `u64` so it
//! can serve as a cheap hash key throughout the workspace.

use crate::graph::NodeId;

/// An unordered pair of distinct rack indices, stored with `lo() < hi()`.
///
/// Layout contract (audited for the batched serve path): `repr(transparent)`
/// over the packed `u64`, so a `[Pair]` batch buffer is a flat `u64` array —
/// equality is one integer compare, membership scans of adjacency blocks
/// are branch-light sequential loads, and the accessors below compile to a
/// shift/mask each (all `#[inline]`, no bounds checks).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(transparent)]
pub struct Pair(u64);

impl Pair {
    /// Creates a pair; panics if `a == b` (requests are between distinct racks).
    #[inline]
    pub fn new(a: NodeId, b: NodeId) -> Self {
        assert!(a != b, "pair endpoints must differ (got {a})");
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        Pair(((lo as u64) << 32) | hi as u64)
    }

    /// Smaller endpoint.
    #[inline]
    pub fn lo(self) -> NodeId {
        (self.0 >> 32) as NodeId
    }

    /// Larger endpoint.
    #[inline]
    pub fn hi(self) -> NodeId {
        self.0 as NodeId
    }

    /// Both endpoints as `(lo, hi)`.
    #[inline]
    pub fn endpoints(self) -> (NodeId, NodeId) {
        (self.lo(), self.hi())
    }

    /// Given one endpoint, returns the other; panics if `v` is not an endpoint.
    #[inline]
    pub fn other(self, v: NodeId) -> NodeId {
        if v == self.lo() {
            self.hi()
        } else if v == self.hi() {
            self.lo()
        } else {
            panic!("{v} is not an endpoint of {self:?}")
        }
    }

    /// Whether `v` is one of the endpoints.
    #[inline]
    pub fn contains(self, v: NodeId) -> bool {
        v == self.lo() || v == self.hi()
    }

    /// Packed representation (usable as a dense/stable key).
    #[inline]
    pub fn packed(self) -> u64 {
        self.0
    }

    /// Rebuilds from [`Pair::packed`].
    #[inline]
    pub fn from_packed(packed: u64) -> Self {
        let p = Pair(packed);
        debug_assert!(p.lo() < p.hi());
        p
    }
}

impl std::fmt::Display for Pair {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{{}, {}}}", self.lo(), self.hi())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalizes_order() {
        assert_eq!(Pair::new(3, 7), Pair::new(7, 3));
        assert_eq!(Pair::new(3, 7).lo(), 3);
        assert_eq!(Pair::new(3, 7).hi(), 7);
    }

    #[test]
    fn other_endpoint() {
        let p = Pair::new(2, 9);
        assert_eq!(p.other(2), 9);
        assert_eq!(p.other(9), 2);
        assert!(p.contains(2) && p.contains(9) && !p.contains(5));
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn other_rejects_non_endpoint() {
        Pair::new(2, 9).other(4);
    }

    #[test]
    #[should_panic(expected = "must differ")]
    fn rejects_degenerate() {
        Pair::new(5, 5);
    }

    #[test]
    fn packed_roundtrip() {
        let p = Pair::new(123, 456);
        assert_eq!(Pair::from_packed(p.packed()), p);
    }

    #[test]
    fn display() {
        assert_eq!(Pair::new(9, 2).to_string(), "{2, 9}");
    }
}

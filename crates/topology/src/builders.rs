//! Datacenter topology generators.
//!
//! Each builder returns a [`Network`]: the switch-level graph plus the list
//! of nodes that host racks (top-of-rack switches). Requests are exchanged
//! between racks only; the remaining nodes (aggregation/spine/core switches)
//! exist to define routing distances.

use crate::graph::{Graph, GraphBuilder, NodeId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A fixed network: switch graph plus the subset of nodes that are racks.
#[derive(Clone, Debug)]
pub struct Network {
    /// The switch-level topology (`G = (V, F)` in the paper).
    pub graph: Graph,
    /// Nodes acting as top-of-rack switches; request endpoints index into
    /// this list (rack `i` is node `racks[i]`).
    pub racks: Vec<NodeId>,
    /// Human-readable name for reports.
    pub name: String,
}

impl Network {
    /// Number of racks (the `|V|` of the matching problem).
    pub fn num_racks(&self) -> usize {
        self.racks.len()
    }
}

/// A `k`-ary fat-tree (Al-Fares et al. \[3\]): `k` pods of `k/2` edge and `k/2`
/// aggregation switches plus `(k/2)²` core switches. Racks are the edge
/// switches: `k²/2` racks total. `k` must be even and ≥ 2.
///
/// Rack-to-rack distances are 2 (same pod) or 4 (different pods).
pub fn fat_tree(k: usize) -> Network {
    assert!(
        k >= 2 && k.is_multiple_of(2),
        "fat-tree arity must be even and >= 2 (got {k})"
    );
    let half = k / 2;
    let num_edge = k * half;
    let num_agg = k * half;
    let num_core = half * half;
    let n = num_edge + num_agg + num_core;
    // Layout: [edge switches | aggregation switches | core switches].
    let edge_id = |pod: usize, i: usize| (pod * half + i) as NodeId;
    let agg_id = |pod: usize, i: usize| (num_edge + pod * half + i) as NodeId;
    let core_id = |g: usize, j: usize| (num_edge + num_agg + g * half + j) as NodeId;

    let mut b = GraphBuilder::new(n);
    for pod in 0..k {
        for e in 0..half {
            for a in 0..half {
                b.add_edge(edge_id(pod, e), agg_id(pod, a));
            }
        }
        // Aggregation switch `a` of each pod uplinks to core group `a`.
        for a in 0..half {
            for j in 0..half {
                b.add_edge(agg_id(pod, a), core_id(a, j));
            }
        }
    }
    let racks = (0..num_edge as NodeId).collect();
    Network {
        graph: b.build(),
        racks,
        name: format!("fat-tree(k={k})"),
    }
}

/// A fat-tree with at least `min_racks` racks, exposing exactly `min_racks`
/// of its edge switches as racks (the paper simulates 100 racks on a
/// fat-tree, which is not a power-of-k/2 count).
pub fn fat_tree_with_racks(min_racks: usize) -> Network {
    assert!(min_racks >= 1);
    let mut k = 2;
    while k * (k / 2) < min_racks {
        k += 2;
    }
    let mut net = fat_tree(k);
    net.racks.truncate(min_racks);
    net.name = format!("fat-tree(k={k}, racks={min_racks})");
    net
}

/// Two-tier leaf–spine Clos: every leaf connects to every spine. Racks are
/// the leaves; every rack pair is 2 hops apart.
pub fn leaf_spine(leaves: usize, spines: usize) -> Network {
    assert!(leaves >= 1 && spines >= 1);
    let mut b = GraphBuilder::new(leaves + spines);
    for l in 0..leaves {
        for s in 0..spines {
            b.add_edge(l as NodeId, (leaves + s) as NodeId);
        }
    }
    let racks = (0..leaves as NodeId).collect();
    Network {
        graph: b.build(),
        racks,
        name: format!("leaf-spine({leaves}x{spines})"),
    }
}

/// Star: node 0 is the hub, nodes `1..=leaves` are spokes. **All** nodes are
/// racks (the lower-bound construction of §2.4 sends requests `{v0, vi}`).
/// Hub–spoke distance is 1, spoke–spoke distance is 2.
pub fn star(leaves: usize) -> Network {
    assert!(leaves >= 1);
    let mut b = GraphBuilder::new(leaves + 1);
    for i in 1..=leaves {
        b.add_edge(0, i as NodeId);
    }
    let racks = (0..=leaves as NodeId).collect();
    Network {
        graph: b.build(),
        racks,
        name: format!("star({leaves})"),
    }
}

/// Cycle of `n ≥ 3` nodes; all nodes are racks.
pub fn ring(n: usize) -> Network {
    assert!(n >= 3, "ring needs at least 3 nodes");
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        b.add_edge(i as NodeId, ((i + 1) % n) as NodeId);
    }
    Network {
        graph: b.build(),
        racks: (0..n as NodeId).collect(),
        name: format!("ring({n})"),
    }
}

/// 2-D torus of `rows × cols` (each ≥ 3 to stay simple); all nodes are racks.
pub fn torus(rows: usize, cols: usize) -> Network {
    assert!(rows >= 3 && cols >= 3, "torus dimensions must be >= 3");
    let id = |r: usize, c: usize| (r * cols + c) as NodeId;
    let mut b = GraphBuilder::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            b.add_edge(id(r, c), id(r, (c + 1) % cols));
            b.add_edge(id(r, c), id((r + 1) % rows, c));
        }
    }
    Network {
        graph: b.build(),
        racks: (0..(rows * cols) as NodeId).collect(),
        name: format!("torus({rows}x{cols})"),
    }
}

/// Hypercube of dimension `dim` (`2^dim` nodes); all nodes are racks.
/// Distances equal Hamming distances between node indices.
pub fn hypercube(dim: usize) -> Network {
    assert!((1..=20).contains(&dim), "hypercube dimension out of range");
    let n = 1usize << dim;
    let mut b = GraphBuilder::new(n);
    for v in 0..n {
        for bit in 0..dim {
            let w = v ^ (1 << bit);
            if v < w {
                b.add_edge(v as NodeId, w as NodeId);
            }
        }
    }
    Network {
        graph: b.build(),
        racks: (0..n as NodeId).collect(),
        name: format!("hypercube({dim})"),
    }
}

/// Random `d`-regular graph on `n` nodes (Jellyfish-style expander \[68\]),
/// built with the pairing model and resampled until simple and connected.
/// Requires `n * d` even, `d < n`. All nodes are racks.
pub fn random_regular(n: usize, d: usize, seed: u64) -> Network {
    assert!(
        n >= 2 && d >= 1 && d < n,
        "invalid regular graph parameters"
    );
    assert!((n * d).is_multiple_of(2), "n*d must be even");
    let mut rng = StdRng::seed_from_u64(seed);
    'attempt: for _ in 0..1000 {
        // Pairing model: each node owns d stubs; match stubs uniformly.
        let mut stubs: Vec<NodeId> = (0..n as NodeId)
            .flat_map(|v| std::iter::repeat_n(v, d))
            .collect();
        // Fisher-Yates shuffle.
        for i in (1..stubs.len()).rev() {
            let j = rng.random_range(0..=i);
            stubs.swap(i, j);
        }
        let mut seen = std::collections::HashSet::new();
        let mut b = GraphBuilder::new(n);
        for chunk in stubs.chunks_exact(2) {
            let (u, v) = (chunk[0], chunk[1]);
            if u == v || !seen.insert((u.min(v), u.max(v))) {
                continue 'attempt; // self-loop or multi-edge: resample
            }
            b.add_edge(u, v);
        }
        let g = b.build();
        if g.is_connected() {
            return Network {
                graph: g,
                racks: (0..n as NodeId).collect(),
                name: format!("random-regular(n={n}, d={d})"),
            };
        }
    }
    panic!("failed to sample a connected simple {d}-regular graph on {n} nodes");
}

/// Complete graph on `n` nodes; all distances 1; all nodes are racks.
/// The degenerate baseline where the fixed network already connects
/// everything directly (matching edges can never help).
pub fn complete(n: usize) -> Network {
    assert!(n >= 2);
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            b.add_edge(u as NodeId, v as NodeId);
        }
    }
    Network {
        graph: b.build(),
        racks: (0..n as NodeId).collect(),
        name: format!("complete({n})"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fat_tree_counts() {
        let net = fat_tree(4);
        // 8 edge + 8 agg + 4 core = 20 switches; 8 racks.
        assert_eq!(net.graph.num_nodes(), 20);
        assert_eq!(net.num_racks(), 8);
        // Edges: k pods * (half*half edge-agg) + k pods * (half*half agg-core)
        // = 4*4 + 4*4 = 32.
        assert_eq!(net.graph.num_edges(), 32);
        assert!(net.graph.is_connected());
        // Every edge switch has half = 2 uplinks.
        for &r in &net.racks {
            assert_eq!(net.graph.degree(r), 2);
        }
    }

    #[test]
    fn fat_tree_with_racks_covers_paper_sizes() {
        let net100 = fat_tree_with_racks(100);
        assert_eq!(net100.num_racks(), 100);
        assert!(net100.graph.is_connected());
        let net50 = fat_tree_with_racks(50);
        assert_eq!(net50.num_racks(), 50);
    }

    #[test]
    fn leaf_spine_structure() {
        let net = leaf_spine(10, 4);
        assert_eq!(net.graph.num_nodes(), 14);
        assert_eq!(net.graph.num_edges(), 40);
        assert_eq!(net.num_racks(), 10);
        for l in 0..10 {
            assert_eq!(net.graph.degree(l), 4);
        }
    }

    #[test]
    fn star_includes_hub_as_rack() {
        let net = star(5);
        assert_eq!(net.num_racks(), 6);
        assert_eq!(net.graph.degree(0), 5);
    }

    #[test]
    fn ring_and_torus_regular() {
        let r = ring(7);
        for v in 0..7 {
            assert_eq!(r.graph.degree(v), 2);
        }
        let t = torus(3, 4);
        assert_eq!(t.graph.num_nodes(), 12);
        for v in 0..12 {
            assert_eq!(t.graph.degree(v), 4);
        }
        assert!(t.graph.is_connected());
    }

    #[test]
    fn hypercube_structure() {
        let h = hypercube(4);
        assert_eq!(h.graph.num_nodes(), 16);
        for v in 0..16 {
            assert_eq!(h.graph.degree(v), 4);
        }
        // Distance = Hamming distance.
        let d = h.graph.bfs(0);
        for v in 0..16u32 {
            assert_eq!(d[v as usize], v.count_ones());
        }
    }

    #[test]
    fn random_regular_is_regular_connected_and_deterministic() {
        let g1 = random_regular(30, 3, 42);
        let g2 = random_regular(30, 3, 42);
        assert!(g1.graph.is_connected());
        for v in 0..30 {
            assert_eq!(g1.graph.degree(v), 3);
            assert_eq!(g2.graph.degree(v), 3);
        }
        // Same seed, same graph.
        for v in 0..30 {
            assert_eq!(g1.graph.neighbors(v), g2.graph.neighbors(v));
        }
    }

    #[test]
    fn complete_distances() {
        let c = complete(6);
        assert_eq!(c.graph.num_edges(), 15);
        assert!(c.graph.bfs(0).iter().skip(1).all(|&d| d == 1));
    }
}

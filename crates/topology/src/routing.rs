//! Shortest-path routing and link-load accounting.
//!
//! The cost model of §1.1 charges `ℓ_e` hops per fixed-network request —
//! the “bandwidth tax” \[56\]: every extra hop consumes capacity on another
//! link. This module makes that tax concrete: it extracts actual
//! shortest paths, spreads traffic over equal-cost multipaths (ECMP, the
//! standard fat-tree practice), and accounts per-link load, so experiments
//! can report not just hop costs but the induced link-utilization profile
//! that motivates reconfigurable shortcuts in the first place.

use crate::builders::Network;
use crate::graph::{Graph, NodeId};
use crate::pair::Pair;
use dcn_util::FxHashMap;
use std::collections::VecDeque;

/// A directed link `u -> v` of the switch graph.
pub type Link = (NodeId, NodeId);

/// Single-source shortest-path DAG: for each node, its predecessors on
/// shortest paths from the source and the number of such paths.
#[derive(Clone, Debug)]
pub struct SpDag {
    /// Source node.
    pub source: NodeId,
    /// `dist[v]`: hop distance from the source (u32::MAX if unreachable).
    pub dist: Vec<u32>,
    /// `preds[v]`: neighbors of v that lie on a shortest source→v path.
    pub preds: Vec<Vec<NodeId>>,
    /// `count[v]`: number of distinct shortest source→v paths (saturating).
    pub count: Vec<u64>,
}

impl SpDag {
    /// BFS from `source`, recording all shortest-path predecessors.
    pub fn build(graph: &Graph, source: NodeId) -> Self {
        let n = graph.num_nodes();
        let mut dist = vec![u32::MAX; n];
        let mut preds: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        let mut count = vec![0u64; n];
        let mut queue = VecDeque::new();
        dist[source as usize] = 0;
        count[source as usize] = 1;
        queue.push_back(source);
        while let Some(u) = queue.pop_front() {
            let du = dist[u as usize];
            for &w in graph.neighbors(u) {
                if dist[w as usize] == u32::MAX {
                    dist[w as usize] = du + 1;
                    queue.push_back(w);
                }
                if dist[w as usize] == du + 1 {
                    preds[w as usize].push(u);
                    count[w as usize] = count[w as usize].saturating_add(count[u as usize]);
                }
            }
        }
        Self {
            source,
            dist,
            preds,
            count,
        }
    }

    /// One canonical shortest path source→`target` (lexicographically
    /// smallest predecessor chain), or `None` if unreachable.
    pub fn path_to(&self, target: NodeId) -> Option<Vec<NodeId>> {
        if self.dist[target as usize] == u32::MAX {
            return None;
        }
        let mut path = vec![target];
        let mut cur = target;
        while cur != self.source {
            let &p = self.preds[cur as usize]
                .iter()
                .min()
                .expect("reachable node has preds");
            path.push(p);
            cur = p;
        }
        path.reverse();
        Some(path)
    }

    /// Number of shortest paths to `target`.
    pub fn num_paths(&self, target: NodeId) -> u64 {
        self.count[target as usize]
    }
}

/// Per-link load ledger over a switch topology, with ECMP traffic splitting.
///
/// Loads are fractional because ECMP splits a request's unit of traffic
/// equally over all shortest paths (the fluid model standard in
/// throughput analyses \[2, 58\]).
#[derive(Clone, Debug)]
pub struct LinkLoads {
    loads: FxHashMap<Link, f64>,
    /// Total traffic units routed (requests × hops, fractional).
    pub total_hop_traffic: f64,
}

impl Default for LinkLoads {
    fn default() -> Self {
        Self::new()
    }
}

impl LinkLoads {
    /// Empty ledger.
    pub fn new() -> Self {
        Self {
            loads: FxHashMap::default(),
            total_hop_traffic: 0.0,
        }
    }

    /// Adds `amount` units on the directed link.
    pub fn add(&mut self, link: Link, amount: f64) {
        *self.loads.entry(link).or_insert(0.0) += amount;
        self.total_hop_traffic += amount;
    }

    /// Load of a directed link.
    pub fn get(&self, link: Link) -> f64 {
        self.loads.get(&link).copied().unwrap_or(0.0)
    }

    /// Maximum link load (0 for an empty ledger).
    pub fn max_load(&self) -> f64 {
        self.loads.values().copied().fold(0.0, f64::max)
    }

    /// Number of links carrying non-zero load.
    pub fn active_links(&self) -> usize {
        self.loads.len()
    }

    /// Mean load over active links.
    pub fn mean_load(&self) -> f64 {
        if self.loads.is_empty() {
            0.0
        } else {
            self.loads.values().sum::<f64>() / self.loads.len() as f64
        }
    }
}

/// ECMP router over a fixed network: splits each rack-to-rack unit of
/// traffic equally across all shortest switch-level paths.
pub struct EcmpRouter<'a> {
    net: &'a Network,
    dags: Vec<SpDag>,
}

impl<'a> EcmpRouter<'a> {
    /// Precomputes one shortest-path DAG per rack.
    pub fn new(net: &'a Network) -> Self {
        let dags = net
            .racks
            .iter()
            .map(|&r| SpDag::build(&net.graph, r))
            .collect();
        Self { net, dags }
    }

    /// Spreads one unit of traffic for rack pair `pair` over the fixed
    /// network into `loads` (ECMP fractional splitting).
    ///
    /// Implementation: walk the shortest-path DAG from the destination back
    /// toward the source, distributing each node's incoming share equally
    /// over its shortest-path predecessors weighted by path counts.
    pub fn route_fixed(&self, pair: Pair, loads: &mut LinkLoads) {
        let src_rack = pair.lo() as usize;
        let dag = &self.dags[src_rack];
        let target = self.net.racks[pair.hi() as usize];
        assert!(dag.dist[target as usize] != u32::MAX, "disconnected pair");
        // share[v]: traffic flowing through v toward the source.
        let mut share: FxHashMap<NodeId, f64> = FxHashMap::default();
        share.insert(target, 1.0);
        // Process nodes in decreasing distance (walk back level by level).
        let mut frontier = vec![target];
        while let Some(v) = frontier.pop() {
            let amount = share.remove(&v).unwrap_or(0.0);
            if amount == 0.0 || v == dag.source {
                continue;
            }
            // Split over predecessors proportionally to their path counts.
            let total: f64 = dag.preds[v as usize]
                .iter()
                .map(|&p| dag.count[p as usize] as f64)
                .sum();
            for &p in &dag.preds[v as usize] {
                let frac = amount * dag.count[p as usize] as f64 / total;
                // Traffic flows p -> v.
                loads.add((p, v), frac);
                let entry = share.entry(p).or_insert(0.0);
                let was_zero = *entry == 0.0;
                *entry += frac;
                if was_zero {
                    frontier.push(p);
                }
            }
            // Keep frontier sorted by distance descending so shares are
            // complete before a node is processed.
            frontier.sort_by_key(|&u| dag.dist[u as usize]);
        }
    }

    /// Routes one unit over a direct matching edge (rack-to-rack optical
    /// circuit): a single logical link, tagged with the rack node ids.
    pub fn route_matching(&self, pair: Pair, loads: &mut LinkLoads) {
        let u = self.net.racks[pair.lo() as usize];
        let v = self.net.racks[pair.hi() as usize];
        loads.add((u, v), 1.0);
    }

    /// Replays a trace against a static matching; returns
    /// `(fixed-network loads, matching-edge loads)`.
    pub fn replay(&self, requests: &[Pair], matching: &[Pair]) -> (LinkLoads, LinkLoads) {
        let in_m: std::collections::HashSet<Pair> = matching.iter().copied().collect();
        let mut fixed = LinkLoads::new();
        let mut optical = LinkLoads::new();
        for &r in requests {
            if in_m.contains(&r) {
                self.route_matching(r, &mut optical);
            } else {
                self.route_fixed(r, &mut fixed);
            }
        }
        (fixed, optical)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    #[test]
    fn dag_distances_match_bfs() {
        let net = builders::fat_tree(4);
        let dag = SpDag::build(&net.graph, 0);
        assert_eq!(dag.dist, net.graph.bfs(0));
    }

    #[test]
    fn path_extraction_is_shortest() {
        let net = builders::fat_tree(4);
        let dag = SpDag::build(&net.graph, 0);
        for target in 0..net.graph.num_nodes() as NodeId {
            let path = dag.path_to(target).expect("connected");
            assert_eq!(path.len() as u32 - 1, dag.dist[target as usize]);
            assert_eq!(path[0], 0);
            assert_eq!(*path.last().expect("non-empty"), target);
            // Consecutive hops are edges.
            for w in path.windows(2) {
                assert!(net.graph.neighbors(w[0]).contains(&w[1]));
            }
        }
    }

    #[test]
    fn fat_tree_cross_pod_has_multiple_paths() {
        let net = builders::fat_tree(4);
        let dag = SpDag::build(&net.graph, 0);
        // Cross-pod rack (rack 2 = edge switch of pod 1): 2 aggs × 2 cores
        // give 4 shortest paths.
        assert_eq!(dag.num_paths(2), 4);
        // Same-pod rack: one per shared aggregation switch = 2.
        assert_eq!(dag.num_paths(1), 2);
    }

    #[test]
    fn ecmp_conserves_traffic() {
        let net = builders::fat_tree(4);
        let router = EcmpRouter::new(&net);
        let mut loads = LinkLoads::new();
        router.route_fixed(Pair::new(0, 5), &mut loads);
        // Total hop-traffic equals the path length (4 for cross-pod).
        assert!(
            (loads.total_hop_traffic - 4.0).abs() < 1e-9,
            "{}",
            loads.total_hop_traffic
        );
        // First-hop links out of the source edge switch carry 1.0 total.
        let out: f64 = net
            .graph
            .neighbors(0)
            .iter()
            .map(|&a| loads.get((0, a)))
            .sum();
        assert!((out - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ecmp_splits_equally_on_symmetric_topology() {
        let net = builders::leaf_spine(4, 3);
        let router = EcmpRouter::new(&net);
        let mut loads = LinkLoads::new();
        router.route_fixed(Pair::new(0, 1), &mut loads);
        // 3 spines, each shortest path 0->spine->1: each spine link carries 1/3.
        for s in 0..3u32 {
            let spine = 4 + s;
            assert!((loads.get((0, spine)) - 1.0 / 3.0).abs() < 1e-9);
            assert!((loads.get((spine, 1)) - 1.0 / 3.0).abs() < 1e-9);
        }
        assert!((loads.total_hop_traffic - 2.0).abs() < 1e-9);
    }

    #[test]
    fn matching_offload_reduces_max_fixed_load() {
        // A hot pair hammered 100x: offloading it to a matching edge must
        // drain the fixed network.
        let net = builders::leaf_spine(6, 2);
        let router = EcmpRouter::new(&net);
        let hot = Pair::new(0, 1);
        let requests = vec![hot; 100];
        let (fixed_none, _) = router.replay(&requests, &[]);
        let (fixed_matched, optical) = router.replay(&requests, &[hot]);
        assert!(fixed_none.max_load() > 0.0);
        assert_eq!(fixed_matched.max_load(), 0.0);
        assert_eq!(optical.max_load(), 100.0);
    }

    #[test]
    fn load_ledger_stats() {
        let mut l = LinkLoads::new();
        assert_eq!(l.max_load(), 0.0);
        l.add((0, 1), 2.0);
        l.add((1, 2), 4.0);
        l.add((0, 1), 1.0);
        assert_eq!(l.get((0, 1)), 3.0);
        assert_eq!(l.max_load(), 4.0);
        assert_eq!(l.active_links(), 2);
        assert!((l.mean_load() - 3.5).abs() < 1e-12);
        assert!((l.total_hop_traffic - 7.0).abs() < 1e-12);
    }
}

//! Rack-to-rack shortest-path distances (`ℓ_e` in the cost model).
//!
//! The cost of serving request `e = {s, t}` over the fixed network is the
//! shortest-path length between the racks' ToR switches (§3.1: “The cost of
//! each request is calculated as the shortest path length between source and
//! destination node”). The matrix is computed once per experiment with one
//! BFS per rack over the switch graph; sources are fanned out over threads.

use crate::builders::Network;
use crate::graph::NodeId;
use crate::pair::Pair;
use std::collections::VecDeque;

/// Dense rack-to-rack hop-distance matrix with `u16` entries.
#[derive(Clone, Debug)]
pub struct DistanceMatrix {
    n: usize,
    d: Vec<u16>,
    max: u16,
}

/// Below this rack count the parallel path falls back to one thread: a
/// full BFS sweep at this scale costs less than spawning workers, so the
/// parallel entry point must never lose to [`DistanceMatrix::between_racks`]
/// on paper-sized instances (≤ 100 racks). Verified by the
/// `topology/apsp_*` benches in `dcn-bench`'s `micro_substrates`.
const PARALLEL_MIN_RACKS: usize = 128;

impl DistanceMatrix {
    /// Computes rack-to-rack distances for `net` sequentially.
    ///
    /// Panics if some rack cannot reach another (the model requires a
    /// connected fixed network).
    pub fn between_racks(net: &Network) -> Self {
        Self::build(net, 1)
    }

    /// Computes rack-to-rack distances using up to `threads` worker threads.
    /// Each worker runs the BFS for a contiguous chunk of source racks.
    /// Falls back to the sequential path below `PARALLEL_MIN_RACKS` (128)
    /// sources — and always clamps to the machine's available parallelism —
    /// so this is never slower than [`DistanceMatrix::between_racks`]
    /// (thread spawns would be pure overhead in both cases).
    pub fn between_racks_parallel(net: &Network, threads: usize) -> Self {
        let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
        let threads = if net.racks.len() < PARALLEL_MIN_RACKS {
            1
        } else {
            threads.clamp(1, cores)
        };
        Self::build(net, threads)
    }

    fn build(net: &Network, threads: usize) -> Self {
        let racks = &net.racks;
        let n = racks.len();
        let mut d = vec![0u16; n * n];
        // Map switch node -> rack index for fast row extraction.
        let mut rack_of = vec![usize::MAX; net.graph.num_nodes()];
        for (i, &r) in racks.iter().enumerate() {
            rack_of[r as usize] = i;
        }

        let fill_rows = |rows: &mut [u16], first_rack: usize, count: usize| {
            let mut dist: Vec<u32> = Vec::new();
            let mut queue: VecDeque<NodeId> = VecDeque::new();
            for (k, row) in rows.chunks_exact_mut(n).enumerate().take(count) {
                let i = first_rack + k;
                net.graph.bfs_into(racks[i], &mut dist, &mut queue);
                for (j, cell) in row.iter_mut().enumerate() {
                    let dv = dist[racks[j] as usize];
                    assert!(dv != u32::MAX, "fixed network must connect all racks");
                    assert!(dv <= u16::MAX as u32, "distance overflow");
                    *cell = dv as u16;
                }
            }
        };

        if threads <= 1 || n < 2 * threads {
            fill_rows(&mut d, 0, n);
        } else {
            let rows_per = n.div_ceil(threads);
            std::thread::scope(|scope| {
                for (t, chunk) in d.chunks_mut(rows_per * n).enumerate() {
                    let fill = &fill_rows;
                    scope.spawn(move || {
                        fill(chunk, t * rows_per, chunk.len() / n);
                    });
                }
            });
        }

        let max = d.iter().copied().max().unwrap_or(0);
        Self { n, d, max }
    }

    /// Builds a matrix where every distinct pair is at distance 1 — the
    /// *uniform* model of §2 used by the reduction analysis and its tests.
    pub fn uniform(n: usize) -> Self {
        let mut d = vec![1u16; n * n];
        for i in 0..n {
            d[i * n + i] = 0;
        }
        Self {
            n,
            d,
            max: if n > 1 { 1 } else { 0 },
        }
    }

    /// Number of racks.
    #[inline]
    pub fn num_racks(&self) -> usize {
        self.n
    }

    /// Hop distance between racks `i` and `j`.
    ///
    /// Hot-path contract (audited for the batched serve loops): the matrix
    /// is a dense row-major `Vec<u16>`, so a lookup is one multiply-add and
    /// one 2-byte load — a full 100-rack matrix is 20 KB and stays in L1/L2
    /// for the whole run. Guarded by the `topology/ell_lookup` bench point
    /// in `micro_substrates`.
    #[inline]
    pub fn dist(&self, i: NodeId, j: NodeId) -> u16 {
        self.d[i as usize * self.n + j as usize]
    }

    /// Distance `ℓ_e` of a pair (one [`dist`](Self::dist) lookup; the
    /// endpoint extraction is two shift/masks on the packed pair).
    #[inline]
    pub fn ell(&self, pair: Pair) -> u16 {
        self.dist(pair.lo(), pair.hi())
    }

    /// Maximum pairwise distance (`ℓ_max`).
    #[inline]
    pub fn max_dist(&self) -> u16 {
        self.max
    }

    /// Mean distance over distinct rack pairs.
    pub fn mean_dist(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        let sum: u64 = (0..self.n)
            .flat_map(|i| ((i + 1)..self.n).map(move |j| (i, j)))
            .map(|(i, j)| self.d[i * self.n + j] as u64)
            .sum();
        sum as f64 / (self.n * (self.n - 1) / 2) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    #[test]
    fn fat_tree_distance_classes() {
        let net = builders::fat_tree(4);
        let dm = DistanceMatrix::between_racks(&net);
        // Same pod (racks 0,1): edge->agg->edge = 2; cross pod: 4.
        assert_eq!(dm.dist(0, 1), 2);
        assert_eq!(dm.dist(0, 2), 4);
        assert_eq!(dm.dist(0, 0), 0);
        assert_eq!(dm.max_dist(), 4);
    }

    #[test]
    fn leaf_spine_all_two() {
        let net = builders::leaf_spine(8, 3);
        let dm = DistanceMatrix::between_racks(&net);
        for i in 0..8u32 {
            for j in 0..8u32 {
                assert_eq!(dm.dist(i, j), if i == j { 0 } else { 2 });
            }
        }
    }

    #[test]
    fn star_distances() {
        let net = builders::star(4);
        let dm = DistanceMatrix::between_racks(&net);
        for i in 1..5u32 {
            assert_eq!(dm.dist(0, i), 1);
            for j in 1..5u32 {
                if i != j {
                    assert_eq!(dm.dist(i, j), 2);
                }
            }
        }
    }

    #[test]
    fn ring_closed_form() {
        let n = 11usize;
        let net = builders::ring(n);
        let dm = DistanceMatrix::between_racks(&net);
        for i in 0..n {
            for j in 0..n {
                let lin = (i as i64 - j as i64).unsigned_abs() as usize;
                let expected = lin.min(n - lin) as u16;
                assert_eq!(dm.dist(i as NodeId, j as NodeId), expected);
            }
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let net = builders::fat_tree(8);
        let seq = DistanceMatrix::between_racks(&net);
        let par = DistanceMatrix::between_racks_parallel(&net, 4);
        assert_eq!(seq.n, par.n);
        assert_eq!(seq.d, par.d);
        assert_eq!(seq.max_dist(), par.max_dist());
    }

    #[test]
    fn parallel_matches_sequential_above_threshold() {
        // 256 racks is above PARALLEL_MIN_RACKS, so this exercises the real
        // multi-threaded chunked path.
        let net = builders::leaf_spine(2 * PARALLEL_MIN_RACKS, 4);
        let seq = DistanceMatrix::between_racks(&net);
        let par = DistanceMatrix::between_racks_parallel(&net, 4);
        assert_eq!(seq.d, par.d);
    }

    #[test]
    fn uniform_matrix() {
        let dm = DistanceMatrix::uniform(5);
        assert_eq!(dm.dist(0, 0), 0);
        assert_eq!(dm.dist(0, 4), 1);
        assert_eq!(dm.max_dist(), 1);
        assert_eq!(dm.mean_dist(), 1.0);
    }

    #[test]
    fn ell_uses_pair_endpoints() {
        let net = builders::fat_tree(4);
        let dm = DistanceMatrix::between_racks(&net);
        assert_eq!(dm.ell(Pair::new(1, 0)), dm.dist(0, 1));
    }

    #[test]
    fn mean_dist_on_complete() {
        let net = builders::complete(10);
        let dm = DistanceMatrix::between_racks(&net);
        assert!((dm.mean_dist() - 1.0).abs() < 1e-12);
    }
}

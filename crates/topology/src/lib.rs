//! # dcn-topology
//!
//! The **fixed network** substrate of the (b,a)-matching model (§1.1 of the
//! paper): an arbitrary static, connected network `G = (V, F)` over which
//! requests not served by a reconfigurable matching edge are routed, paying
//! the shortest-path length `ℓ_e`.
//!
//! Modules:
//!
//! * [`graph`] — a compact CSR (compressed sparse row) undirected graph.
//! * [`builders`] — datacenter topology generators. The paper's evaluation
//!   uses a fat-tree; the model section explicitly allows any static network
//!   (star, etc.), and the lower bound (§2.4) is built on a star. We provide:
//!   fat-tree, two-tier leaf–spine Clos, star, ring, 2-D torus, hypercube,
//!   random regular (Jellyfish-style) and complete graphs.
//! * [`distance`] — all-pairs shortest path lengths between *racks* (BFS per
//!   source, optionally parallelized across sources), yielding the
//!   [`DistanceMatrix`] the cost model reads `ℓ_e` from.
//! * [`pair`] — the unordered node-pair type used across the workspace.
//!
//! # Example
//!
//! ```
//! use dcn_topology::{builders, DistanceMatrix};
//!
//! let net = builders::fat_tree(4); // 4-ary fat-tree, 8 racks
//! let dm = DistanceMatrix::between_racks(&net);
//! assert_eq!(dm.num_racks(), 8);
//! // Racks in the same pod are 2 hops apart, across pods 4 hops.
//! assert_eq!(dm.dist(0, 1), 2);
//! assert_eq!(dm.dist(0, 7), 4);
//! ```

pub mod builders;
pub mod distance;
pub mod graph;
pub mod pair;
pub mod routing;

pub use builders::Network;
pub use distance::DistanceMatrix;
pub use graph::{Graph, GraphBuilder, NodeId};
pub use pair::Pair;
pub use routing::{EcmpRouter, LinkLoads, SpDag};

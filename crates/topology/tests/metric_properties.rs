//! Property tests for the distance substrate: BFS distances between racks
//! form a metric, on arbitrary connected topologies.

use dcn_topology::{builders, DistanceMatrix, Network, NodeId};
use proptest::prelude::*;

fn arbitrary_network() -> impl Strategy<Value = Network> {
    prop_oneof![
        (2usize..6).prop_map(|k| builders::fat_tree(2 * k.div_ceil(2).max(1))),
        (3usize..20, 1usize..6).prop_map(|(l, s)| builders::leaf_spine(l, s)),
        (3usize..25).prop_map(builders::ring),
        (3usize..6, 3usize..6).prop_map(|(r, c)| builders::torus(r, c)),
        (1usize..6).prop_map(builders::hypercube),
        (2usize..15).prop_map(builders::star),
        (4usize..20, 2usize..4, 0u64..100).prop_map(|(n, d, seed)| {
            let d = d.min(n - 1);
            if n * d % 2 == 1 {
                builders::random_regular(n + 1, d, seed)
            } else {
                builders::random_regular(n, d, seed)
            }
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn rack_distances_form_a_metric(net in arbitrary_network()) {
        let dm = DistanceMatrix::between_racks(&net);
        let n = dm.num_racks();
        for i in 0..n as NodeId {
            prop_assert_eq!(dm.dist(i, i), 0, "non-zero diagonal at {}", i);
            for j in 0..n as NodeId {
                // Symmetry.
                prop_assert_eq!(dm.dist(i, j), dm.dist(j, i));
                if i != j {
                    prop_assert!(dm.dist(i, j) >= 1, "distinct racks at distance 0");
                }
            }
        }
        // Triangle inequality (sampled: full cubic check is wasteful).
        let step = (n / 8).max(1);
        for i in (0..n).step_by(step) {
            for j in (0..n).step_by(step) {
                for k in (0..n).step_by(step) {
                    let (a, b, c) = (
                        dm.dist(i as NodeId, j as NodeId) as u32,
                        dm.dist(j as NodeId, k as NodeId) as u32,
                        dm.dist(i as NodeId, k as NodeId) as u32,
                    );
                    prop_assert!(c <= a + b, "triangle violated: d({i},{k}) > d({i},{j}) + d({j},{k})");
                }
            }
        }
        prop_assert_eq!(dm.max_dist() as u32, {
            let mut m = 0u32;
            for i in 0..n as NodeId {
                for j in 0..n as NodeId {
                    m = m.max(dm.dist(i, j) as u32);
                }
            }
            m
        });
    }

    #[test]
    fn parallel_apsp_matches_sequential(net in arbitrary_network(), threads in 2usize..8) {
        let seq = DistanceMatrix::between_racks(&net);
        let par = DistanceMatrix::between_racks_parallel(&net, threads);
        for i in 0..seq.num_racks() as NodeId {
            for j in 0..seq.num_racks() as NodeId {
                prop_assert_eq!(seq.dist(i, j), par.dist(i, j));
            }
        }
    }

    #[test]
    fn ecmp_routing_conserves_flow(net in arbitrary_network()) {
        use dcn_topology::routing::{EcmpRouter, LinkLoads};
        use dcn_topology::Pair;
        let n = net.num_racks();
        prop_assume!(n >= 2);
        let router = EcmpRouter::new(&net);
        let dm = DistanceMatrix::between_racks(&net);
        // Route a few pairs; hop traffic must equal the path length exactly.
        for (a, b) in [(0usize, n - 1), (0, n / 2), (n / 3, 2 * n / 3)] {
            if a == b {
                continue;
            }
            let pair = Pair::new(a as u32, b as u32);
            let mut loads = LinkLoads::new();
            router.route_fixed(pair, &mut loads);
            let expected = dm.ell(pair) as f64;
            prop_assert!(
                (loads.total_hop_traffic - expected).abs() < 1e-6,
                "hop traffic {} != ℓ {}",
                loads.total_hop_traffic,
                expected
            );
        }
    }
}

//! [`MatrixSequence`] — temporal evolution of demand matrices.
//!
//! A frozen matrix sampled i.i.d. (the paper's Microsoft setting) has *no*
//! temporal structure by design; real rack-to-rack demand drifts. COUDER
//! (arXiv:2010.00090) engineers topologies against *sets* of matrices
//! precisely because the served matrix moves away from the one a static
//! design was built on. A `MatrixSequence` models that movement as a
//! piecewise-constant schedule of phases: abrupt switches
//! ([`MatrixSequence::switching`]), smooth drift quantized into interpolated
//! segments ([`MatrixSequence::drifting`]), or per-phase-seeded fresh
//! matrices ([`MatrixSequence::zipf_switching`]). The streaming layer
//! (`dcn_traces`' `SequenceKernel`) samples phase `p`'s matrix while the
//! stream position is inside phase `p`.

use crate::matrix::DemandMatrix;

/// One phase of a [`MatrixSequence`]: a matrix served for `len` requests.
#[derive(Clone, Debug, PartialEq)]
pub struct Phase {
    /// Demand matrix active during this phase.
    pub matrix: DemandMatrix,
    /// Number of requests drawn from it.
    pub len: usize,
}

/// A piecewise-constant schedule of demand matrices.
#[derive(Clone, Debug, PartialEq)]
pub struct MatrixSequence {
    phases: Vec<Phase>,
    name: String,
}

impl MatrixSequence {
    /// Wraps explicit phases (non-empty, same rack count, positive lengths).
    pub fn new(phases: Vec<Phase>, name: impl Into<String>) -> Self {
        assert!(
            !phases.is_empty(),
            "matrix sequence needs at least one phase"
        );
        let n = phases[0].matrix.num_racks();
        for phase in &phases {
            assert_eq!(
                phase.matrix.num_racks(),
                n,
                "phases must share the rack count"
            );
            assert!(phase.len > 0, "phase length must be positive");
        }
        Self {
            phases,
            name: name.into(),
        }
    }

    /// Abrupt phase switches: each matrix is served for `phase_len`
    /// requests in order.
    pub fn switching(matrices: Vec<DemandMatrix>, phase_len: usize) -> Self {
        let k = matrices.len();
        let phases = matrices
            .into_iter()
            .map(|matrix| Phase {
                matrix,
                len: phase_len,
            })
            .collect();
        Self::new(phases, format!("switching({k} phases)"))
    }

    /// Smooth drift from `from` to `to` over `len` requests, quantized into
    /// `segments ≥ 2` equal-length interpolation steps: segment `s` serves
    /// `blend(from, to, s/(segments-1))`, so the first segment is exactly
    /// `from` and the last exactly `to`.
    pub fn drifting(from: &DemandMatrix, to: &DemandMatrix, len: usize, segments: usize) -> Self {
        assert!(segments >= 2, "drift needs at least two segments");
        assert!(
            len >= segments,
            "drift needs at least one request per segment"
        );
        let base = len / segments;
        let phases = (0..segments)
            .map(|s| {
                let lambda = s as f64 / (segments - 1) as f64;
                Phase {
                    matrix: DemandMatrix::blend(from, to, lambda),
                    // Remainder requests land in the last segment.
                    len: if s + 1 == segments {
                        len - base * (segments - 1)
                    } else {
                        base
                    },
                }
            })
            .collect();
        Self::new(
            phases,
            format!("drift({} -> {}, {segments} steps)", from.name(), to.name()),
        )
    }

    /// Per-phase-seeded fresh matrices: `num_phases` Zipf-pair matrices,
    /// each built with an independent sub-seed of `seed`, served for
    /// `phase_len` requests each — the "same family, new hot pairs every
    /// phase" workload.
    pub fn zipf_switching(
        num_racks: usize,
        num_phases: usize,
        phase_len: usize,
        s: f64,
        seed: u64,
    ) -> Self {
        assert!(num_phases >= 1);
        let matrices = (0..num_phases)
            .map(|p| {
                DemandMatrix::zipf_pairs(num_racks, s, dcn_util::rngx::derive_seed(seed, p as u64))
            })
            .collect();
        let mut seq = Self::switching(matrices, phase_len);
        seq.name = format!("zipf-switching({num_phases}x{phase_len}, s={s})");
        seq
    }

    /// The phases in schedule order.
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// Number of racks (shared by all phases).
    pub fn num_racks(&self) -> usize {
        self.phases[0].matrix.num_racks()
    }

    /// Total number of requests across all phases.
    pub fn total_len(&self) -> usize {
        self.phases.iter().map(|p| p.len).sum()
    }

    /// Human-readable provenance.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Cumulative phase end positions (`ends[p]` = first stream position
    /// *after* phase `p`).
    pub fn phase_ends(&self) -> Vec<usize> {
        let mut acc = 0;
        self.phases
            .iter()
            .map(|p| {
                acc += p.len;
                acc
            })
            .collect()
    }

    /// The matrix active at stream position `t < total_len()`.
    pub fn matrix_at(&self, t: usize) -> &DemandMatrix {
        let mut acc = 0;
        for phase in &self.phases {
            acc += phase.len;
            if t < acc {
                return &phase.matrix;
            }
        }
        panic!("position {t} beyond sequence length {}", self.total_len());
    }

    /// Average of the phase matrices weighted by phase length — the single
    /// matrix a demand-aware design would be built from if it had to commit
    /// to one (cf. hedging over the phase set instead).
    pub fn length_weighted_average(&self) -> DemandMatrix {
        let n = self.num_racks();
        let total = self.total_len() as f64;
        let mut avg = DemandMatrix::new(n, format!("avg({})", self.name));
        for phase in &self.phases {
            let share = phase.len as f64 / total;
            for (pair, w) in phase.matrix.entries() {
                avg.add(pair, w * share);
            }
        }
        avg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_topology::Pair;

    #[test]
    fn switching_layout() {
        let seq = MatrixSequence::switching(
            vec![
                DemandMatrix::uniform(6),
                DemandMatrix::zipf_pairs(6, 1.2, 1),
            ],
            100,
        );
        assert_eq!(seq.total_len(), 200);
        assert_eq!(seq.num_racks(), 6);
        assert_eq!(seq.phase_ends(), vec![100, 200]);
        assert_eq!(seq.matrix_at(0).name(), "uniform(n=6)");
        assert_eq!(seq.matrix_at(99).name(), "uniform(n=6)");
        assert_ne!(seq.matrix_at(100).name(), "uniform(n=6)");
    }

    #[test]
    fn drifting_endpoints_are_exact() {
        let from = DemandMatrix::uniform(8).normalized();
        let to = DemandMatrix::zipf_pairs(8, 1.4, 2).normalized();
        let seq = MatrixSequence::drifting(&from, &to, 1003, 4);
        assert_eq!(seq.phases().len(), 4);
        assert_eq!(seq.total_len(), 1003);
        // Remainder goes to the last segment.
        assert_eq!(seq.phases()[3].len, 1003 - 3 * 250);
        assert_eq!(seq.phases()[0].matrix.weights(), from.weights());
        assert_eq!(seq.phases()[3].matrix.weights(), to.weights());
        // Skew is monotone along the drift.
        let ginis: Vec<f64> = seq.phases().iter().map(|p| p.matrix.gini()).collect();
        assert!(ginis.windows(2).all(|w| w[0] <= w[1] + 1e-12), "{ginis:?}");
    }

    #[test]
    fn zipf_switching_uses_per_phase_seeds() {
        let seq = MatrixSequence::zipf_switching(10, 3, 50, 1.2, 9);
        assert_eq!(seq.phases().len(), 3);
        assert_ne!(
            seq.phases()[0].matrix.weights(),
            seq.phases()[1].matrix.weights(),
            "per-phase seeds must produce distinct matrices"
        );
        // Deterministic in the base seed.
        let again = MatrixSequence::zipf_switching(10, 3, 50, 1.2, 9);
        assert_eq!(seq, again);
    }

    #[test]
    fn length_weighted_average_hand_computed() {
        let mut a = DemandMatrix::new(3, "a");
        a.set(Pair::new(0, 1), 1.0);
        let mut b = DemandMatrix::new(3, "b");
        b.set(Pair::new(1, 2), 1.0);
        let seq = MatrixSequence::new(
            vec![Phase { matrix: a, len: 75 }, Phase { matrix: b, len: 25 }],
            "t",
        );
        let avg = seq.length_weighted_average();
        assert!((avg.get(Pair::new(0, 1)) - 0.75).abs() < 1e-12);
        assert!((avg.get(Pair::new(1, 2)) - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "share the rack count")]
    fn rejects_mixed_rack_counts() {
        MatrixSequence::new(
            vec![
                Phase {
                    matrix: DemandMatrix::uniform(4),
                    len: 10,
                },
                Phase {
                    matrix: DemandMatrix::uniform(5),
                    len: 10,
                },
            ],
            "bad",
        );
    }
}

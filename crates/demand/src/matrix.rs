//! [`DemandMatrix`] — the rack-to-rack traffic matrix as a first-class value.
//!
//! The paper's Microsoft workload (Fig. 4) is *defined* by a probability
//! matrix sampled i.i.d.; COUDER (arXiv:2010.00090) and follow-up work on
//! integrated topology/traffic engineering (arXiv:2402.09115) evaluate
//! reconfigurable datacenters entirely through such matrices — their skew,
//! their temporal drift, and topologies engineered against *sets* of them.
//! This type makes the matrix itself the unit of composition: constructors
//! for the standard families, normalization and skew/entropy statistics,
//! top-k extraction for demand-aware topology building, empirical
//! estimation from observed requests, and CSV/JSON persistence.
//!
//! Storage is the dense upper triangle over unordered rack pairs: entry
//! `{i, j}` (with `i < j`) lives at a canonical index, so lookups are O(1)
//! and the memory footprint is exactly `n(n-1)/2` floats.

use dcn_topology::Pair;
use dcn_util::rngx::{derive_seed, shuffle};
use dcn_util::zipf_weights;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use serde::Serialize;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Parameters of the synthetic ProjecToR-style traffic matrix (the paper's
/// Fig. 4 stand-in): heavy-tailed pair weights as a product of Zipf rack
/// popularities with multiplicative log-noise.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MicrosoftParams {
    /// Zipf exponent of rack popularity (drives the spatial skew).
    pub rack_skew: f64,
    /// Standard deviation of multiplicative log-noise on each pair weight.
    pub noise_sigma: f64,
}

impl Default for MicrosoftParams {
    fn default() -> Self {
        Self {
            rack_skew: 1.1,
            noise_sigma: 1.0,
        }
    }
}

/// Builds the ProjecToR-style rack-to-rack weight arrays and returns
/// `(pairs, weights)` **in construction order** (pairs carry a seeded rack
/// permutation, so this order differs from the canonical triangle order).
///
/// This is the exact historical `dcn_traces::microsoft_matrix` computation
/// — same seed streams, same draw order — kept as a standalone function so
/// the Microsoft generator's sampled request sequences stay byte-identical
/// (its alias table is built over *this* weight ordering; see
/// `crates/traces/tests/stream_equivalence.rs`).
pub fn microsoft_pair_weights(
    num_racks: usize,
    params: MicrosoftParams,
    seed: u64,
) -> (Vec<Pair>, Vec<f64>) {
    assert!(num_racks >= 2);
    let mut rng = SmallRng::seed_from_u64(derive_seed(seed, 0x7153));
    let mut perm: Vec<u32> = (0..num_racks as u32).collect();
    shuffle(&mut perm, &mut rng);
    let pop = zipf_weights(num_racks, params.rack_skew);
    let mut pairs = Vec::with_capacity(num_racks * (num_racks - 1) / 2);
    let mut weights = Vec::with_capacity(pairs.capacity());
    for i in 0..num_racks {
        for j in (i + 1)..num_racks {
            // Box-Muller-free log-noise: sum of uniforms approximates a
            // normal well enough for a heavy-ish tail here.
            let g: f64 = (0..4).map(|_| rng.random_range(-1.0..1.0f64)).sum::<f64>() * 0.5;
            let noise = (params.noise_sigma * g).exp();
            pairs.push(Pair::new(perm[i], perm[j]));
            weights.push(pop[i] * pop[j] * noise);
        }
    }
    (pairs, weights)
}

/// A dense upper-triangle rack-pair demand matrix.
///
/// ```
/// use dcn_demand::DemandMatrix;
/// use dcn_topology::Pair;
///
/// let mut m = DemandMatrix::new(4, "manual");
/// m.set(Pair::new(0, 1), 3.0);
/// m.add(Pair::new(2, 3), 1.0);
/// let m = m.normalized();
/// assert!((m.get(Pair::new(0, 1)) - 0.75).abs() < 1e-12);
/// assert_eq!(m.top_k(1)[0].0, Pair::new(0, 1));
/// ```
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct DemandMatrix {
    num_racks: usize,
    /// Canonical upper-triangle weights: entry `{i, j}` (`i < j`) at
    /// `i*(2n-i-1)/2 + (j-i-1)`.
    weights: Vec<f64>,
    name: String,
}

impl DemandMatrix {
    /// All-zero matrix over `num_racks ≥ 2` racks.
    pub fn new(num_racks: usize, name: impl Into<String>) -> Self {
        assert!(num_racks >= 2, "demand matrix needs at least 2 racks");
        Self {
            num_racks,
            weights: vec![0.0; num_racks * (num_racks - 1) / 2],
            name: name.into(),
        }
    }

    /// Wraps a canonical upper-triangle weight vector (`n(n-1)/2` entries,
    /// all finite and non-negative).
    pub fn from_weights(num_racks: usize, weights: Vec<f64>, name: impl Into<String>) -> Self {
        assert!(num_racks >= 2, "demand matrix needs at least 2 racks");
        assert_eq!(
            weights.len(),
            num_racks * (num_racks - 1) / 2,
            "weight vector must cover the upper triangle"
        );
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "weights must be finite and non-negative"
        );
        Self {
            num_racks,
            weights,
            name: name.into(),
        }
    }

    /// Empirical matrix: per-pair request counts of an observed sequence
    /// (the `from_trace` estimator; any endpoint must be `< num_racks`).
    pub fn from_trace(num_racks: usize, requests: &[Pair]) -> Self {
        let mut m = Self::new(num_racks, format!("empirical({} requests)", requests.len()));
        for &r in requests {
            m.add(r, 1.0);
        }
        m
    }

    /// Uniform demand: every pair carries the same weight.
    pub fn uniform(num_racks: usize) -> Self {
        let pairs = num_racks * (num_racks - 1) / 2;
        Self::from_weights(
            num_racks,
            vec![1.0; pairs],
            format!("uniform(n={num_racks})"),
        )
    }

    /// Zipf-ranked pair weights over a seeded random rank permutation (the
    /// matrix behind the `zipf_pair` trace family).
    pub fn zipf_pairs(num_racks: usize, s: f64, seed: u64) -> Self {
        let mut m = Self::new(num_racks, format!("zipf-pairs(s={s}, n={num_racks})"));
        let num_pairs = m.weights.len();
        let mut rng = SmallRng::seed_from_u64(derive_seed(seed, 0xD1F));
        let mut ranks: Vec<u32> = (0..num_pairs as u32).collect();
        shuffle(&mut ranks, &mut rng);
        let w = zipf_weights(num_pairs, s);
        for (idx, &rank) in ranks.iter().enumerate() {
            m.weights[idx] = w[rank as usize];
        }
        m
    }

    /// Hotspot demand matching the `hotspot` trace family: probability mass
    /// `p_hot` spread uniformly over pairs within the first `num_hot` racks,
    /// the rest spread uniformly over all pairs.
    pub fn hotspot(num_racks: usize, num_hot: usize, p_hot: f64) -> Self {
        assert!(num_racks >= 4 && num_hot >= 2 && num_hot <= num_racks);
        assert!((0.0..=1.0).contains(&p_hot));
        let mut m = Self::new(num_racks, format!("hotspot({num_hot}/{num_racks})"));
        let all = m.weights.len() as f64;
        let hot = (num_hot * (num_hot - 1) / 2) as f64;
        for i in 0..num_racks as u32 {
            for j in (i + 1)..num_racks as u32 {
                let mut w = (1.0 - p_hot) / all;
                if (j as usize) < num_hot {
                    w += p_hot / hot;
                }
                m.set(Pair::new(i, j), w);
            }
        }
        m
    }

    /// Permutation demand: a seeded random perfect matching carries all the
    /// weight (the ideal case for reconfigurable links; `num_racks` even).
    pub fn permutation(num_racks: usize, seed: u64) -> Self {
        assert!(
            num_racks >= 2 && num_racks % 2 == 0,
            "permutation demand needs an even rack count"
        );
        let mut rng = SmallRng::seed_from_u64(derive_seed(seed, 0xD2E));
        let mut racks: Vec<u32> = (0..num_racks as u32).collect();
        shuffle(&mut racks, &mut rng);
        let mut m = Self::new(num_racks, format!("permutation(n={num_racks})"));
        for c in racks.chunks_exact(2) {
            m.set(Pair::new(c[0], c[1]), 1.0);
        }
        m
    }

    /// Clustered/block demand: racks are partitioned into `num_clusters`
    /// seeded clusters; mass `p_intra` is spread uniformly over
    /// intra-cluster pairs, the rest over inter-cluster pairs.
    pub fn clustered(num_racks: usize, num_clusters: usize, p_intra: f64, seed: u64) -> Self {
        assert!(num_clusters >= 1 && num_clusters <= num_racks);
        assert!((0.0..=1.0).contains(&p_intra));
        let mut rng = SmallRng::seed_from_u64(derive_seed(seed, 0xD3D));
        let mut racks: Vec<u32> = (0..num_racks as u32).collect();
        shuffle(&mut racks, &mut rng);
        let mut cluster_of = vec![0usize; num_racks];
        for (pos, &r) in racks.iter().enumerate() {
            cluster_of[r as usize] = pos % num_clusters;
        }
        let mut m = Self::new(
            num_racks,
            format!("clustered({num_clusters} blocks, n={num_racks})"),
        );
        let mut intra = 0usize;
        for i in 0..num_racks {
            for j in (i + 1)..num_racks {
                intra += (cluster_of[i] == cluster_of[j]) as usize;
            }
        }
        let inter = m.weights.len() - intra;
        for i in 0..num_racks as u32 {
            for j in (i + 1)..num_racks as u32 {
                let w = if cluster_of[i as usize] == cluster_of[j as usize] {
                    if intra > 0 {
                        p_intra / intra as f64
                    } else {
                        0.0
                    }
                } else if inter > 0 {
                    (1.0 - p_intra) / inter as f64
                } else {
                    0.0
                };
                m.set(Pair::new(i, j), w);
            }
        }
        m
    }

    /// The ProjecToR-style synthetic matrix of the paper's Fig. 4 (dense
    /// canonical storage of [`microsoft_pair_weights`]).
    pub fn microsoft(num_racks: usize, params: MicrosoftParams, seed: u64) -> Self {
        let (pairs, weights) = microsoft_pair_weights(num_racks, params, seed);
        let mut m = Self::new(num_racks, format!("microsoft(n={num_racks})"));
        for (&p, &w) in pairs.iter().zip(&weights) {
            m.set(p, w);
        }
        m
    }

    /// Convex combination `(1-λ)·a + λ·b` of two same-shape matrices — the
    /// drift primitive ([`crate::MatrixSequence::drifting`] quantizes it).
    pub fn blend(a: &DemandMatrix, b: &DemandMatrix, lambda: f64) -> Self {
        assert_eq!(a.num_racks, b.num_racks, "blend needs same-shape matrices");
        assert!((0.0..=1.0).contains(&lambda), "blend weight in [0, 1]");
        let weights = a
            .weights
            .iter()
            .zip(&b.weights)
            .map(|(&x, &y)| (1.0 - lambda) * x + lambda * y)
            .collect();
        Self::from_weights(
            a.num_racks,
            weights,
            format!("blend({:.2}: {} -> {})", lambda, a.name, b.name),
        )
    }

    #[inline]
    fn index(&self, pair: Pair) -> usize {
        let (i, j) = (pair.lo() as usize, pair.hi() as usize);
        // A hard assert, not a debug_assert: an out-of-range endpoint would
        // otherwise alias a *valid* slot of another pair (the triangle
        // formula stays in bounds) and silently corrupt weights.
        assert!(
            j < self.num_racks,
            "pair endpoint {j} out of range (racks: {})",
            self.num_racks
        );
        i * (2 * self.num_racks - i - 1) / 2 + (j - i - 1)
    }

    /// Number of racks.
    pub fn num_racks(&self) -> usize {
        self.num_racks
    }

    /// Number of pair slots (`n(n-1)/2`).
    pub fn num_pairs(&self) -> usize {
        self.weights.len()
    }

    /// Human-readable provenance (flows into trace/report names).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Replaces the provenance name.
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Weight of `pair`.
    #[inline]
    pub fn get(&self, pair: Pair) -> f64 {
        self.weights[self.index(pair)]
    }

    /// Sets the weight of `pair` (finite, non-negative).
    #[inline]
    pub fn set(&mut self, pair: Pair, w: f64) {
        assert!(w.is_finite() && w >= 0.0, "weights are finite non-negative");
        let idx = self.index(pair);
        self.weights[idx] = w;
    }

    /// Adds `w` to the weight of `pair`.
    #[inline]
    pub fn add(&mut self, pair: Pair, w: f64) {
        assert!(w.is_finite() && w >= 0.0, "weights are finite non-negative");
        let idx = self.index(pair);
        self.weights[idx] += w;
    }

    /// The canonical upper-triangle weight slice (same order as
    /// [`DemandMatrix::pair_list`]).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// All pairs in canonical order (the slot order of
    /// [`DemandMatrix::weights`]).
    pub fn pair_list(&self) -> Vec<Pair> {
        let n = self.num_racks as u32;
        (0..n)
            .flat_map(|i| ((i + 1)..n).map(move |j| Pair::new(i, j)))
            .collect()
    }

    /// Iterates `(pair, weight)` over entries with positive weight.
    pub fn entries(&self) -> impl Iterator<Item = (Pair, f64)> + '_ {
        let n = self.num_racks as u32;
        (0..n)
            .flat_map(move |i| ((i + 1)..n).map(move |j| Pair::new(i, j)))
            .zip(self.weights.iter().copied())
            .filter(|&(_, w)| w > 0.0)
    }

    /// Sum of all weights.
    pub fn total(&self) -> f64 {
        self.weights.iter().sum()
    }

    /// Scales weights in place so they sum to 1 (total must be positive).
    pub fn normalize(&mut self) {
        let total = self.total();
        assert!(total > 0.0, "cannot normalize an all-zero demand matrix");
        for w in &mut self.weights {
            *w /= total;
        }
    }

    /// A normalized copy (weights sum to 1).
    pub fn normalized(&self) -> Self {
        let mut m = self.clone();
        m.normalize();
        m
    }

    /// Gini coefficient of the pair weights (0 = uniform, → 1 = skewed).
    pub fn gini(&self) -> f64 {
        dcn_util::gini(&self.weights)
    }

    /// Shannon entropy (bits) of the normalized pair distribution. Uniform
    /// demand attains [`DemandMatrix::max_entropy_bits`]; a permutation
    /// matrix over `n/2` pairs attains `log2(n/2)`.
    pub fn entropy_bits(&self) -> f64 {
        let total = self.total();
        assert!(total > 0.0, "entropy of an all-zero demand matrix");
        self.weights
            .iter()
            .filter(|&&w| w > 0.0)
            .map(|&w| {
                let p = w / total;
                -p * p.log2()
            })
            .sum()
    }

    /// Entropy (bits) of the uniform distribution over all pair slots.
    pub fn max_entropy_bits(&self) -> f64 {
        (self.num_pairs() as f64).log2()
    }

    /// The `k` heaviest pairs, sorted by descending weight (ties broken by
    /// pair order for determinism).
    pub fn top_k(&self, k: usize) -> Vec<(Pair, f64)> {
        let mut entries: Vec<(Pair, f64)> = self.entries().collect();
        entries.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then_with(|| a.0.cmp(&b.0)));
        entries.truncate(k);
        entries
    }

    /// Fraction of total demand carried by the `k` heaviest pairs.
    pub fn top_share(&self, k: usize) -> f64 {
        let total = self.total();
        if total <= 0.0 {
            return 0.0;
        }
        self.top_k(k).iter().map(|&(_, w)| w).sum::<f64>() / total
    }

    /// Serializes to a compact JSON object (`num_racks`, canonical
    /// `weights`, `name`) via `dcn_util::json`.
    pub fn to_json(&self) -> String {
        dcn_util::json::to_json_string(self).expect("demand matrix serialization cannot fail")
    }

    /// Writes the positive entries as CSV (`src,dst,weight`).
    pub fn write_csv<W: Write>(&self, out: W) -> std::io::Result<()> {
        let mut w = BufWriter::new(out);
        writeln!(w, "src,dst,weight")?;
        for (pair, weight) in self.entries() {
            writeln!(w, "{},{},{}", pair.lo(), pair.hi(), weight)?;
        }
        w.flush()
    }

    /// Reads a `src,dst,weight` CSV; `num_racks` is inferred as
    /// `max endpoint + 1` unless `racks_hint` provides a larger value.
    /// Duplicate pair lines accumulate.
    pub fn read_csv<R: Read>(
        input: R,
        name: &str,
        racks_hint: Option<usize>,
    ) -> std::io::Result<Self> {
        let reader = BufReader::new(input);
        let mut rows: Vec<(u32, u32, f64)> = Vec::new();
        let mut max_rack = 1u32;
        for (lineno, line) in reader.lines().enumerate() {
            let line = line?;
            let line = line.trim();
            if line.is_empty() || (lineno == 0 && line.eq_ignore_ascii_case("src,dst,weight")) {
                continue;
            }
            let bad = || {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("malformed demand line {}: {line:?}", lineno + 1),
                )
            };
            let mut parts = line.split(',');
            let src: u32 = parts
                .next()
                .ok_or_else(bad)?
                .trim()
                .parse()
                .map_err(|_| bad())?;
            let dst: u32 = parts
                .next()
                .ok_or_else(bad)?
                .trim()
                .parse()
                .map_err(|_| bad())?;
            let weight: f64 = parts
                .next()
                .ok_or_else(bad)?
                .trim()
                .parse()
                .map_err(|_| bad())?;
            if src == dst || !weight.is_finite() || weight < 0.0 {
                return Err(bad());
            }
            max_rack = max_rack.max(src).max(dst);
            rows.push((src, dst, weight));
        }
        let n = racks_hint.unwrap_or(0).max(max_rack as usize + 1);
        let mut m = Self::new(n, name);
        for (src, dst, weight) in rows {
            m.add(Pair::new(src, dst), weight);
        }
        Ok(m)
    }

    /// Convenience: write to a file path.
    pub fn save_csv(&self, path: &Path) -> std::io::Result<()> {
        self.write_csv(std::fs::File::create(path)?)
    }

    /// Convenience: read from a file path (named after the path).
    pub fn load_csv(path: &Path, racks_hint: Option<usize>) -> std::io::Result<Self> {
        Self::read_csv(
            std::fs::File::open(path)?,
            &path.display().to_string(),
            racks_hint,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(a: u32, b: u32) -> Pair {
        Pair::new(a, b)
    }

    #[test]
    fn canonical_indexing_covers_triangle() {
        let n = 7;
        let m = DemandMatrix::new(n, "t");
        let mut seen = std::collections::HashSet::new();
        for i in 0..n as u32 {
            for j in (i + 1)..n as u32 {
                assert!(seen.insert(m.index(p(i, j))), "index collision at {i},{j}");
            }
        }
        assert_eq!(seen.len(), m.num_pairs());
        assert_eq!(*seen.iter().max().unwrap(), m.num_pairs() - 1);
        // pair_list is exactly the slot order.
        let pairs = m.pair_list();
        for (slot, &pair) in pairs.iter().enumerate() {
            assert_eq!(m.index(pair), slot);
        }
    }

    #[test]
    fn normalization_against_hand_computed() {
        let mut m = DemandMatrix::new(3, "t");
        m.set(p(0, 1), 1.0);
        m.set(p(0, 2), 1.0);
        m.set(p(1, 2), 2.0);
        assert_eq!(m.total(), 4.0);
        let n = m.normalized();
        assert!((n.get(p(0, 1)) - 0.25).abs() < 1e-12);
        assert!((n.get(p(1, 2)) - 0.5).abs() < 1e-12);
        assert!((n.total() - 1.0).abs() < 1e-12);
        // Original untouched.
        assert_eq!(m.get(p(1, 2)), 2.0);
    }

    #[test]
    fn entropy_against_hand_computed() {
        // [1, 1, 2] -> p = [1/4, 1/4, 1/2] -> H = 2·(1/4·2) + 1/2·1 = 1.5 bits.
        let mut m = DemandMatrix::new(3, "t");
        m.set(p(0, 1), 1.0);
        m.set(p(0, 2), 1.0);
        m.set(p(1, 2), 2.0);
        assert!((m.entropy_bits() - 1.5).abs() < 1e-12);
        assert!((m.max_entropy_bits() - 3f64.log2()).abs() < 1e-12);
        // Uniform attains the maximum; a single hot pair attains zero.
        let u = DemandMatrix::uniform(6);
        assert!((u.entropy_bits() - u.max_entropy_bits()).abs() < 1e-9);
        let mut hot = DemandMatrix::new(6, "t");
        hot.set(p(0, 1), 5.0);
        assert_eq!(hot.entropy_bits(), 0.0);
    }

    #[test]
    fn top_k_and_share_hand_computed() {
        let mut m = DemandMatrix::new(4, "t");
        m.set(p(0, 1), 5.0);
        m.set(p(2, 3), 3.0);
        m.set(p(0, 2), 2.0);
        let top = m.top_k(2);
        assert_eq!(top[0], (p(0, 1), 5.0));
        assert_eq!(top[1], (p(2, 3), 3.0));
        assert!((m.top_share(2) - 0.8).abs() < 1e-12);
        assert!((m.top_share(100) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gini_orders_families_by_skew() {
        let uniform = DemandMatrix::uniform(20);
        let zipf = DemandMatrix::zipf_pairs(20, 1.2, 1);
        let microsoft = DemandMatrix::microsoft(20, MicrosoftParams::default(), 1);
        assert!(uniform.gini() < 1e-12);
        assert!(zipf.gini() > 0.5, "zipf gini {}", zipf.gini());
        assert!(
            microsoft.gini() > 0.5,
            "microsoft gini {}",
            microsoft.gini()
        );
    }

    #[test]
    fn from_trace_counts_requests() {
        let reqs = vec![p(0, 1), p(0, 1), p(2, 3)];
        let m = DemandMatrix::from_trace(5, &reqs);
        assert_eq!(m.get(p(0, 1)), 2.0);
        assert_eq!(m.get(p(2, 3)), 1.0);
        assert_eq!(m.get(p(0, 4)), 0.0);
        assert_eq!(m.total(), 3.0);
    }

    #[test]
    fn hotspot_mass_splits_as_specified() {
        let m = DemandMatrix::hotspot(10, 4, 0.8);
        let hot: f64 = (0..4u32)
            .flat_map(|i| ((i + 1)..4).map(move |j| p(i, j)))
            .map(|e| m.get(e))
            .sum();
        // Hot pairs get p_hot plus their share of the uniform background.
        let expected = 0.8 + 0.2 * 6.0 / 45.0;
        assert!((hot - expected).abs() < 1e-12, "hot mass {hot}");
        assert!((m.total() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn permutation_is_a_perfect_matching() {
        let m = DemandMatrix::permutation(8, 3);
        let entries: Vec<(Pair, f64)> = m.entries().collect();
        assert_eq!(entries.len(), 4);
        let mut seen = std::collections::HashSet::new();
        for (pair, w) in entries {
            assert_eq!(w, 1.0);
            assert!(seen.insert(pair.lo()) && seen.insert(pair.hi()));
        }
    }

    #[test]
    fn clustered_intra_mass() {
        let m = DemandMatrix::clustered(12, 3, 0.9, 7);
        assert!((m.total() - 1.0).abs() < 1e-9);
        // 3 clusters of 4 racks -> 18 intra pairs out of 66; check the
        // heaviest 18 pairs carry the intra mass.
        assert!(m.top_share(18) > 0.89, "intra share {}", m.top_share(18));
    }

    #[test]
    fn blend_interpolates() {
        let a = DemandMatrix::uniform(6);
        let b = DemandMatrix::zipf_pairs(6, 1.5, 2);
        let mid = DemandMatrix::blend(&a.normalized(), &b.normalized(), 0.5);
        assert!((mid.total() - 1.0).abs() < 1e-9);
        assert_eq!(DemandMatrix::blend(&a, &b, 0.0).weights(), a.weights());
        assert_eq!(DemandMatrix::blend(&a, &b, 1.0).weights(), b.weights());
        let g_mid = mid.gini();
        assert!(g_mid > a.normalized().gini() && g_mid < b.normalized().gini());
    }

    #[test]
    fn microsoft_matches_pair_weight_arrays() {
        let (pairs, weights) = microsoft_pair_weights(12, MicrosoftParams::default(), 9);
        let m = DemandMatrix::microsoft(12, MicrosoftParams::default(), 9);
        for (&pair, &w) in pairs.iter().zip(&weights) {
            assert_eq!(m.get(pair), w);
        }
        assert_eq!(pairs.len(), m.num_pairs());
    }

    #[test]
    fn csv_roundtrip() {
        let m = DemandMatrix::zipf_pairs(9, 1.1, 5);
        let mut buf = Vec::new();
        m.write_csv(&mut buf).unwrap();
        let back = DemandMatrix::read_csv(buf.as_slice(), "back", Some(9)).unwrap();
        assert_eq!(back.num_racks(), 9);
        for (pair, w) in m.entries() {
            assert!((back.get(pair) - w).abs() < 1e-9);
        }
    }

    #[test]
    fn csv_rejects_malformed() {
        assert!(DemandMatrix::read_csv("src,dst,weight\n0,0,1.0\n".as_bytes(), "t", None).is_err());
        assert!(DemandMatrix::read_csv("src,dst,weight\n0,1\n".as_bytes(), "t", None).is_err());
        assert!(
            DemandMatrix::read_csv("src,dst,weight\n0,1,-2\n".as_bytes(), "t", None).is_err(),
            "negative weight"
        );
    }

    #[test]
    fn json_emission() {
        let m = DemandMatrix::uniform(3);
        let j = m.to_json();
        assert!(j.contains("\"num_racks\":3"));
        assert!(j.contains("\"name\":\"uniform(n=3)\""));
    }

    #[test]
    #[should_panic(expected = "cannot normalize")]
    fn normalize_rejects_zero_matrix() {
        DemandMatrix::new(4, "zero").normalize();
    }
}

//! # dcn-demand
//!
//! The **demand-matrix substrate**: rack-to-rack traffic matrices as
//! first-class values, their temporal evolution, and demand-aware static
//! baselines built from them.
//!
//! The paper evaluates R-BMA on traces *sampled from* a rack-to-rack
//! probability matrix (the Microsoft/ProjecToR setting of Fig. 4), and the
//! demand-aware-networking literature — COUDER (arXiv:2010.00090),
//! integrated topology/traffic engineering (arXiv:2402.09115) — treats the
//! matrix itself as the design input: its skew decides how much a
//! b-matching can save, its drift decides how fast a static design decays,
//! and robust designs hedge over matrix *sets*. This crate provides that
//! vocabulary to the rest of the workspace:
//!
//! * [`matrix`] — [`DemandMatrix`]: dense upper-triangle pair weights with
//!   normalization, skew/entropy statistics, top-k extraction, CSV/JSON
//!   I/O, empirical estimation from observed requests, and constructors for
//!   the standard families (uniform, Zipf-pair, clustered, hotspot,
//!   permutation, and the paper's ProjecToR-style [`microsoft`]
//!   matrix — [`microsoft_pair_weights`] preserves the historical
//!   construction order so seeded Microsoft streams stay byte-identical).
//! * [`sequence`] — [`MatrixSequence`]: piecewise-constant temporal
//!   evolution (abrupt phase switches, quantized smooth drift, per-phase
//!   seeds), so workloads are no longer frozen-matrix i.i.d.
//! * [`aware`] — [`DemandAware`]: COUDER-style static b-matchings from one
//!   matrix (greedy heavy edges or repeated exact matchings over
//!   `dcn-matching`) or hedged over a set (greedy max-min), run by
//!   `dcn-core` as the `DemandAware` algorithm next to SO-BMA/Oblivious.
//!
//! The streaming side lives in `dcn-traces` (`MatrixKernel`,
//! `SequenceKernel`, `TraceSpec::Matrix`/`TraceSpec::Sequence`): this crate
//! deliberately sits *below* the trace layer so both the workload
//! generators and the algorithms can depend on it.
//!
//! [`microsoft`]: DemandMatrix::microsoft

pub mod aware;
pub mod matrix;
pub mod sequence;

pub use aware::{demand_edges, AwareStrategy, DemandAware};
pub use matrix::{microsoft_pair_weights, DemandMatrix, MicrosoftParams};
pub use sequence::{MatrixSequence, Phase};

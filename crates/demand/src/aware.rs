//! The COUDER-style **demand-aware static baseline**: a b-matching computed
//! from one or more demand matrices, held fixed while traffic replays.
//!
//! COUDER (arXiv:2010.00090) provisions reconfigurable topologies from
//! predicted traffic matrices and hedges against prediction error by
//! optimizing the worst case over a *set* of matrices; arXiv:2402.09115
//! integrates the same idea with traffic engineering. This module is the
//! matrix-side counterpart of `dcn-core`'s SO-BMA (which aggregates a
//! concrete trace): the input is a [`DemandMatrix`] — a *forecast* — not the
//! realized request sequence, so the baseline can be mis-estimated, which is
//! exactly what the `demand` repro target sweeps.
//!
//! Two single-matrix strategies reuse `dcn-matching`'s offline machinery
//! (greedy heavy edges, or `b` rounds of exact blossom matching); the hedged
//! multi-matrix builder greedily maximizes the *minimum* saved demand across
//! the matrix set.

use crate::matrix::DemandMatrix;
use dcn_matching::{greedy_b_matching, repeated_mwm_b_matching, WeightedEdge};
use dcn_topology::{DistanceMatrix, Pair};

/// Fixed-point scale turning normalized f64 demand into the i64 weights
/// `dcn-matching` consumes (2⁴⁰ keeps 12+ significant digits and leaves
/// ample headroom before i64 overflow even when multiplied by `ℓ_e`).
const WEIGHT_SCALE: f64 = (1u64 << 40) as f64;

/// How a single-matrix demand-aware matching is computed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AwareStrategy {
    /// Greedy heavy b-matching (½-approximation; fast).
    GreedyHeavy,
    /// `b` rounds of exact max-weight matching on the residual graph —
    /// the physically faithful per-switch construction (see
    /// `dcn_matching::repeated`).
    RepeatedMwm,
}

/// Weighted candidate edges of `demand` under the cost model: pair `e`
/// saves `demand(e) · (ℓ_e − 1)` routing cost per unit of served demand.
/// The matrix is normalized internally, so weights are comparable across
/// matrices; zero-saving pairs (ℓ = 1 or zero demand) are dropped.
pub fn demand_edges(dm: &DistanceMatrix, demand: &DemandMatrix) -> Vec<WeightedEdge> {
    assert_eq!(
        dm.num_racks(),
        demand.num_racks(),
        "distance matrix and demand matrix must agree on the rack count"
    );
    let total = demand.total();
    assert!(total > 0.0, "demand-aware matching needs positive demand");
    demand
        .entries()
        .filter_map(|(pair, w)| {
            let saving = (dm.ell(pair) as i64 - 1) * ((w / total) * WEIGHT_SCALE).round() as i64;
            (saving > 0).then(|| WeightedEdge::new(pair.lo(), pair.hi(), saving))
        })
        .collect()
}

/// A demand-aware static b-matching builder over one matrix (point
/// forecast) or several (hedged against mis-estimation).
///
/// ```
/// use dcn_demand::{AwareStrategy, DemandAware, DemandMatrix};
/// use dcn_topology::{builders, DistanceMatrix};
///
/// let dm = DistanceMatrix::between_racks(&builders::leaf_spine(8, 2));
/// let demand = DemandMatrix::zipf_pairs(8, 1.2, 1);
/// let matching = DemandAware::new(demand).build(&dm, 2);
/// assert!(dcn_matching::bmatching::is_valid_b_matching(&matching, 2));
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct DemandAware {
    matrices: Vec<DemandMatrix>,
    strategy: AwareStrategy,
}

impl DemandAware {
    /// Point-forecast builder over a single matrix.
    pub fn new(matrix: DemandMatrix) -> Self {
        Self {
            matrices: vec![matrix],
            strategy: AwareStrategy::GreedyHeavy,
        }
    }

    /// Hedged builder over a matrix set: the matching maximizes (greedily)
    /// the minimum saved demand across the set, so no single matrix is
    /// served badly. With one matrix this degrades to [`DemandAware::new`].
    pub fn hedged(matrices: Vec<DemandMatrix>) -> Self {
        assert!(
            !matrices.is_empty(),
            "hedged builder needs at least one matrix"
        );
        let n = matrices[0].num_racks();
        assert!(
            matrices.iter().all(|m| m.num_racks() == n),
            "hedged matrices must share the rack count"
        );
        Self {
            matrices,
            strategy: AwareStrategy::GreedyHeavy,
        }
    }

    /// Selects the single-matrix strategy (the hedged path is always the
    /// greedy max-min scan — exact matchings do not compose across the set).
    pub fn with_strategy(mut self, strategy: AwareStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// The forecast matrices.
    pub fn matrices(&self) -> &[DemandMatrix] {
        &self.matrices
    }

    /// Whether this builder hedges over more than one matrix.
    pub fn is_hedged(&self) -> bool {
        self.matrices.len() > 1
    }

    /// Number of racks.
    pub fn num_racks(&self) -> usize {
        self.matrices[0].num_racks()
    }

    /// Computes the static b-matching. Deterministic: identical inputs
    /// yield the identical edge list (ties in all scans break by pair
    /// order).
    pub fn build(&self, dm: &DistanceMatrix, b: usize) -> Vec<Pair> {
        assert!(b >= 1, "degree bound must be positive");
        if self.matrices.len() == 1 {
            let edges = demand_edges(dm, &self.matrices[0]);
            return match self.strategy {
                AwareStrategy::GreedyHeavy => greedy_b_matching(dm.num_racks(), &edges, b),
                AwareStrategy::RepeatedMwm => repeated_mwm_b_matching(dm.num_racks(), &edges, b),
            };
        }
        self.build_hedged(dm, b)
    }

    /// Greedy max-min over the matrix set via *lagging-matrix* rounds:
    /// repeatedly give the currently least-covered matrix its own heaviest
    /// remaining edge. Budget thus goes to each matrix's top edges (where
    /// skewed demand concentrates) while coverage stays balanced — unlike a
    /// one-step max-min scan, which burns capacity on edges that are
    /// mediocre for every matrix. Ties break by summed saving and then pair
    /// order, so the build is deterministic.
    fn build_hedged(&self, dm: &DistanceMatrix, b: usize) -> Vec<Pair> {
        let n = dm.num_racks();
        let k = self.matrices.len();
        // Per-matrix savings, aligned on a shared candidate list (BTreeMap
        // keeps candidates in pair order for determinism).
        let per_matrix: Vec<Vec<WeightedEdge>> =
            self.matrices.iter().map(|m| demand_edges(dm, m)).collect();
        let mut candidates: std::collections::BTreeMap<Pair, Vec<i64>> =
            std::collections::BTreeMap::new();
        for (mi, edges) in per_matrix.iter().enumerate() {
            for e in edges {
                candidates
                    .entry(Pair::new(e.u, e.v))
                    .or_insert_with(|| vec![0; k])[mi] = e.weight;
            }
        }
        let candidates: Vec<(Pair, Vec<i64>)> = candidates.into_iter().collect();

        let mut covered = vec![0i64; k];
        let mut degree = vec![0usize; n];
        let mut taken = vec![false; candidates.len()];
        let mut chosen = Vec::new();
        let max_edges = n * b / 2;
        while chosen.len() < max_edges {
            // Matrices in ascending-coverage order (index breaks ties).
            let mut order: Vec<usize> = (0..k).collect();
            order.sort_by_key(|&m| (covered[m], m));
            // The first matrix in that order that still has an improvable
            // edge gets its best one.
            let mut pick: Option<usize> = None;
            'matrices: for &m in &order {
                let mut best: Option<(i64, i64, usize)> = None; // (s_m, sum, idx)
                for (idx, (pair, savings)) in candidates.iter().enumerate() {
                    if taken[idx]
                        || savings[m] == 0
                        || degree[pair.lo() as usize] >= b
                        || degree[pair.hi() as usize] >= b
                    {
                        continue;
                    }
                    let sum: i64 = savings.iter().sum();
                    // Strictly-greater keeps the earliest (smallest pair)
                    // candidate on full ties.
                    if best.is_none_or(|(bs, bsum, _)| {
                        savings[m] > bs || (savings[m] == bs && sum > bsum)
                    }) {
                        best = Some((savings[m], sum, idx));
                    }
                }
                if let Some((_, _, idx)) = best {
                    pick = Some(idx);
                    break 'matrices;
                }
            }
            let Some(idx) = pick else { break };
            let (pair, savings) = &candidates[idx];
            taken[idx] = true;
            degree[pair.lo() as usize] += 1;
            degree[pair.hi() as usize] += 1;
            for (c, &s) in covered.iter_mut().zip(savings) {
                *c += s;
            }
            chosen.push(*pair);
        }
        chosen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_matching::bmatching::is_valid_b_matching;
    use dcn_topology::builders;

    fn uniform_far(n: usize) -> DistanceMatrix {
        // Leaf-spine: all rack pairs at distance 2, so every unit of demand
        // served optically saves exactly 1.
        DistanceMatrix::between_racks(&builders::leaf_spine(n, 2))
    }

    #[test]
    fn picks_heaviest_demand_pairs() {
        let dm = uniform_far(6);
        let mut demand = DemandMatrix::new(6, "t");
        demand.set(Pair::new(0, 1), 10.0);
        demand.set(Pair::new(2, 3), 8.0);
        demand.set(Pair::new(0, 2), 1.0);
        for strategy in [AwareStrategy::GreedyHeavy, AwareStrategy::RepeatedMwm] {
            let m = DemandAware::new(demand.clone())
                .with_strategy(strategy)
                .build(&dm, 1);
            assert!(m.contains(&Pair::new(0, 1)), "{strategy:?}");
            assert!(m.contains(&Pair::new(2, 3)), "{strategy:?}");
            assert!(is_valid_b_matching(&m, 1));
        }
    }

    #[test]
    fn zero_saving_pairs_ignored() {
        // Complete graph: ℓ ≡ 1, nothing to save.
        let dm = DistanceMatrix::between_racks(&builders::complete(5));
        let demand = DemandMatrix::uniform(5);
        assert!(demand_edges(&dm, &demand).is_empty());
        assert!(DemandAware::new(demand).build(&dm, 2).is_empty());
    }

    #[test]
    fn respects_degree_bound() {
        let dm = uniform_far(10);
        let demand = DemandMatrix::zipf_pairs(10, 1.3, 4);
        for b in [1usize, 2, 3] {
            let m = DemandAware::new(demand.clone()).build(&dm, b);
            assert!(is_valid_b_matching(&m, b), "b={b}");
            let hedged =
                DemandAware::hedged(vec![demand.clone(), DemandMatrix::zipf_pairs(10, 1.3, 5)])
                    .build(&dm, b);
            assert!(is_valid_b_matching(&hedged, b), "hedged b={b}");
        }
    }

    #[test]
    fn hedged_builder_is_deterministic() {
        let dm = uniform_far(12);
        let set = vec![
            DemandMatrix::zipf_pairs(12, 1.2, 1),
            DemandMatrix::zipf_pairs(12, 1.2, 2),
            DemandMatrix::microsoft(12, crate::MicrosoftParams::default(), 3),
        ];
        let builder = DemandAware::hedged(set.clone());
        let a = builder.build(&dm, 3);
        let b = builder.build(&dm, 3);
        assert_eq!(a, b, "same inputs must give the same matching");
        assert!(!a.is_empty());
        // And a freshly reconstructed builder agrees too.
        let c = DemandAware::hedged(set).build(&dm, 3);
        assert_eq!(a, c);
    }

    #[test]
    fn hedging_protects_the_worst_case() {
        let dm = uniform_far(8);
        // Two disjoint permutation-style forecasts: a point forecast on `a`
        // saves nothing under `b`, the hedged matching covers both.
        let mut a = DemandMatrix::new(8, "a");
        let mut b_mat = DemandMatrix::new(8, "b");
        for i in 0..4u32 {
            a.set(Pair::new(2 * i, 2 * i + 1), 1.0);
            b_mat.set(Pair::new(i, i + 4), 1.0);
        }
        let saved = |matching: &[Pair], m: &DemandMatrix| -> f64 {
            matching.iter().map(|&p| m.normalized().get(p)).sum()
        };
        let point = DemandAware::new(a.clone()).build(&dm, 2);
        let hedged = DemandAware::hedged(vec![a.clone(), b_mat.clone()]).build(&dm, 2);
        let point_worst = saved(&point, &a).min(saved(&point, &b_mat));
        let hedged_worst = saved(&hedged, &a).min(saved(&hedged, &b_mat));
        assert!(
            hedged_worst > point_worst,
            "hedged worst-case {hedged_worst} must beat point forecast {point_worst}"
        );
        // With b=2 both permutations fit entirely.
        assert!((hedged_worst - 1.0).abs() < 1e-9);
    }

    #[test]
    fn hedged_worst_case_beats_point_forecasts_on_skewed_matrices() {
        // On realistic (microsoft-style) matrix pairs the hedged design's
        // worst-case coverage must beat BOTH point designs' worst cases —
        // the property a one-step max-min greedy fails (it burns budget on
        // edges mediocre for every matrix).
        let dm = uniform_far(50);
        let a = DemandMatrix::microsoft(50, crate::MicrosoftParams::default(), 1).normalized();
        let b_mat = DemandMatrix::microsoft(50, crate::MicrosoftParams::default(), 2).normalized();
        let cov = |matching: &[Pair], m: &DemandMatrix| -> f64 {
            matching.iter().map(|&p| m.get(p)).sum()
        };
        let worst = |matching: &[Pair]| cov(matching, &a).min(cov(matching, &b_mat));
        let point_a = DemandAware::new(a.clone()).build(&dm, 4);
        let point_b = DemandAware::new(b_mat.clone()).build(&dm, 4);
        let hedged = DemandAware::hedged(vec![a.clone(), b_mat.clone()]).build(&dm, 4);
        assert!(
            worst(&hedged) > worst(&point_a).max(worst(&point_b)),
            "hedged worst case {:.3} must beat point worst cases {:.3}/{:.3}",
            worst(&hedged),
            worst(&point_a),
            worst(&point_b)
        );
    }

    #[test]
    fn single_matrix_hedged_equals_point() {
        let dm = uniform_far(10);
        let demand = DemandMatrix::zipf_pairs(10, 1.1, 7);
        let point = DemandAware::new(demand.clone()).build(&dm, 2);
        let hedged = DemandAware::hedged(vec![demand]).build(&dm, 2);
        assert_eq!(point, hedged);
    }
}

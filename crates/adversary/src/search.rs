//! The seeded, budgeted search driver.
//!
//! One search round: select parents and generate a batch of mutants
//! **sequentially** from the search RNG, evaluate the batch in parallel
//! through the work-stealing executor ([`dcn_core::sweep::steal_map`],
//! which returns results in submission order), then fold the fitnesses
//! into the pool **sequentially**. Randomness never crosses a thread
//! boundary, so the outcome is bit-identical for any `--threads` value —
//! the same discipline the sweep fan-out uses.
//!
//! The pool is seeded with the hand-written reference adversaries
//! (star-nemesis blocks per §2.4, uniform, hotspot, permutation, Zipf
//! ramp) plus a few random genomes; the star nemesis fitness is reported
//! as `star_baseline`, the bar the search is meant to beat.

use crate::mutate::{mutate, random_genome, MutationConfig};
use crate::pool::{Pool, PoolEntry};
use dcn_core::algorithms::AlgorithmKind;
use dcn_core::ratio::{cost_ratio_vs_static, RatioOutcome};
use dcn_core::simulator::SimConfig;
use dcn_core::sweep::steal_map;
use dcn_topology::{builders, DistanceMatrix};
use dcn_traces::{Genome, Segment};
use dcn_util::rngx::derive_seed;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Everything one search run depends on. Two equal configs (and equal
/// algorithm) produce identical outcomes regardless of `threads`.
#[derive(Clone, Debug)]
pub struct SearchConfig {
    /// Rack count of the leaf-spine evaluation topology (even, ≥ 4).
    pub num_racks: usize,
    /// Matching degree b.
    pub b: usize,
    /// Reconfiguration cost α.
    pub alpha: u64,
    /// Seed for the algorithm under attack (R-BMA's coins etc.).
    pub algo_seed: u64,
    /// Seed for the search's own randomness (mutations, selection).
    pub search_seed: u64,
    /// Genomes aim for roughly this many requests.
    pub target_len: usize,
    /// Total fitness evaluations (including pool seeding).
    pub budget: usize,
    /// Mutants evaluated per parallel round.
    pub batch: usize,
    /// Pool capacity.
    pub pool_capacity: usize,
    /// Worker threads for evaluation (`0` = auto).
    pub threads: usize,
}

impl SearchConfig {
    /// A small default search: 8 racks, b=2, α=10, ~800-request genomes,
    /// 200 evaluations in rounds of 16, pool of 24.
    pub fn quick(search_seed: u64) -> Self {
        SearchConfig {
            num_racks: 8,
            b: 2,
            alpha: 10,
            algo_seed: 1,
            search_seed,
            target_len: 800,
            budget: 200,
            batch: 16,
            pool_capacity: 24,
            threads: 0,
        }
    }
}

/// What a search run found.
#[derive(Clone, Debug)]
pub struct SearchOutcome {
    /// The fittest genome and its ratio.
    pub best: PoolEntry,
    /// Fitness of the hand-written §2.4 star nemesis at the same scale —
    /// the bar the search tries to beat.
    pub star_baseline: f64,
    /// Fitness evaluations actually spent.
    pub evaluations: usize,
    /// The final pool (fittest first), for corpus harvesting.
    pub pool: Pool,
}

/// The evaluation topology every search and corpus replay uses: a
/// leaf-spine with `num_racks` racks and two spines (uniform inter-rack
/// path length ℓ ≡ 2, matching the lower-bound construction).
pub fn search_topology(num_racks: usize) -> Arc<DistanceMatrix> {
    Arc::new(DistanceMatrix::between_racks(&builders::leaf_spine(
        num_racks, 2,
    )))
}

/// One fitness evaluation: lowers `genome` to a trace and returns the
/// online algorithm's cost ratio vs SO-BMA on it.
pub fn evaluate(
    kind: &AlgorithmKind,
    dm: &Arc<DistanceMatrix>,
    b: usize,
    alpha: u64,
    algo_seed: u64,
    genome: &Genome,
) -> RatioOutcome {
    let trace = genome.as_trace();
    let config = SimConfig {
        seed: algo_seed,
        trace_name: genome.name(),
        ..SimConfig::default()
    };
    cost_ratio_vs_static(kind, dm, b, alpha, algo_seed, &trace, &config)
}

/// The hand-written §2.4 reference adversary at this config's scale:
/// star blocks with `b + 1` spokes (one more hot pair than the matching
/// can hold) and α-length blocks.
pub fn star_nemesis_genome(cfg: &SearchConfig) -> Genome {
    let spokes = (cfg.b + 1).min(cfg.num_racks - 1).max(2);
    let block_len = (cfg.alpha as usize).max(1);
    Genome::new(
        cfg.num_racks,
        vec![Segment::StarBlocks {
            spokes,
            block_len,
            blocks: (cfg.target_len / block_len).max(1),
            seed: derive_seed(cfg.search_seed, 0x5AB1),
        }],
    )
}

/// The deterministic seed population: the reference adversaries plus a
/// few random genomes. Index 0 is always the star nemesis.
fn seed_genomes(cfg: &SearchConfig, mcfg: &MutationConfig, rng: &mut SmallRng) -> Vec<Genome> {
    let n = cfg.num_racks;
    let len = cfg.target_len;
    let seed = derive_seed(cfg.search_seed, 0x5EED);
    let mut seeds = vec![
        star_nemesis_genome(cfg),
        Genome::new(n, vec![Segment::Uniform { len, seed }]),
        Genome::new(
            n,
            vec![Segment::Hotspot {
                len,
                num_hot: 4.min(n),
                p_hot: 0.9,
                offset: 0,
                seed,
            }],
        ),
        Genome::new(n, vec![Segment::Permutation { len, seed }]),
        Genome::new(
            n,
            vec![Segment::ZipfRamp {
                len,
                s_start: 0.5,
                s_end: 2.5,
                seed,
            }],
        ),
    ];
    for _ in 0..3 {
        seeds.push(random_genome(mcfg, len, rng));
    }
    seeds
}

/// Runs the budgeted adversarial search for one algorithm.
///
/// Deterministic in `(kind, cfg)` for any thread count. Panics only on a
/// non-finite fitness — and then the message carries the offending
/// genome's JSON so the failure replays from the report alone.
pub fn search(kind: &AlgorithmKind, cfg: &SearchConfig) -> SearchOutcome {
    assert!(cfg.budget >= 1 && cfg.batch >= 1);
    let dm = search_topology(cfg.num_racks);
    let mcfg = MutationConfig::for_search(cfg.num_racks, cfg.target_len);
    let mut rng = SmallRng::seed_from_u64(derive_seed(cfg.search_seed, 0xAD5E));
    let mut pool = Pool::new(cfg.pool_capacity);
    let mut evaluations = 0usize;

    let run_batch = |genomes: &[Genome]| -> Vec<f64> {
        steal_map(genomes.len(), cfg.threads, |i| {
            evaluate(kind, &dm, cfg.b, cfg.alpha, cfg.algo_seed, &genomes[i]).ratio
        })
    };
    let fold = |pool: &mut Pool, genomes: Vec<Genome>, fits: Vec<f64>| {
        for (g, f) in genomes.into_iter().zip(fits) {
            assert!(
                f.is_finite(),
                "non-finite fitness {f} for {} — replay genome JSON: {}",
                kind.label(),
                g.to_json()
            );
            pool.offer(g, f);
        }
    };

    // Seed round. Index 0 is the star nemesis: its fitness is the bar.
    let seeds: Vec<Genome> = seed_genomes(cfg, &mcfg, &mut rng)
        .into_iter()
        .take(cfg.budget)
        .collect();
    let fits = run_batch(&seeds);
    let star_baseline = fits[0];
    evaluations += seeds.len();
    fold(&mut pool, seeds, fits);

    // Mutation rounds until the budget is spent.
    while evaluations < cfg.budget {
        let k = cfg.batch.min(cfg.budget - evaluations);
        let mutants: Vec<Genome> = (0..k)
            .map(|_| {
                let parent = pool.select(&mut rng).genome.clone();
                mutate(&parent, &mcfg, &mut rng)
            })
            .collect();
        let fits = run_batch(&mutants);
        evaluations += k;
        fold(&mut pool, mutants, fits);
    }

    SearchOutcome {
        best: pool.best().expect("pool non-empty after seeding").clone(),
        star_baseline,
        evaluations,
        pool,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn search_is_deterministic_across_thread_counts() {
        let mut cfg = SearchConfig::quick(11);
        cfg.budget = 24;
        cfg.batch = 8;
        cfg.target_len = 200;
        let kind = AlgorithmKind::Bma;
        let a = {
            let mut c = cfg.clone();
            c.threads = 1;
            search(&kind, &c)
        };
        let b = {
            let mut c = cfg.clone();
            c.threads = 4;
            search(&kind, &c)
        };
        assert_eq!(a.best.genome, b.best.genome);
        assert_eq!(a.best.fitness, b.best.fitness);
        assert_eq!(a.star_baseline, b.star_baseline);
        assert_eq!(a.evaluations, b.evaluations);
    }

    #[test]
    fn best_never_below_the_seed_population() {
        let mut cfg = SearchConfig::quick(3);
        cfg.budget = 40;
        cfg.batch = 8;
        cfg.target_len = 200;
        let out = search(&AlgorithmKind::Bma, &cfg);
        assert!(out.best.fitness >= out.star_baseline);
        assert_eq!(out.evaluations, 40);
        assert!(out.best.fitness.is_finite() && out.best.fitness > 0.0);
    }

    #[test]
    fn evaluate_replays_identically_from_the_genome_value() {
        let cfg = SearchConfig::quick(5);
        let dm = search_topology(cfg.num_racks);
        let g = star_nemesis_genome(&cfg);
        let kind = AlgorithmKind::Rbma { lazy: true };
        let a = evaluate(&kind, &dm, cfg.b, cfg.alpha, cfg.algo_seed, &g);
        let b = evaluate(&kind, &dm, cfg.b, cfg.alpha, cfg.algo_seed, &g);
        assert_eq!(a.online.total.total_cost(), b.online.total.total_cost());
        assert_eq!(a.offline_cost, b.offline_cost);
        assert_eq!(a.ratio, b.ratio);
    }

    #[test]
    fn search_beats_the_star_baseline_at_quick_scale() {
        // The acceptance property at reduced budget: with mutation the
        // pool must find something strictly worse (for the online
        // algorithm) than the hand-written nemesis.
        let mut cfg = SearchConfig::quick(7);
        cfg.budget = 60;
        cfg.batch = 12;
        cfg.target_len = 300;
        let out = search(&AlgorithmKind::Bma, &cfg);
        assert!(
            out.best.fitness > out.star_baseline,
            "best {} did not beat star baseline {} — best genome JSON: {}",
            out.best.fitness,
            out.star_baseline,
            out.best.genome.to_json()
        );
    }
}

//! The input pool: the best genomes found so far, keyed by fitness.
//!
//! fuzzcheck-style replacement: the pool holds at most `capacity` entries
//! sorted by fitness (descending), an offered genome enters only if it
//! beats the current tail (or the pool has room) and is not already
//! present, and insertion evicts the weakest entry. Parent selection is
//! **rank-biased** — squaring a uniform draw concentrates picks on the
//! fittest entries while keeping every entry reachable, the usual
//! exploitation/exploration compromise.

use dcn_traces::Genome;
use rand::rngs::SmallRng;
use rand::RngExt;

/// One pool resident.
#[derive(Clone, Debug)]
pub struct PoolEntry {
    /// The genome.
    pub genome: Genome,
    /// Its cost ratio vs the static offline baseline.
    pub fitness: f64,
}

/// Top-K genomes by fitness with deduplication.
#[derive(Clone, Debug)]
pub struct Pool {
    capacity: usize,
    // Sorted by fitness, descending. Ties keep insertion order (stable),
    // so pool evolution is deterministic.
    entries: Vec<PoolEntry>,
}

impl Pool {
    /// An empty pool holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "pool capacity must be >= 1");
        Pool {
            capacity,
            entries: Vec::with_capacity(capacity),
        }
    }

    /// Offers a genome; returns whether it entered the pool.
    ///
    /// Non-finite fitness never enters; an exact duplicate genome never
    /// enters (its fitness is identical by determinism, so it adds no
    /// information).
    pub fn offer(&mut self, genome: Genome, fitness: f64) -> bool {
        if !fitness.is_finite() {
            return false;
        }
        if self.entries.iter().any(|e| e.genome == genome) {
            return false;
        }
        // First index whose fitness is strictly below the offer — equal
        // fitness keeps earlier arrivals ahead.
        let pos = self.entries.partition_point(|e| e.fitness >= fitness);
        if pos >= self.capacity {
            return false;
        }
        self.entries.insert(pos, PoolEntry { genome, fitness });
        self.entries.truncate(self.capacity);
        true
    }

    /// The fittest entry.
    pub fn best(&self) -> Option<&PoolEntry> {
        self.entries.first()
    }

    /// Rank-biased random parent (panics on an empty pool).
    pub fn select(&self, rng: &mut SmallRng) -> &PoolEntry {
        assert!(!self.entries.is_empty(), "cannot select from empty pool");
        let r: f64 = rng.random_range(0.0..1.0);
        let idx = ((r * r) * self.entries.len() as f64) as usize;
        &self.entries[idx.min(self.entries.len() - 1)]
    }

    /// All entries, fittest first.
    pub fn entries(&self) -> &[PoolEntry] {
        &self.entries
    }

    /// Number of residents.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_traces::Segment;
    use rand::SeedableRng;

    fn genome(seed: u64) -> Genome {
        Genome::new(4, vec![Segment::Uniform { len: 10, seed }])
    }

    #[test]
    fn keeps_top_k_sorted_descending() {
        let mut pool = Pool::new(3);
        for (i, f) in [1.0, 3.0, 2.0, 0.5, 4.0].iter().enumerate() {
            pool.offer(genome(i as u64), *f);
        }
        let fits: Vec<f64> = pool.entries().iter().map(|e| e.fitness).collect();
        assert_eq!(fits, vec![4.0, 3.0, 2.0]);
        assert_eq!(pool.best().unwrap().fitness, 4.0);
    }

    #[test]
    fn rejects_duplicates_and_non_finite() {
        let mut pool = Pool::new(4);
        assert!(pool.offer(genome(1), 2.0));
        assert!(!pool.offer(genome(1), 2.0), "duplicate genome re-entered");
        assert!(!pool.offer(genome(2), f64::NAN));
        assert!(!pool.offer(genome(3), f64::INFINITY));
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn full_pool_rejects_weaker_offers() {
        let mut pool = Pool::new(2);
        pool.offer(genome(1), 3.0);
        pool.offer(genome(2), 2.0);
        assert!(!pool.offer(genome(3), 1.0));
        assert!(pool.offer(genome(4), 2.5));
        let fits: Vec<f64> = pool.entries().iter().map(|e| e.fitness).collect();
        assert_eq!(fits, vec![3.0, 2.5]);
    }

    #[test]
    fn selection_is_biased_toward_the_best() {
        let mut pool = Pool::new(10);
        for i in 0..10 {
            pool.offer(genome(i), 10.0 - i as f64);
        }
        let mut rng = SmallRng::seed_from_u64(7);
        let mut top_half = 0;
        for _ in 0..1000 {
            if pool.select(&mut rng).fitness >= 6.0 {
                top_half += 1;
            }
        }
        // Rank-biased squaring should pick the top half far more than
        // uniformly (expected ~70%).
        assert!(top_half > 600, "only {top_half}/1000 picks in top half");
    }
}

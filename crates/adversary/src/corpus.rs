//! Regression-corpus entries: discovered adversarial genomes frozen as
//! JSON together with the **exact** costs their replay must reproduce.
//!
//! An entry is self-contained: algorithm tag, topology scale, (b, α),
//! seeds, the genome, and the expected online/offline costs. The tier-1
//! test `tests/corpus_replay.rs` loads every `corpus/*.json`, re-runs it
//! through [`crate::evaluate`], and demands bit-exact agreement — any
//! behavioural drift in the simulator, the algorithms, the RNG streams,
//! or the genome lowering fails the build with a copy-pasteable report.
//!
//! Beyond the replay gate, the corpus is a standing benchmark input: the
//! `scaling` target replays every entry as serve-path equality rows, and
//! `fig1`/`demand` append it as a replay-gated worst-case panel table
//! (each entry re-verified via [`CorpusEntry::verify`] before its row is
//! computed).

use crate::search::{evaluate, search_topology};
use dcn_core::algorithms::AlgorithmKind;
use dcn_core::ratio::RatioOutcome;
use dcn_traces::Genome;
use dcn_util::json::{parse_json, to_json_string, JsonValue};
use serde::Serialize;
use std::path::{Path, PathBuf};

/// The committed corpus directory (`crates/adversary/corpus/`).
pub fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

/// Loads every committed `corpus/*.json` entry, sorted by file name.
/// Panics on unreadable or malformed files — a broken corpus should fail
/// loudly wherever it is consumed (the tier-1 replay gate, the scaling
/// table's worst-case panel).
pub fn committed_entries() -> Vec<(String, CorpusEntry)> {
    let mut out = Vec::new();
    for dirent in std::fs::read_dir(corpus_dir()).expect("corpus directory exists") {
        let path = dirent.expect("readable corpus dirent").path();
        if path.extension().is_some_and(|x| x == "json") {
            let text = std::fs::read_to_string(&path).expect("readable corpus file");
            let entry = CorpusEntry::from_json(&text)
                .unwrap_or_else(|err| panic!("{}: {err}", path.display()));
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            out.push((name, entry));
        }
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

/// One frozen adversarial discovery.
#[derive(Clone, Debug, Serialize)]
pub struct CorpusEntry {
    /// Algorithm tag, parseable by [`parse_kind`].
    pub algorithm: String,
    /// Rack count of the leaf-spine evaluation topology.
    pub num_racks: usize,
    /// Matching degree b.
    pub b: usize,
    /// Reconfiguration cost α.
    pub alpha: u64,
    /// Seed of the algorithm under attack.
    pub algo_seed: u64,
    /// Expected online routing cost.
    pub expected_routing_cost: u64,
    /// Expected online reconfiguration cost.
    pub expected_reconfig_cost: u64,
    /// Expected number of reconfigurations.
    pub expected_reconfigurations: u64,
    /// Expected SO-BMA routing cost (the ratio denominator).
    pub expected_offline_cost: u64,
    /// The achieved ratio (informational; the u64 fields are the pins).
    pub ratio: f64,
    /// The hand-written star nemesis ratio at the same scale when this
    /// entry was harvested (informational).
    pub star_baseline: f64,
    /// The genome itself.
    pub genome: Genome,
}

/// Parses an algorithm tag: `Oblivious`, `Bma`, `RbmaLazy`, `RbmaStrict`,
/// `Rotor:<period>`, `Periodic:<period>`, `PredictiveRbma:<noise>`.
/// (The demand-aware baseline needs forecast matrices and is not
/// corpus-expressible.)
pub fn parse_kind(tag: &str) -> Option<AlgorithmKind> {
    match tag {
        "Oblivious" => return Some(AlgorithmKind::Oblivious),
        "Bma" => return Some(AlgorithmKind::Bma),
        "RbmaLazy" => return Some(AlgorithmKind::Rbma { lazy: true }),
        "RbmaStrict" => return Some(AlgorithmKind::Rbma { lazy: false }),
        _ => {}
    }
    let (name, arg) = tag.split_once(':')?;
    match name {
        "Rotor" => Some(AlgorithmKind::Rotor {
            period: arg.parse().ok()?,
        }),
        "Periodic" => Some(AlgorithmKind::Periodic {
            period: arg.parse().ok()?,
        }),
        "PredictiveRbma" => Some(AlgorithmKind::PredictiveRbma {
            noise: arg.parse().ok()?,
        }),
        _ => None,
    }
}

/// The corpus tag for a kind (inverse of [`parse_kind`]); `None` for
/// kinds that cannot be expressed as a tag.
pub fn kind_tag(kind: &AlgorithmKind) -> Option<String> {
    Some(match kind {
        AlgorithmKind::Oblivious => "Oblivious".into(),
        AlgorithmKind::Bma => "Bma".into(),
        AlgorithmKind::Rbma { lazy: true } => "RbmaLazy".into(),
        AlgorithmKind::Rbma { lazy: false } => "RbmaStrict".into(),
        AlgorithmKind::Rotor { period } => format!("Rotor:{period}"),
        AlgorithmKind::Periodic { period } => format!("Periodic:{period}"),
        AlgorithmKind::PredictiveRbma { noise } => format!("PredictiveRbma:{noise}"),
        AlgorithmKind::DemandAware { .. } => return None,
    })
}

impl CorpusEntry {
    /// Freezes an evaluation outcome as a corpus entry.
    pub fn from_outcome(
        kind: &AlgorithmKind,
        num_racks: usize,
        b: usize,
        alpha: u64,
        algo_seed: u64,
        star_baseline: f64,
        genome: Genome,
        outcome: &RatioOutcome,
    ) -> Self {
        CorpusEntry {
            algorithm: kind_tag(kind).expect("corpus-expressible algorithm"),
            num_racks,
            b,
            alpha,
            algo_seed,
            expected_routing_cost: outcome.online.total.routing_cost,
            expected_reconfig_cost: outcome.online.total.reconfig_cost,
            expected_reconfigurations: outcome.online.total.reconfigurations,
            expected_offline_cost: outcome.offline_cost,
            ratio: outcome.ratio,
            star_baseline,
            genome,
        }
    }

    /// Compact JSON form.
    pub fn to_json(&self) -> String {
        to_json_string(self).expect("corpus entry serialization cannot fail")
    }

    /// Parses [`CorpusEntry::to_json`] output back.
    pub fn from_json(text: &str) -> Result<CorpusEntry, String> {
        let v = parse_json(text)?;
        let req_u64 = |key: &str| {
            v.get(key)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("corpus entry: missing u64 field {key}"))
        };
        Ok(CorpusEntry {
            algorithm: v
                .get("algorithm")
                .and_then(JsonValue::as_str)
                .ok_or("corpus entry: missing string field algorithm")?
                .to_string(),
            num_racks: v
                .get("num_racks")
                .and_then(JsonValue::as_usize)
                .ok_or("corpus entry: missing integer field num_racks")?,
            b: v.get("b")
                .and_then(JsonValue::as_usize)
                .ok_or("corpus entry: missing integer field b")?,
            alpha: req_u64("alpha")?,
            algo_seed: req_u64("algo_seed")?,
            expected_routing_cost: req_u64("expected_routing_cost")?,
            expected_reconfig_cost: req_u64("expected_reconfig_cost")?,
            expected_reconfigurations: req_u64("expected_reconfigurations")?,
            expected_offline_cost: req_u64("expected_offline_cost")?,
            ratio: v
                .get("ratio")
                .and_then(JsonValue::as_f64)
                .ok_or("corpus entry: missing number field ratio")?,
            star_baseline: v
                .get("star_baseline")
                .and_then(JsonValue::as_f64)
                .ok_or("corpus entry: missing number field star_baseline")?,
            genome: Genome::from_value(
                v.get("genome")
                    .ok_or("corpus entry: missing field genome")?,
            )?,
        })
    }

    /// Replays the entry and demands exact cost agreement.
    ///
    /// The error message is a full, copy-pasteable replay recipe: every
    /// parameter plus the genome JSON.
    pub fn verify(&self) -> Result<RatioOutcome, String> {
        let kind = parse_kind(&self.algorithm)
            .ok_or_else(|| format!("unknown algorithm tag {:?}", self.algorithm))?;
        let dm = search_topology(self.num_racks);
        let out = evaluate(&kind, &dm, self.b, self.alpha, self.algo_seed, &self.genome);
        let got = (
            out.online.total.routing_cost,
            out.online.total.reconfig_cost,
            out.online.total.reconfigurations,
            out.offline_cost,
        );
        let want = (
            self.expected_routing_cost,
            self.expected_reconfig_cost,
            self.expected_reconfigurations,
            self.expected_offline_cost,
        );
        if got != want {
            return Err(format!(
                "corpus replay mismatch for {} (num_racks={}, b={}, alpha={}, algo_seed={}):\n\
                 expected (routing, reconfig, reconfigurations, offline) = {want:?}\n\
                 got      (routing, reconfig, reconfigurations, offline) = {got:?}\n\
                 replay genome JSON: {}",
                self.algorithm,
                self.num_racks,
                self.b,
                self.alpha,
                self.algo_seed,
                self.genome.to_json()
            ));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::{star_nemesis_genome, SearchConfig};

    #[test]
    fn kind_tags_round_trip() {
        for kind in [
            AlgorithmKind::Oblivious,
            AlgorithmKind::Bma,
            AlgorithmKind::Rbma { lazy: true },
            AlgorithmKind::Rbma { lazy: false },
            AlgorithmKind::Rotor { period: 50 },
            AlgorithmKind::Periodic { period: 200 },
        ] {
            let tag = kind_tag(&kind).unwrap();
            assert_eq!(parse_kind(&tag), Some(kind), "tag {tag}");
        }
        assert!(parse_kind("NoSuchAlgorithm").is_none());
        assert!(parse_kind("Rotor:notanumber").is_none());
    }

    #[test]
    fn entry_round_trips_and_verifies() {
        let cfg = SearchConfig::quick(13);
        let genome = star_nemesis_genome(&cfg);
        let kind = AlgorithmKind::Bma;
        let dm = search_topology(cfg.num_racks);
        let out = evaluate(&kind, &dm, cfg.b, cfg.alpha, cfg.algo_seed, &genome);
        let entry = CorpusEntry::from_outcome(
            &kind,
            cfg.num_racks,
            cfg.b,
            cfg.alpha,
            cfg.algo_seed,
            out.ratio,
            genome,
            &out,
        );
        let back = CorpusEntry::from_json(&entry.to_json()).unwrap();
        assert_eq!(back.genome, entry.genome);
        assert_eq!(back.expected_routing_cost, entry.expected_routing_cost);
        back.verify().expect("fresh entry must replay exactly");
    }

    #[test]
    fn verify_reports_a_replayable_mismatch() {
        let cfg = SearchConfig::quick(17);
        let genome = star_nemesis_genome(&cfg);
        let kind = AlgorithmKind::Bma;
        let dm = search_topology(cfg.num_racks);
        let out = evaluate(&kind, &dm, cfg.b, cfg.alpha, cfg.algo_seed, &genome);
        let mut entry = CorpusEntry::from_outcome(
            &kind,
            cfg.num_racks,
            cfg.b,
            cfg.alpha,
            cfg.algo_seed,
            out.ratio,
            genome,
            &out,
        );
        entry.expected_routing_cost += 1;
        let err = entry.verify().unwrap_err();
        assert!(err.contains("corpus replay mismatch"), "{err}");
        assert!(err.contains("replay genome JSON: {"), "{err}");
    }
}

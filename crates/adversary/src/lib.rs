//! # dcn-adversary
//!
//! **Coverage-guided adversarial trace search** against the online
//! (b,α)-matching algorithms, in the spirit of fuzzcheck/AFL but with a
//! *typed* input space: the unit of mutation is a
//! [`dcn_traces::Genome`] — a sequence of structured workload segments
//! (uniform noise, movable hotspots, permutation splices, §2.4
//! star-nemesis blocks, Zipf-skew ramps) that lowers deterministically to
//! a request stream.
//!
//! The fitness of a genome for algorithm `A` is the **competitive-style
//! ratio** `total_cost(A) / routing_cost(SO-BMA)` on the lowered trace
//! ([`dcn_core::ratio`]): SO-BMA is clairvoyant and static, so a high
//! ratio certifies the trace exploits `A`'s online-ness rather than being
//! uniformly expensive. The paper's §2.4 lower bound provides the
//! hand-written reference adversary (star blocks); the search's job is to
//! rediscover it from generic segments — and beat it.
//!
//! * [`mod@mutate`] — structure-aware mutators: reseed, parameter
//!   perturbation, segment splice/swap, duplication, deletion, random
//!   insertion, all bounded so genomes stay valid and comparable.
//! * [`pool`] — the input pool: top-K genomes by fitness with
//!   deduplication and rank-biased parent selection.
//! * [`mod@search`] — the seeded, budgeted driver: sequential mutant
//!   generation and pool updates around a work-stealing parallel
//!   evaluation fan-out, so results are identical for any `--threads`.
//! * [`corpus`] — (de)serialization of search discoveries as regression
//!   corpus entries; `crates/adversary/corpus/*.json` replays under
//!   `tests/corpus_replay.rs` with exact expected costs.
//!
//! Every discovered adversarial input is replayable from its JSON genome
//! alone; failure messages in this crate always embed that JSON.

pub mod corpus;
pub mod mutate;
pub mod pool;
pub mod search;

pub use corpus::{committed_entries, corpus_dir, parse_kind, CorpusEntry};
pub use mutate::{mutate, random_genome, MutationConfig};
pub use pool::{Pool, PoolEntry};
pub use search::{evaluate, search, star_nemesis_genome, SearchConfig, SearchOutcome};

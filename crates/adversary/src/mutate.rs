//! Structure-aware genome mutators.
//!
//! Every mutator takes the parent by reference and a seeded RNG, and
//! returns a *valid* child ([`dcn_traces::Genome::validate`] holds by
//! construction) whose rack count equals the parent's and whose total
//! length stays inside the configured band — fitness ratios across the
//! pool stay comparable, and no mutation chain can grow traces without
//! bound. Segments own their seeds ([`dcn_traces::Segment::reseed`]), so
//! a mutation of one segment leaves every other segment's request stream
//! byte-identical: the locality that makes pool-based search productive.

use dcn_traces::{Genome, Segment};
use rand::rngs::SmallRng;
use rand::RngExt;

/// Bounds every mutation respects.
#[derive(Clone, Debug)]
pub struct MutationConfig {
    /// Rack count all genomes share (mutations never change it).
    pub num_racks: usize,
    /// Maximum number of segments.
    pub max_segments: usize,
    /// Total-length ceiling.
    pub max_total_len: usize,
    /// Total-length floor.
    pub min_total_len: usize,
}

impl MutationConfig {
    /// Bounds centered on `target_len`: genomes stay within
    /// `[target_len / 4, 2 * target_len]` requests and at most 12
    /// segments.
    pub fn for_search(num_racks: usize, target_len: usize) -> Self {
        assert!(num_racks >= 4 && num_racks % 2 == 0);
        assert!(target_len >= 4);
        MutationConfig {
            num_racks,
            max_segments: 12,
            max_total_len: target_len.saturating_mul(2),
            min_total_len: (target_len / 4).max(1),
        }
    }
}

/// Multiplicative length jitter: one of ×½, ×¾, ×4⁄3, ×2.
fn jitter_len(len: usize, rng: &mut SmallRng) -> usize {
    match rng.random_range(0..4u32) {
        0 => (len / 2).max(1),
        1 => (len * 3 / 4).max(1),
        2 => (len * 4 / 3).max(len + 1),
        _ => len.saturating_mul(2),
    }
}

/// Clamps a proposed length for one segment so the genome total stays in
/// `[min_total_len, max_total_len]`, given the length `rest` of all other
/// segments.
fn clamp_len(proposed: usize, rest: usize, cfg: &MutationConfig) -> usize {
    let hi = cfg.max_total_len.saturating_sub(rest).max(1);
    let lo = cfg.min_total_len.saturating_sub(rest).max(1);
    proposed.clamp(lo.min(hi), hi)
}

/// Draws one random segment of roughly `len` requests.
pub fn random_segment(cfg: &MutationConfig, len: usize, rng: &mut SmallRng) -> Segment {
    let n = cfg.num_racks;
    let len = len.max(1);
    let seed: u64 = rng.random_range(0..u64::MAX);
    match rng.random_range(0..5u32) {
        0 => Segment::Uniform { len, seed },
        1 => Segment::Hotspot {
            len,
            num_hot: rng.random_range(2..=n),
            p_hot: rng.random_range(0.5..1.0),
            offset: rng.random_range(0..n),
            seed,
        },
        2 => Segment::Permutation { len, seed },
        3 => {
            let block_len = rng.random_range(1..=(len.max(2) / 2).max(1));
            Segment::StarBlocks {
                spokes: rng.random_range(2..n),
                block_len,
                blocks: (len / block_len).max(1),
                seed,
            }
        }
        _ => Segment::ZipfRamp {
            len,
            s_start: rng.random_range(0.0..3.0),
            s_end: rng.random_range(0.0..3.0),
            seed,
        },
    }
}

/// Draws a fresh random genome of 1–4 segments totalling roughly
/// `target_len` requests.
pub fn random_genome(cfg: &MutationConfig, target_len: usize, rng: &mut SmallRng) -> Genome {
    let parts = rng.random_range(1..=4usize);
    let per = (target_len / parts).max(1);
    let segments = (0..parts).map(|_| random_segment(cfg, per, rng)).collect();
    Genome::new(cfg.num_racks, segments)
}

/// Perturbs one parameter of `seg` in place; `rest` is the total length
/// of the genome's other segments (for the length band).
fn perturb(seg: &mut Segment, rest: usize, cfg: &MutationConfig, rng: &mut SmallRng) {
    let n = cfg.num_racks;
    match seg {
        Segment::Uniform { len, .. } | Segment::Permutation { len, .. } => {
            *len = clamp_len(jitter_len(*len, rng), rest, cfg);
        }
        Segment::Hotspot {
            len,
            num_hot,
            p_hot,
            offset,
            ..
        } => match rng.random_range(0..4u32) {
            0 => *len = clamp_len(jitter_len(*len, rng), rest, cfg),
            1 => *num_hot = rng.random_range(2..=n),
            2 => *p_hot = (*p_hot + rng.random_range(-0.2..0.2f64)).clamp(0.0, 1.0),
            // The classic adversarial move: relocate the hot set.
            _ => *offset = rng.random_range(0..n),
        },
        Segment::StarBlocks {
            spokes,
            block_len,
            blocks,
            ..
        } => match rng.random_range(0..3u32) {
            0 => *spokes = rng.random_range(2..n),
            1 => {
                let total = clamp_len(*block_len * *blocks, rest, cfg);
                *block_len = jitter_len(*block_len, rng).min(total);
                *blocks = (total / *block_len).max(1);
            }
            _ => {
                let proposed = jitter_len(*blocks, rng);
                let hi = (cfg.max_total_len.saturating_sub(rest) / *block_len).max(1);
                *blocks = proposed.min(hi);
            }
        },
        Segment::ZipfRamp {
            len,
            s_start,
            s_end,
            ..
        } => match rng.random_range(0..3u32) {
            0 => *len = clamp_len(jitter_len(*len, rng), rest, cfg),
            1 => *s_start = (*s_start + rng.random_range(-0.5..0.5f64)).clamp(0.0, 4.0),
            _ => *s_end = (*s_end + rng.random_range(-0.5..0.5f64)).clamp(0.0, 4.0),
        },
    }
}

/// Applies one randomly chosen structure-aware mutation and returns the
/// child. Mutations that would violate the segment-count or length bounds
/// fall back to a reseed, so this always succeeds and always returns a
/// valid genome.
pub fn mutate(parent: &Genome, cfg: &MutationConfig, rng: &mut SmallRng) -> Genome {
    debug_assert_eq!(parent.num_racks, cfg.num_racks);
    let mut child = parent.clone();
    let idx = rng.random_range(0..child.segments.len());
    let op = rng.random_range(0..6u32);
    match op {
        // Reseed: same structure, fresh randomness for one segment.
        0 => child.segments[idx].reseed(rng.random_range(0..u64::MAX)),
        // Parameter perturbation.
        1 => {
            let rest = child.len() - child.segments[idx].len();
            perturb(&mut child.segments[idx], rest, cfg, rng);
        }
        // Splice: swap two segment positions (reorders phase structure).
        2 => {
            let jdx = rng.random_range(0..child.segments.len());
            child.segments.swap(idx, jdx);
        }
        // Duplicate a segment (re-seeded so the copy is a fresh stream).
        3 => {
            let fits = child.segments.len() < cfg.max_segments
                && child.len() + child.segments[idx].len() <= cfg.max_total_len;
            if fits {
                let mut dup = child.segments[idx].clone();
                dup.reseed(rng.random_range(0..u64::MAX));
                child.segments.insert(idx, dup);
            } else {
                child.segments[idx].reseed(rng.random_range(0..u64::MAX));
            }
        }
        // Delete a segment.
        4 => {
            let fits = child.segments.len() > 1
                && child.len() - child.segments[idx].len() >= cfg.min_total_len;
            if fits {
                child.segments.remove(idx);
            } else {
                child.segments[idx].reseed(rng.random_range(0..u64::MAX));
            }
        }
        // Insert a fresh random segment.
        _ => {
            let slack = cfg.max_total_len.saturating_sub(child.len());
            if child.segments.len() < cfg.max_segments && slack > 0 {
                let avg = (child.len() / child.segments.len()).max(1);
                let seg = random_segment(cfg, avg.min(slack), rng);
                if child.len() + seg.len() <= cfg.max_total_len {
                    child.segments.insert(idx, seg);
                } else {
                    child.segments[idx].reseed(rng.random_range(0..u64::MAX));
                }
            } else {
                child.segments[idx].reseed(rng.random_range(0..u64::MAX));
            }
        }
    }
    debug_assert!(child.validate().is_ok(), "mutation produced invalid genome");
    child
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn cfg() -> MutationConfig {
        MutationConfig::for_search(8, 400)
    }

    fn parent(cfg: &MutationConfig) -> Genome {
        let mut rng = SmallRng::seed_from_u64(1);
        random_genome(cfg, 400, &mut rng)
    }

    #[test]
    fn mutation_chains_stay_valid_and_bounded() {
        let cfg = cfg();
        let mut rng = SmallRng::seed_from_u64(2);
        let mut g = parent(&cfg);
        for _ in 0..500 {
            g = mutate(&g, &cfg, &mut rng);
            assert!(g.validate().is_ok());
            assert_eq!(g.num_racks, cfg.num_racks);
            assert!(!g.segments.is_empty() && g.segments.len() <= cfg.max_segments);
            assert!(
                g.len() <= cfg.max_total_len,
                "len {} over ceiling {}",
                g.len(),
                cfg.max_total_len
            );
        }
    }

    #[test]
    fn mutation_is_deterministic_in_the_rng() {
        let cfg = cfg();
        let g = parent(&cfg);
        let a: Vec<Genome> = {
            let mut rng = SmallRng::seed_from_u64(9);
            (0..50).map(|_| mutate(&g, &cfg, &mut rng)).collect()
        };
        let b: Vec<Genome> = {
            let mut rng = SmallRng::seed_from_u64(9);
            (0..50).map(|_| mutate(&g, &cfg, &mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn mutations_reach_every_operator() {
        // Over enough draws the child population must show structural
        // variety: different segment counts and changed parameters.
        let cfg = cfg();
        let g = parent(&cfg);
        let mut rng = SmallRng::seed_from_u64(5);
        let children: Vec<Genome> = (0..300).map(|_| mutate(&g, &cfg, &mut rng)).collect();
        assert!(children.iter().any(|c| c.segments.len() > g.segments.len()));
        assert!(children.iter().any(|c| c.segments.len() < g.segments.len()));
        assert!(children.iter().any(|c| *c != g));
        let distinct: std::collections::HashSet<String> =
            children.iter().map(|c| c.to_json()).collect();
        assert!(
            distinct.len() > 100,
            "only {} distinct children",
            distinct.len()
        );
    }

    #[test]
    fn random_genome_hits_target_band() {
        let cfg = cfg();
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..50 {
            let g = random_genome(&cfg, 400, &mut rng);
            assert!(g.validate().is_ok());
            assert!(g.len() >= 1 && g.len() <= cfg.max_total_len);
        }
    }
}

//! Tier-1 regression gate: every committed corpus genome must replay to
//! its recorded costs **exactly**. Any drift in the simulator, the online
//! algorithms, the RNG streams, or the genome lowering fails here with a
//! copy-pasteable replay recipe (the full genome JSON is in the message).
//!
//! Regenerate after an *intentional* behaviour change with
//! `cargo test -p dcn-adversary --test corpus_replay -- --ignored`
//! and commit the rewritten `corpus/*.json`.

use dcn_adversary::{committed_entries as entries, corpus_dir, search, CorpusEntry, SearchConfig};
use dcn_core::algorithms::AlgorithmKind;
use std::fs;

#[test]
fn corpus_is_nonempty_and_covers_multiple_algorithms() {
    let entries = entries();
    assert!(
        entries.len() >= 3,
        "expected at least 3 corpus entries, found {}",
        entries.len()
    );
    let algorithms: std::collections::HashSet<&str> =
        entries.iter().map(|(_, e)| e.algorithm.as_str()).collect();
    assert!(
        algorithms.len() >= 2,
        "corpus should cover multiple algorithms, found {algorithms:?}"
    );
}

#[test]
fn every_corpus_entry_replays_exactly() {
    let entries = entries();
    assert!(!entries.is_empty());
    for (name, entry) in entries {
        if let Err(report) = entry.verify() {
            panic!("{name}: {report}");
        }
    }
}

#[test]
fn corpus_contains_a_search_win_over_the_star_nemesis() {
    // The headline acceptance property, frozen: at least one committed
    // genome is strictly worse for its online algorithm than the
    // hand-written §2.4 star nemesis at the same scale.
    let entries = entries();
    assert!(
        entries.iter().any(|(_, e)| e.ratio > e.star_baseline),
        "no corpus entry beats its star baseline"
    );
}

#[test]
fn stored_ratios_match_the_stored_integer_pins() {
    for (name, entry) in entries() {
        let expect = (entry.expected_routing_cost + entry.expected_reconfig_cost) as f64
            / entry.expected_offline_cost.max(1) as f64;
        assert!(
            (entry.ratio - expect).abs() < 1e-9,
            "{name}: stored ratio {} disagrees with pinned costs ({expect})",
            entry.ratio
        );
    }
}

/// Rebuilds the committed corpus. Deterministic: same seeds, same
/// entries. Run manually after intentional behaviour changes.
#[test]
#[ignore = "regenerates corpus/*.json; run manually and commit the diff"]
fn regenerate_corpus() {
    let dir = corpus_dir();
    fs::create_dir_all(&dir).unwrap();
    let algorithms: Vec<(&str, AlgorithmKind)> = vec![
        ("bma", AlgorithmKind::Bma),
        ("rbma_lazy", AlgorithmKind::Rbma { lazy: true }),
        ("rotor_50", AlgorithmKind::Rotor { period: 50 }),
        ("periodic_100", AlgorithmKind::Periodic { period: 100 }),
    ];
    for (stem, kind) in algorithms {
        let cfg = SearchConfig {
            num_racks: 8,
            b: 2,
            alpha: 10,
            algo_seed: 1,
            search_seed: 42,
            target_len: 400,
            budget: 150,
            batch: 16,
            pool_capacity: 24,
            threads: 0,
        };
        let outcome = search(&kind, &cfg);
        let replay = dcn_adversary::evaluate(
            &kind,
            &dcn_adversary::search::search_topology(cfg.num_racks),
            cfg.b,
            cfg.alpha,
            cfg.algo_seed,
            &outcome.best.genome,
        );
        let entry = CorpusEntry::from_outcome(
            &kind,
            cfg.num_racks,
            cfg.b,
            cfg.alpha,
            cfg.algo_seed,
            outcome.star_baseline,
            outcome.best.genome.clone(),
            &replay,
        );
        let path = dir.join(format!("{stem}.json"));
        fs::write(&path, entry.to_json()).unwrap();
        println!(
            "{stem}: ratio {:.4} vs star baseline {:.4} ({} evaluations) -> {}",
            entry.ratio,
            entry.star_baseline,
            outcome.evaluations,
            path.display()
        );
    }
}

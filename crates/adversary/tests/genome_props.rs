//! Property tests over the mutation space: arbitrary mutation chains must
//! keep genomes valid, length-bounded, JSON-round-trippable, and lowering
//! must emit exactly `len()` well-formed requests.

use dcn_adversary::{mutate, random_genome, MutationConfig};
use dcn_traces::{Genome, RequestSource};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn chain(seed: u64, steps: usize) -> (MutationConfig, Genome) {
    let cfg = MutationConfig::for_search(8, 200);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut g = random_genome(&cfg, 200, &mut rng);
    for _ in 0..steps {
        g = mutate(&g, &cfg, &mut rng);
    }
    (cfg, g)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn mutated_genomes_lower_to_exactly_len_requests(seed in any::<u64>(), steps in 0usize..25) {
        let (cfg, g) = chain(seed, steps);
        prop_assert!(g.validate().is_ok(), "invalid genome: {}", g.to_json());
        prop_assert!(g.len() <= cfg.max_total_len);
        let mut src = g.source();
        prop_assert_eq!(src.len(), g.len());
        let mut emitted = 0usize;
        while let Some(p) = src.next_request() {
            prop_assert!((p.hi() as usize) < g.num_racks, "rack out of range in {}", g.to_json());
            emitted += 1;
        }
        prop_assert_eq!(emitted, g.len(), "emitted count diverged for {}", g.to_json());
    }

    #[test]
    fn mutated_genomes_round_trip_through_json(seed in any::<u64>(), steps in 0usize..25) {
        let (_, g) = chain(seed, steps);
        let back = Genome::from_json(&g.to_json());
        prop_assert_eq!(back.as_ref().ok(), Some(&g), "round trip failed: {:?}", back.as_ref().err());
    }

    #[test]
    fn mutation_determinism_holds_along_chains(seed in any::<u64>(), steps in 1usize..15) {
        let (_, a) = chain(seed, steps);
        let (_, b) = chain(seed, steps);
        prop_assert_eq!(a, b);
    }
}

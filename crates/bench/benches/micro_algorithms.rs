//! Per-request micro-latency of every scheduler, plus b-sensitivity.
//!
//! Supports the §3.2 execution-time discussion at the finest granularity:
//! R-BMA's serve path is O(1) (hash bump; marking work only on special
//! requests), BMA's pays recency upkeep on every request and an O(b)
//! eviction scan on insertions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dcn_bench::{FigureSpec, Workload};
use dcn_core::algorithms::AlgorithmKind;
use std::hint::black_box;
use std::time::Duration;

fn spec() -> FigureSpec {
    FigureSpec {
        id: "micro",
        title: "micro",
        workload: Workload::FacebookDb,
        racks: 100,
        bs: vec![12],
        total_requests: 30_000,
        num_checkpoints: 1,
        alpha: 10,
        repetitions: 1,
    }
}

fn all_algorithms(c: &mut Criterion) {
    let spec = spec();
    let dm = spec.distances();
    let trace = spec.trace(0);
    let mut group = c.benchmark_group("serve_latency_b12");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
        .throughput(Throughput::Elements(trace.len() as u64));
    let algorithms = vec![
        AlgorithmKind::Oblivious,
        AlgorithmKind::Rbma { lazy: true },
        AlgorithmKind::Rbma { lazy: false },
        AlgorithmKind::Bma,
        AlgorithmKind::Rotor { period: 100 },
        AlgorithmKind::PredictiveRbma { noise: 0.0 },
    ];
    for algorithm in algorithms {
        group.bench_function(algorithm.label(), |bencher| {
            bencher.iter(|| {
                let mut s =
                    algorithm.build_with_trace(dm.clone(), 12, spec.alpha, 5, &trace.requests);
                let mut matched = 0u64;
                for &r in &trace.requests {
                    matched += s.serve(r).was_matched as u64;
                }
                black_box(matched)
            });
        });
    }
    group.finish();
}

fn b_sensitivity(c: &mut Criterion) {
    let spec = spec();
    let dm = spec.distances();
    let trace = spec.trace(0);
    let mut group = c.benchmark_group("b_sensitivity");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
        .throughput(Throughput::Elements(trace.len() as u64));
    for algorithm in [AlgorithmKind::Rbma { lazy: true }, AlgorithmKind::Bma] {
        for b in [6usize, 12, 24, 48] {
            group.bench_with_input(BenchmarkId::new(algorithm.label(), b), &b, |bencher, &b| {
                bencher.iter(|| {
                    let mut s =
                        algorithm.build_with_trace(dm.clone(), b, spec.alpha, 5, &trace.requests);
                    let mut matched = 0u64;
                    for &r in &trace.requests {
                        matched += s.serve(r).was_matched as u64;
                    }
                    black_box(matched)
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, all_algorithms, b_sensitivity);
criterion_main!(benches);

//! Batched vs unbatched hot path: the serve loop (system level via
//! `simulator::run` at different `SimConfig::batch_size`, and scheduler
//! level via direct `serve`/`serve_batch` calls) and trace generation
//! (`RequestSource::fill` vs `next_request`), across batch sizes.
//!
//! The headline number backing the batching refactor: R-BMA at degree
//! b = 12 on the Zipf workload, batched run vs the `batch_size = 1`
//! baseline (which is exactly the historical per-request loop: one virtual
//! serve call, one accounting fold and one stopwatch start/pause per
//! request). CI gates this bench against the shared criterion baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dcn_core::algorithms::AlgorithmKind;
use dcn_core::scheduler::BatchOutcome;
use dcn_core::{run, SimConfig};
use dcn_matching::{BTreeRecencyMatching, LruBMatching, RecencyMatching};
use dcn_topology::{builders, DistanceMatrix, Pair};
use dcn_traces::{zipf_pair_source, RequestSource};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

const RACKS: usize = 100;
const DEGREE: usize = 12;
const ALPHA: u64 = 10;
const LEN: usize = 30_000;
const EXPONENT: f64 = 1.2;
const BATCH_SIZES: [usize; 4] = [12, 64, 256, 1024];

fn distances() -> Arc<DistanceMatrix> {
    Arc::new(DistanceMatrix::between_racks(
        &builders::fat_tree_with_racks(RACKS),
    ))
}

fn zipf_requests() -> Vec<Pair> {
    zipf_pair_source(RACKS, LEN, EXPONENT, 5)
        .materialize()
        .requests
}

/// Full `simulator::run` throughput across batch sizes (`1` = the
/// unbatched baseline). This is the number the `scaling` target reports.
fn serve_run_batch_sizes(c: &mut Criterion) {
    let dm = distances();
    let mut group = c.benchmark_group("batch_run_rbma_b12_zipf");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
        .throughput(Throughput::Elements(LEN as u64));
    let algorithm = AlgorithmKind::Rbma { lazy: true };
    for batch in std::iter::once(1usize).chain(BATCH_SIZES) {
        group.bench_with_input(BenchmarkId::new("run", batch), &batch, |bench, &batch| {
            let config = SimConfig::default().with_batch_size(batch);
            let mut source = zipf_pair_source(RACKS, LEN, EXPONENT, 5);
            bench.iter(|| {
                source.reset();
                let mut s = algorithm.build_online(dm.clone(), DEGREE, ALPHA, 5);
                black_box(run(s.as_mut(), &dm, ALPHA, &mut source, &config))
            });
        });
    }
    group.finish();
}

/// Scheduler-level inner loop: per-request `serve` + accounting fold
/// (through the trait object, as the unbatched simulator dispatched) vs one
/// `serve_batch` call per chunk.
fn serve_inner_batched_vs_unbatched(c: &mut Criterion) {
    let dm = distances();
    let requests = zipf_requests();
    for algorithm in [AlgorithmKind::Rbma { lazy: true }, AlgorithmKind::Bma] {
        let mut group = c.benchmark_group(format!("batch_serve_{}_b12_zipf", algorithm.label()));
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(300))
            .measurement_time(Duration::from_secs(2))
            .throughput(Throughput::Elements(requests.len() as u64));
        group.bench_function("unbatched", |bench| {
            bench.iter(|| {
                let mut s = algorithm.build_online(dm.clone(), DEGREE, ALPHA, 5);
                let mut acc = BatchOutcome::default();
                for &r in &requests {
                    let o = s.serve(r);
                    acc.record(r, o, &dm);
                }
                black_box(acc)
            });
        });
        for batch in BATCH_SIZES {
            // "batched" is the default serve path: since the bucketing
            // refactor that means the sorted (bucket-preprocessed) pass.
            group.bench_with_input(
                BenchmarkId::new("batched", batch),
                &batch,
                |bench, &batch| {
                    bench.iter(|| {
                        let mut s = algorithm.build_online(dm.clone(), DEGREE, ALPHA, 5);
                        let mut acc = BatchOutcome::default();
                        for chunk in requests.chunks(batch) {
                            s.serve_batch(chunk, &dm, &mut acc);
                        }
                        black_box(acc)
                    });
                },
            );
            // The pre-bucketing fused loop, kept as an explicit point so the
            // sorted-vs-unsorted win is a first-class benchmark artifact.
            group.bench_with_input(
                BenchmarkId::new("unsorted", batch),
                &batch,
                |bench, &batch| {
                    bench.iter(|| {
                        let mut s = algorithm.build_online(dm.clone(), DEGREE, ALPHA, 5);
                        let mut acc = BatchOutcome::default();
                        for chunk in requests.chunks(batch) {
                            s.serve_batch_unsorted(chunk, &dm, &mut acc);
                        }
                        black_box(acc)
                    });
                },
            );
        }
        group.finish();
    }
}

/// Trace generation as the pipeline consumes it — through the
/// `Box<dyn RequestSource>` a `TraceSpec` yields: one virtual `fill` per
/// batch (alias-table sampling with hoisted table/pair borrows) vs one
/// virtual `next_request` per request. A statically-dispatched
/// `next_request` loop is included as the dispatch-free floor.
fn fill_batched_vs_unbatched(c: &mut Criterion) {
    let spec = dcn_traces::TraceSpec::Zipf {
        num_racks: RACKS,
        len: LEN,
        exponent: EXPONENT,
        seed: 5,
    };
    let mut group = c.benchmark_group("batch_fill_zipf");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1))
        .throughput(Throughput::Elements(LEN as u64));
    group.bench_function("next_request_static", |bench| {
        let mut source = zipf_pair_source(RACKS, LEN, EXPONENT, 5);
        bench.iter(|| {
            source.reset();
            let mut acc = 0u64;
            while let Some(p) = source.next_request() {
                acc += p.lo() as u64;
            }
            black_box(acc)
        });
    });
    group.bench_function("next_request_dyn", |bench| {
        let mut source = spec.source();
        bench.iter(|| {
            source.reset();
            let mut acc = 0u64;
            while let Some(p) = source.next_request() {
                acc += p.lo() as u64;
            }
            black_box(acc)
        });
    });
    for batch in BATCH_SIZES {
        group.bench_with_input(
            BenchmarkId::new("fill_dyn", batch),
            &batch,
            |bench, &batch| {
                let mut source = spec.source();
                let mut buf = vec![Pair::new(0, 1); batch];
                bench.iter(|| {
                    source.reset();
                    let mut acc = 0u64;
                    loop {
                        let n = source.fill(&mut buf);
                        for p in &buf[..n] {
                            acc += p.lo() as u64;
                        }
                        if n < buf.len() {
                            break;
                        }
                    }
                    black_box(acc)
                });
            },
        );
    }
    group.finish();
}

/// Specials-density axis: the standard point at α ∈ {4, 10, 40}. The
/// Theorem-1 period `k_e = ⌈α/ℓ_e⌉` makes α the direct dial on how many
/// requests take the Theorem-2 specials path (at α = 4 and fat-tree
/// ℓ ∈ {2, 4}, k_e ∈ {1, 2}: most requests are special), so this group
/// gates the specials fast path against the criterion baseline exactly
/// like every other hot-path change: a regression hiding in the rare
/// path shows up here before it shows up in the α = 10 headline.
fn serve_specials_density(c: &mut Criterion) {
    let dm = distances();
    let requests = zipf_requests();
    let mut group = c.benchmark_group("batch_alpha_rbma_b12_zipf");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
        .throughput(Throughput::Elements(requests.len() as u64));
    for alpha in [4u64, 10, 40] {
        group.bench_with_input(
            BenchmarkId::new("batched", alpha),
            &alpha,
            |bench, &alpha| {
                bench.iter(|| {
                    let mut s = AlgorithmKind::Rbma { lazy: true }.build_online(
                        dm.clone(),
                        DEGREE,
                        alpha,
                        5,
                    );
                    let mut acc = BatchOutcome::default();
                    for chunk in requests.chunks(1024) {
                        s.serve_batch(chunk, &dm, &mut acc);
                    }
                    black_box(acc)
                });
            },
        );
    }
    group.finish();
}

/// Intra-run sharding: one simulation, the bucketing scan spread over an
/// [`dcn_core::IntraPool`] of 1/2/4 workers (1 = no pool, the sequential
/// sorted path). Reports are byte-identical at every width — this group
/// measures what the sharding costs/buys on this host.
fn serve_intra_widths(c: &mut Criterion) {
    let dm = distances();
    let mut group = c.benchmark_group("batch_intra_rbma_b12_zipf");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
        .throughput(Throughput::Elements(LEN as u64));
    let algorithm = AlgorithmKind::Rbma { lazy: true };
    for intra in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("intra", intra), &intra, |bench, &intra| {
            let config = SimConfig::default()
                .with_batch_size(1024)
                .with_intra_threads(intra);
            let mut source = zipf_pair_source(RACKS, LEN, EXPONENT, 5);
            bench.iter(|| {
                source.reset();
                let mut s = algorithm.build_online(dm.clone(), DEGREE, ALPHA, 5);
                black_box(run(s.as_mut(), &dm, ALPHA, &mut source, &config))
            });
        });
    }
    group.finish();
}

/// The isolated BMA hit-path upkeep: touching matched edges in the recency
/// index, flat intrusive LRU vs the historical BTreeMap reference, with
/// everything else (counters, routing lookups, dispatch) stripped away.
/// This is the `bma/recency_upkeep` point that makes the flattening win
/// visible in the benchmark artifact, not only in the end-to-end number.
fn bma_recency_upkeep(c: &mut Criterion) {
    // Populate both indexes identically: a b-regular-ish edge set at
    // paper-scale b, then replay a skewed hit sequence over those edges.
    fn populate<M: RecencyMatching>() -> (M, Vec<Pair>) {
        let mut m = M::new(RACKS, DEGREE);
        let mut edges = Vec::new();
        for v in 0..RACKS as u32 {
            for k in 1..=(DEGREE as u32 / 2) {
                let pair = Pair::new(v, (v + k) % RACKS as u32);
                if m.matching().can_insert(pair) {
                    m.insert_mru(pair);
                    edges.push(pair);
                }
            }
        }
        // Zipf-flavored hit schedule over the matched edges (hot head).
        let hits: Vec<Pair> = (0..LEN)
            .map(|i| edges[(i * i + i / 3) % edges.len().min(64)])
            .collect();
        (m, hits)
    }
    let mut group = c.benchmark_group("bma");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
        .throughput(Throughput::Elements(LEN as u64));
    group.bench_function("recency_upkeep/flat_lru", |bench| {
        let (mut m, hits) = populate::<LruBMatching>();
        bench.iter(|| {
            let mut matched = 0u64;
            for &pair in &hits {
                matched += m.touch_hit(pair) as u64;
            }
            black_box(matched)
        });
    });
    group.bench_function("recency_upkeep/btree", |bench| {
        let (mut m, hits) = populate::<BTreeRecencyMatching>();
        bench.iter(|| {
            let mut matched = 0u64;
            for &pair in &hits {
                matched += m.touch_hit(pair) as u64;
            }
            black_box(matched)
        });
    });
    group.finish();
}

/// The telemetry tax at the standard point: the same R-BMA run with a live
/// enabled sink (chunk stopwatch + end-of-run flush), with the default
/// disabled handle (one branch per flush site), and — when the workspace is
/// built with `--cfg dcn_telemetry_off` — with the layer compiled out
/// entirely. CI gates `enabled` against the shared baseline; the
/// acceptance bar is enabled ≤ 2% over disabled.
fn telemetry_overhead(c: &mut Criterion) {
    let dm = distances();
    let mut group = c.benchmark_group("batch_telemetry_rbma_b12_zipf");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
        .throughput(Throughput::Elements(LEN as u64));
    let algorithm = AlgorithmKind::Rbma { lazy: true };
    let points: &[&str] = if dcn_telemetry::compiled() {
        &["disabled", "enabled"]
    } else {
        &["compiled_off"]
    };
    for &point in points {
        group.bench_function(point, |bench| {
            let config = SimConfig::default().with_batch_size(1024);
            let config = if point == "enabled" {
                config.with_telemetry(dcn_telemetry::Telemetry::enabled())
            } else {
                config
            };
            let mut source = zipf_pair_source(RACKS, LEN, EXPONENT, 5);
            bench.iter(|| {
                source.reset();
                let mut s = algorithm.build_online(dm.clone(), DEGREE, ALPHA, 5);
                black_box(run(s.as_mut(), &dm, ALPHA, &mut source, &config))
            });
        });
    }
    group.finish();
}

/// The failpoint tax at the standard point: the serve loop passes
/// `sim.chunk` once per chunk. `disarmed` is the production configuration
/// (one relaxed atomic load per hit site — the ISSUE's zero-overhead
/// acceptance point); `armed_other` arms an *unrelated* name, paying the
/// registry lookup on every hit without firing, the worst non-firing case;
/// `compiled_off` (under `--cfg dcn_failpoints_off`) is the hard floor
/// with the module compiled to nothing. CI gates `disarmed` against the
/// shared criterion baseline like every other hot-path change.
fn failpoint_overhead(c: &mut Criterion) {
    let dm = distances();
    let mut group = c.benchmark_group("batch_failpoint_rbma_b12_zipf");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
        .throughput(Throughput::Elements(LEN as u64));
    let algorithm = AlgorithmKind::Rbma { lazy: true };
    let points: &[&str] = if dcn_util::failpoint::compiled() {
        &["disarmed", "armed_other"]
    } else {
        &["compiled_off"]
    };
    for &point in points {
        group.bench_function(point, |bench| {
            if point == "armed_other" {
                dcn_util::failpoint::arm(
                    "bench.unrelated",
                    dcn_util::failpoint::Action::Delay(Duration::ZERO),
                    dcn_util::failpoint::Trigger::Nth(u64::MAX),
                );
            }
            let config = SimConfig::default().with_batch_size(1024);
            let mut source = zipf_pair_source(RACKS, LEN, EXPONENT, 5);
            bench.iter(|| {
                source.reset();
                let mut s = algorithm.build_online(dm.clone(), DEGREE, ALPHA, 5);
                black_box(run(s.as_mut(), &dm, ALPHA, &mut source, &config))
            });
            if point == "armed_other" {
                dcn_util::failpoint::disarm("bench.unrelated");
            }
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    serve_run_batch_sizes,
    serve_inner_batched_vs_unbatched,
    serve_specials_density,
    serve_intra_widths,
    fill_batched_vs_unbatched,
    bma_recency_upkeep,
    telemetry_overhead,
    failpoint_overhead
);
criterion_main!(benches);

//! Criterion companion to Figures 1b/2b/3b: serve-loop throughput of R-BMA
//! vs BMA on the three Facebook-like workloads, across the paper's b sweep.
//! The paper's claims — R-BMA faster, BMA degrading as b grows — show up
//! here as per-request throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dcn_bench::{FigureSpec, Workload};
use dcn_core::algorithms::AlgorithmKind;
use std::hint::black_box;
use std::time::Duration;

fn bench_cluster(c: &mut Criterion, id: &str, workload: Workload) {
    let spec = FigureSpec {
        id: "bench",
        title: "bench",
        workload,
        racks: 100,
        bs: vec![6, 12, 18],
        total_requests: 50_000,
        num_checkpoints: 1,
        alpha: 10,
        repetitions: 1,
    };
    let dm = spec.distances();
    let trace = spec.trace(0);
    let mut group = c.benchmark_group(id);
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
        .throughput(Throughput::Elements(trace.len() as u64));
    for algorithm in [AlgorithmKind::Rbma { lazy: true }, AlgorithmKind::Bma] {
        for &b in &spec.bs {
            group.bench_with_input(BenchmarkId::new(algorithm.label(), b), &b, |bencher, &b| {
                bencher.iter(|| {
                    let mut s =
                        algorithm.build_with_trace(dm.clone(), b, spec.alpha, 7, &trace.requests);
                    let mut cost = 0u64;
                    for &r in &trace.requests {
                        let o = s.serve(r);
                        cost += if o.was_matched { 1 } else { 2 };
                    }
                    black_box(cost)
                });
            });
        }
    }
    group.finish();
}

fn fig1b(c: &mut Criterion) {
    bench_cluster(c, "fig1b_facebook_database", Workload::FacebookDb);
}

fn fig2b(c: &mut Criterion) {
    bench_cluster(c, "fig2b_facebook_web", Workload::FacebookWeb);
}

fn fig3b(c: &mut Criterion) {
    bench_cluster(c, "fig3b_facebook_hadoop", Workload::FacebookHadoop);
}

criterion_group!(benches, fig1b, fig2b, fig3b);
criterion_main!(benches);

//! Substrate micro-benchmarks: the building blocks whose constants the
//! system-level numbers rest on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dcn_paging::{Belady, Fifo, Lru, Marking, PagingPolicy};
use dcn_topology::{builders, DistanceMatrix};
use dcn_traces::{zipf_weights, AliasTable};
use dcn_util::IndexedSet;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;
use std::time::Duration;

fn paging_policies(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(1);
    let seq: Vec<u64> = (0..50_000).map(|_| rng.random_range(0..64u64)).collect();
    let cap = 16;
    let mut group = c.benchmark_group("paging_access");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1))
        .throughput(Throughput::Elements(seq.len() as u64));
    group.bench_function("marking", |b| {
        b.iter(|| {
            let mut m = Marking::new(cap, 3);
            let mut faults = 0u64;
            for &p in &seq {
                faults += m.access(p).is_fault() as u64;
            }
            black_box(faults)
        })
    });
    group.bench_function("lru", |b| {
        b.iter(|| {
            let mut m = Lru::new(cap);
            let mut faults = 0u64;
            for &p in &seq {
                faults += m.access(p).is_fault() as u64;
            }
            black_box(faults)
        })
    });
    group.bench_function("fifo", |b| {
        b.iter(|| {
            let mut m = Fifo::new(cap);
            let mut faults = 0u64;
            for &p in &seq {
                faults += m.access(p).is_fault() as u64;
            }
            black_box(faults)
        })
    });
    group.bench_function("belady", |b| {
        b.iter(|| black_box(Belady::total_faults(cap, &seq)))
    });
    group.finish();
}

fn indexed_set_and_alias(c: &mut Criterion) {
    let mut group = c.benchmark_group("samplers");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    group.bench_function("indexed_set_churn", |b| {
        b.iter(|| {
            let mut s: IndexedSet<u64> = IndexedSet::with_capacity(1024);
            let mut rng = SmallRng::seed_from_u64(5);
            for i in 0..20_000u64 {
                s.insert(i % 1024);
                if i % 3 == 0 {
                    let v = s.sample(&mut rng);
                    black_box(v);
                }
                if i % 7 == 0 {
                    s.remove(&((i * 31) % 1024));
                }
            }
            black_box(s.len())
        })
    });
    group.bench_function("alias_sample", |b| {
        let table = AliasTable::new(&zipf_weights(4950, 1.2));
        let mut rng = SmallRng::seed_from_u64(9);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..10_000 {
                acc += table.sample(&mut rng) as u64;
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn topology_distances(c: &mut Criterion) {
    let mut group = c.benchmark_group("topology");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(2));
    // ≤ 100 racks: between_racks_parallel must fall back to the sequential
    // path (never slower at paper scale); 256 racks exercises the real
    // chunked fan-out and is where parallel should win.
    for racks in [50usize, 100, 256] {
        let net = builders::fat_tree_with_racks(racks);
        group.bench_with_input(
            BenchmarkId::new("apsp_sequential", racks),
            &net,
            |b, net| b.iter(|| black_box(DistanceMatrix::between_racks(net))),
        );
        group.bench_with_input(BenchmarkId::new("apsp_parallel4", racks), &net, |b, net| {
            b.iter(|| black_box(DistanceMatrix::between_racks_parallel(net, 4)))
        });
    }
    group.finish();
}

/// The rack-distance lookup on the batched serve path: one multiply-add +
/// u16 load per request-shaped `Pair`. Guards the `#[inline]`/layout audit
/// of `DistanceMatrix::ell` and the `Pair` accessors — a regression here
/// taxes every unmatched request of every scheduler.
fn ell_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("topology");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    let net = builders::fat_tree_with_racks(100);
    let dm = DistanceMatrix::between_racks(&net);
    let mut rng = SmallRng::seed_from_u64(7);
    let pairs: Vec<dcn_topology::Pair> = (0..10_000)
        .map(|_| {
            let a = rng.random_range(0..100u32);
            let mut b = rng.random_range(0..99u32);
            if b >= a {
                b += 1;
            }
            dcn_topology::Pair::new(a, b)
        })
        .collect();
    group.throughput(Throughput::Elements(pairs.len() as u64));
    group.bench_function("ell_lookup", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &p in &pairs {
                acc += dm.ell(p) as u64;
            }
            black_box(acc)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    paging_policies,
    indexed_set_and_alias,
    topology_distances,
    ell_lookup
);
criterion_main!(benches);

//! Criterion companion to Figure 4b: serve-loop throughput on the
//! Microsoft-like i.i.d. workload (50 racks, b ∈ {3, 6, 9}).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dcn_bench::{FigureSpec, Workload};
use dcn_core::algorithms::AlgorithmKind;
use std::hint::black_box;
use std::time::Duration;

fn fig4b(c: &mut Criterion) {
    let spec = FigureSpec {
        id: "bench",
        title: "bench",
        workload: Workload::Microsoft,
        racks: 50,
        bs: vec![3, 6, 9],
        total_requests: 100_000,
        num_checkpoints: 1,
        alpha: 10,
        repetitions: 1,
    };
    let dm = spec.distances();
    let trace = spec.trace(0);
    let mut group = c.benchmark_group("fig4b_microsoft");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
        .throughput(Throughput::Elements(trace.len() as u64));
    for algorithm in [AlgorithmKind::Rbma { lazy: true }, AlgorithmKind::Bma] {
        for &b in &spec.bs {
            group.bench_with_input(BenchmarkId::new(algorithm.label(), b), &b, |bencher, &b| {
                bencher.iter(|| {
                    let mut s =
                        algorithm.build_with_trace(dm.clone(), b, spec.alpha, 3, &trace.requests);
                    let mut matched = 0u64;
                    for &r in &trace.requests {
                        matched += s.serve(r).was_matched as u64;
                    }
                    black_box(matched)
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, fig4b);
criterion_main!(benches);

//! Offline-machinery benchmarks: the SO-BMA pipeline (demand aggregation →
//! blossom rounds) and the switch-assignment edge coloring.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcn_core::algorithms::static_offline::{demand_edges, so_bma_matching};
use dcn_matching::{edge_coloring, greedy_b_matching, max_weight_matching, WeightedEdge};
use dcn_topology::{builders, DistanceMatrix};
use dcn_traces::generators::facebook::facebook_cluster_trace;
use dcn_traces::FacebookCluster;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;
use std::time::Duration;

fn blossom_vs_greedy(c: &mut Criterion) {
    let mut group = c.benchmark_group("mwm");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(2));
    for n in [50usize, 100] {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut edges = Vec::new();
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                if rng.random_bool(0.5) {
                    edges.push(WeightedEdge::new(u, v, rng.random_range(1..10_000)));
                }
            }
        }
        group.bench_with_input(BenchmarkId::new("blossom", n), &edges, |b, edges| {
            b.iter(|| black_box(max_weight_matching(n, edges)))
        });
        group.bench_with_input(BenchmarkId::new("greedy", n), &edges, |b, edges| {
            b.iter(|| black_box(greedy_b_matching(n, edges, 1)))
        });
    }
    group.finish();
}

fn so_bma_pipeline(c: &mut Criterion) {
    let racks = 100;
    let net = builders::fat_tree_with_racks(racks);
    let dm = DistanceMatrix::between_racks(&net);
    let trace = facebook_cluster_trace(FacebookCluster::Database, racks, 100_000, 3);
    let mut group = c.benchmark_group("so_bma");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(3));
    group.bench_function("demand_aggregation_100k", |b| {
        b.iter(|| black_box(demand_edges(&dm, &trace.requests)))
    });
    for b_cap in [6usize, 18] {
        group.bench_with_input(
            BenchmarkId::new("matching_rounds", b_cap),
            &b_cap,
            |bencher, &b_cap| {
                bencher.iter(|| black_box(so_bma_matching(&dm, &trace.requests, b_cap)))
            },
        );
    }
    group.finish();
}

fn switch_coloring(c: &mut Criterion) {
    let mut group = c.benchmark_group("edge_coloring");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    for b in [6usize, 18] {
        // Random b-matching on 100 racks.
        let n = 100;
        let mut rng = SmallRng::seed_from_u64(b as u64);
        let mut degree = vec![0usize; n];
        let mut edges = Vec::new();
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                if degree[u as usize] < b && degree[v as usize] < b && rng.random_bool(0.3) {
                    degree[u as usize] += 1;
                    degree[v as usize] += 1;
                    edges.push(dcn_topology::Pair::new(u, v));
                }
            }
        }
        group.bench_with_input(
            BenchmarkId::new("misra_gries", b),
            &edges,
            |bencher, edges| bencher.iter(|| black_box(edge_coloring(n, edges))),
        );
    }
    group.finish();
}

criterion_group!(benches, blossom_vs_greedy, so_bma_pipeline, switch_coloring);
criterion_main!(benches);

//! Demand-layer micro-benchmarks: matrix construction, blending, streamed
//! sampling throughput, and demand-aware matching builds — the constants
//! behind the `demand` repro target (gated in CI like `micro_substrates`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dcn_demand::{AwareStrategy, DemandAware, DemandMatrix, MicrosoftParams};
use dcn_topology::{builders, DistanceMatrix};
use dcn_traces::{matrix_source, RequestSource};
use std::hint::black_box;
use std::time::Duration;

fn matrix_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("demand_matrix");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    for racks in [50usize, 100] {
        group.bench_with_input(
            BenchmarkId::new("microsoft_build", racks),
            &racks,
            |b, &n| b.iter(|| black_box(DemandMatrix::microsoft(n, MicrosoftParams::default(), 7))),
        );
        group.bench_with_input(BenchmarkId::new("zipf_build", racks), &racks, |b, &n| {
            b.iter(|| black_box(DemandMatrix::zipf_pairs(n, 1.2, 7)))
        });
    }
    let a = DemandMatrix::microsoft(100, MicrosoftParams::default(), 1).normalized();
    let bm = DemandMatrix::microsoft(100, MicrosoftParams::default(), 2).normalized();
    group.bench_function("blend_100racks", |b| {
        b.iter(|| black_box(DemandMatrix::blend(&a, &bm, 0.5)))
    });
    group.bench_function("from_trace_100racks", |b| {
        let trace = dcn_traces::matrix_trace(&a, 50_000, 3);
        b.iter(|| black_box(DemandMatrix::from_trace(100, &trace.requests)))
    });
    group.finish();
}

fn matrix_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("demand_sampling");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1))
        .throughput(Throughput::Elements(10_000));
    let matrix = DemandMatrix::microsoft(100, MicrosoftParams::default(), 5);
    group.bench_function("matrix_source_10k", |b| {
        let mut source = matrix_source(&matrix, 10_000, 9);
        b.iter(|| {
            source.reset();
            let mut acc = 0u64;
            while let Some(p) = source.next_request() {
                acc += p.lo() as u64;
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn aware_builds(c: &mut Criterion) {
    let mut group = c.benchmark_group("demand_aware_build");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(2));
    let net = builders::fat_tree_with_racks(50);
    let dm = DistanceMatrix::between_racks(&net);
    let base = DemandMatrix::microsoft(50, MicrosoftParams::default(), 1).normalized();
    let other = DemandMatrix::microsoft(50, MicrosoftParams::default(), 2).normalized();
    group.bench_function("greedy_b6", |b| {
        let builder = DemandAware::new(base.clone());
        b.iter(|| black_box(builder.build(&dm, 6)))
    });
    group.bench_function("repeated_mwm_b6", |b| {
        let builder = DemandAware::new(base.clone()).with_strategy(AwareStrategy::RepeatedMwm);
        b.iter(|| black_box(builder.build(&dm, 6)))
    });
    group.bench_function("hedged2_b6", |b| {
        let builder = DemandAware::hedged(vec![base.clone(), other.clone()]);
        b.iter(|| black_box(builder.build(&dm, 6)))
    });
    group.finish();
}

criterion_group!(benches, matrix_construction, matrix_sampling, aware_builds);
criterion_main!(benches);

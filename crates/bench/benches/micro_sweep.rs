//! The sweep executor's timing claims: work-stealing [`run_jobs`] vs the
//! sequential baseline on a deliberately **skewed** job-cost grid (two
//! heavyweight runs in front of a tail of small ones — the grid shape
//! where a static split strands workers while one thread grinds through a
//! big job). Worker counts beyond the machine's cores degrade to the core
//! count, so on a single-core CI shard the parallel rows mostly guard
//! against executor overhead rather than demonstrate speedup; the
//! `repro_figures sweep` target publishes the multi-core scaling table.
//!
//! CI gates this bench against the shared criterion baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dcn_core::algorithms::AlgorithmKind;
use dcn_core::sweep::{run_jobs, run_jobs_sequential, Job, ShardSpec};
use dcn_topology::{builders, DistanceMatrix};
use dcn_traces::TraceSpec;
use dcn_util::rngx::derive_seed;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

const RACKS: usize = 100;
const DEGREE: usize = 12;
const ALPHA: u64 = 10;
/// Heavy jobs are 8x the small ones: a 2-big + 6-small grid under a static
/// halves split would leave one worker idle for most of the wall-clock.
const BIG: usize = 60_000;
const SMALL: usize = BIG / 8;

fn distances() -> Arc<DistanceMatrix> {
    Arc::new(DistanceMatrix::between_racks(
        &builders::fat_tree_with_racks(RACKS),
    ))
}

fn skewed_jobs() -> Vec<Job> {
    [BIG, BIG, SMALL, SMALL, SMALL, SMALL, SMALL, SMALL]
        .iter()
        .enumerate()
        .map(|(j, &len)| Job {
            algorithm: if j % 2 == 0 {
                AlgorithmKind::Rbma { lazy: true }
            } else {
                AlgorithmKind::Bma
            },
            b: DEGREE,
            alpha: ALPHA,
            seed: derive_seed(0x5E0, j as u64),
            checkpoints: vec![],
            trace: TraceSpec::Zipf {
                num_racks: RACKS,
                len,
                exponent: 1.2,
                seed: derive_seed(0x5E1, j as u64),
            },
        })
        .collect()
}

/// Sequential vs work-stealing execution of the skewed grid.
fn sweep_executor_skewed(c: &mut Criterion) {
    let dm = distances();
    let jobs = skewed_jobs();
    let total: u64 = jobs.iter().map(|j| j.trace.len() as u64).sum();
    let mut group = c.benchmark_group("sweep_skewed_grid");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3))
        .throughput(Throughput::Elements(total));
    group.bench_function("sequential", |bench| {
        bench.iter(|| black_box(run_jobs_sequential(&dm, &jobs)))
    });
    for workers in [2usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("work_stealing", workers),
            &workers,
            |bench, &workers| bench.iter(|| black_box(run_jobs(&dm, &jobs, workers))),
        );
    }
    group.finish();
}

/// Shard bookkeeping overhead: computing one half-shard of the grid must
/// cost about half the grid (the partition itself is index arithmetic).
fn sweep_shard_overhead(c: &mut Criterion) {
    let dm = distances();
    let jobs = skewed_jobs();
    let mut group = c.benchmark_group("sweep_shard");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    group.bench_function("half_shard_sequential", |bench| {
        let shard = ShardSpec::new(0, 2);
        bench.iter(|| black_box(dcn_core::sweep::run_jobs_sharded(&dm, &jobs, 1, shard)))
    });
    group.finish();
}

criterion_group!(benches, sweep_executor_skewed, sweep_shard_overhead);
criterion_main!(benches);

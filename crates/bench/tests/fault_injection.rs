//! Failpoint-driven coverage of the bench crate's hardened I/O paths: the
//! ledger's advisory file lock under a simulated race, and the shard
//! parser's injected-error path.
//!
//! Failpoint state is process-global, so these tests live in their own
//! integration binary and serialize through `FAULT_LOCK`.

use dcn_bench::{locked_update, Ledger, LedgerEntry};
use dcn_util::failpoint;
use std::sync::Mutex;
use std::time::Duration;

static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn locked() -> std::sync::MutexGuard<'static, ()> {
    FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn entry(pr: u64, algorithm: &str, mode: &str, tp: f64) -> LedgerEntry {
    LedgerEntry {
        pr,
        algorithm: algorithm.into(),
        mode: mode.into(),
        mreq_per_sec: tp,
    }
}

#[test]
fn concurrent_ledger_updates_serialize_under_the_file_lock() {
    let _g = locked();
    let path = std::env::temp_dir().join(format!("rdcn-ledger-race-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(dcn_util::fsx::FileLock::lock_path_for(&path));

    // Widen the read-modify-write critical section so that, without the
    // lock, the two threads would both read the empty ledger and the
    // second atomic write would erase the first thread's row.
    failpoint::arm(
        "ledger.critical",
        failpoint::Action::Delay(Duration::from_millis(40)),
        failpoint::Trigger::Always,
    );
    std::thread::scope(|scope| {
        for pr in [101u64, 102] {
            let path = &path;
            scope.spawn(move || {
                locked_update(
                    path,
                    vec![entry(pr, "R-BMA", "batched", pr as f64)],
                    Duration::from_secs(10),
                )
                .expect("locked update");
            });
        }
    });
    failpoint::disarm("ledger.critical");
    assert_eq!(failpoint::hits("ledger.critical"), 0, "disarm resets");

    let text = std::fs::read_to_string(&path).expect("ledger written");
    let ledger = Ledger::from_json(&text).expect("parse");
    for pr in [101u64, 102] {
        assert!(
            ledger.entries.iter().any(|e| e.pr == pr),
            "PR {pr}'s row was lost to the race: {ledger:?}"
        );
    }
    // The lock file itself is released (removed) once both updates finish.
    assert!(!dcn_util::fsx::FileLock::lock_path_for(&path).exists());
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn ledger_lock_times_out_with_a_structured_error() {
    let _g = locked();
    let path = std::env::temp_dir().join(format!("rdcn-ledger-stuck-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&path);
    // A stale/held lock: acquisition must fail with an error naming the
    // contended path rather than deadlocking or clobbering.
    let held = dcn_util::fsx::FileLock::acquire(&path, Duration::ZERO).expect("acquire");
    let err = locked_update(
        &path,
        vec![entry(1, "R-BMA", "batched", 1.0)],
        Duration::from_millis(50),
    )
    .expect_err("held lock must time out");
    assert!(err.contains("lock"), "{err}");
    drop(held);
    // Once released, the same update goes through.
    locked_update(
        &path,
        vec![entry(1, "R-BMA", "batched", 1.0)],
        Duration::from_millis(50),
    )
    .expect("update after release");
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn injected_parse_error_surfaces_through_the_merge_path() {
    let _g = locked();
    let dir = std::env::temp_dir().join(format!("rdcn-parse-inject-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let table = dcn_bench::demand_sweep(0.005, 1, dcn_core::sweep::ShardSpec::new(0, 1));
    std::fs::write(
        dir.join(dcn_bench::shard_file_name(
            "inject",
            dcn_core::sweep::ShardSpec::new(0, 1),
        )),
        table.to_json(),
    )
    .expect("write shard");

    // Error-action failpoints surface through `eval` at the parser's
    // entry: the merge must fail with the injected message, file-tagged.
    failpoint::arm(
        "shard.parse",
        failpoint::Action::Error("injected corruption".into()),
        failpoint::Trigger::Always,
    );
    let err = dcn_bench::shard::merge_target_dir(&dir, "inject").expect_err("injected error");
    failpoint::disarm("shard.parse");
    assert!(err.contains("injected corruption"), "{err}");
    assert!(err.contains("BENCH_inject"), "{err}");

    // Disarmed, the same directory merges fine.
    let (merged, _) = dcn_bench::shard::merge_target_dir(&dir, "inject").expect("clean merge");
    assert_eq!(merged.to_json(), table.to_json());
    let _ = std::fs::remove_dir_all(&dir);
}

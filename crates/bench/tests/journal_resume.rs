//! The resumability contract of the demand sweep, end to end: for **any**
//! failpoint-chosen kill index and any worker count, a run killed
//! mid-sweep and then resumed from its journal produces a table JSON
//! byte-identical to the uninterrupted run. This is the property the CI
//! chaos step spot-checks with one schedule; the proptest sweeps the
//! schedule space.
//!
//! Failpoint and journal state are process-global, so this test binary is
//! its own process and serializes its cases through `CASE_LOCK`.

use dcn_bench::demand_sweep_supervised;
use dcn_core::journal::{self, RunJournal};
use dcn_core::sweep::{ShardSpec, Supervisor};
use dcn_util::failpoint;
use proptest::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;
use std::time::Duration;

static CASE_LOCK: Mutex<()> = Mutex::new(());

const SCALE: f64 = 0.005;
// The demand grid at any scale: 5 λ levels × 4 algorithms × 2 repetitions.
const GRID: u64 = 40;

fn sup() -> Supervisor {
    Supervisor::scoped("demand").with_backoff(Duration::ZERO)
}

fn clean_json() -> String {
    let (table, failures) = demand_sweep_supervised(SCALE, 1, ShardSpec::full(), &sup());
    assert!(failures.is_empty(), "clean run must not quarantine");
    table.to_json()
}

fn kill_and_resume(kill_at: u64, resume_threads: usize) -> String {
    let path = std::env::temp_dir().join(format!(
        "rdcn-journal-resume-{}-{kill_at}-{resume_threads}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);

    // Run 1: killed at the `kill_at`-th job claim — the claim site sits
    // outside supervision, so the panic unwinds the whole sweep, exactly
    // like a process kill. Jobs journaled before the kill survive.
    journal::install(RunJournal::open(&path, false).expect("fresh journal"));
    failpoint::arm(
        "sweep.job_claim",
        failpoint::Action::Panic,
        failpoint::Trigger::Nth(kill_at),
    );
    let killed = catch_unwind(AssertUnwindSafe(|| {
        demand_sweep_supervised(SCALE, 1, ShardSpec::full(), &sup())
    }));
    failpoint::disarm("sweep.job_claim");
    journal::uninstall();
    assert!(killed.is_err(), "claim {kill_at} must kill the run");

    // Run 2: resume. Journaled jobs replay digest-checked; the rest run,
    // at a *different* worker count than the killed run used.
    let resumed = RunJournal::open(&path, true).expect("replay journal");
    assert_eq!(
        resumed.len() as u64,
        kill_at - 1,
        "sequential kill at claim {kill_at} leaves exactly {} journaled job(s)",
        kill_at - 1
    );
    journal::install(resumed);
    let (table, failures) =
        demand_sweep_supervised(SCALE, resume_threads, ShardSpec::full(), &sup());
    journal::uninstall();
    assert!(failures.is_empty(), "resume must complete every job");

    // The journal now covers the full grid.
    assert_eq!(
        RunJournal::open(&path, true).expect("final journal").len() as u64,
        GRID
    );
    std::fs::remove_file(&path).unwrap();
    table.to_json()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn any_kill_point_resumes_to_the_byte_identical_artifact(
        kill_at in 1u64..=GRID,
        resume_threads in 1usize..=4,
    ) {
        let _g = CASE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let clean = clean_json();
        let resumed = kill_and_resume(kill_at, resume_threads);
        prop_assert_eq!(resumed, clean, "kill@{} did not resume cleanly", kill_at);
    }
}

/// Pinned corners: first claim (nothing journaled) and last claim (all but
/// one journaled), resumed at 1 and 4 workers.
#[test]
fn pinned_kill_points() {
    let _g = CASE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let clean = clean_json();
    assert_eq!(kill_and_resume(1, 4), clean);
    assert_eq!(kill_and_resume(GRID, 1), clean);
}

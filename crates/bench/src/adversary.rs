//! The `repro_figures adversary` target: a budgeted coverage-guided
//! adversarial search ([`mod@dcn_adversary::search`]) per online algorithm,
//! reported as the usual [`SimpleTable`] (mergeable `BENCH_adversary.json`)
//! plus one replayable [`CorpusEntry`] per row for the genome artifact.
//!
//! Determinism contract matches every other table target: row seeds are
//! fixed per row (not per shard), so `--shard I/M` partitions the rows and
//! `--merge-json` reassembles the exact unsharded artifact, for any
//! `--threads`.

use crate::ablations::SimpleTable;
use dcn_adversary::search::search_topology;
use dcn_adversary::{evaluate, search, CorpusEntry, SearchConfig};
use dcn_core::algorithms::AlgorithmKind;
use dcn_core::sweep::ShardSpec;

/// The online algorithms the adversary attacks, with their corpus tags.
fn attack_roster() -> Vec<(&'static str, AlgorithmKind)> {
    vec![
        ("Bma", AlgorithmKind::Bma),
        ("RbmaLazy", AlgorithmKind::Rbma { lazy: true }),
        ("RbmaStrict", AlgorithmKind::Rbma { lazy: false }),
        ("Rotor:50", AlgorithmKind::Rotor { period: 50 }),
        ("Periodic:100", AlgorithmKind::Periodic { period: 100 }),
    ]
}

/// Search configuration at `scale` (1.0 ≈ 800-request genomes, 160
/// evaluations per algorithm; floors keep `--fast --scale 0.1` smoke runs
/// meaningful).
fn scaled_config(scale: f64, search_seed: u64, threads: usize) -> SearchConfig {
    SearchConfig {
        num_racks: 8,
        b: 2,
        alpha: 10,
        algo_seed: 1,
        search_seed,
        target_len: ((800.0 * scale).round() as usize).max(40),
        budget: ((160.0 * scale).round() as usize).max(16),
        batch: 16,
        pool_capacity: 24,
        threads,
    }
}

/// Runs the per-algorithm adversarial search and returns the summary
/// table plus one replayable corpus entry per computed row.
pub fn adversary_search(
    scale: f64,
    threads: usize,
    shard: ShardSpec,
) -> (SimpleTable, Vec<CorpusEntry>) {
    let mut rows = Vec::new();
    let mut entries = Vec::new();
    for (i, (tag, kind)) in attack_roster().into_iter().enumerate() {
        if !shard.owns(i) {
            continue;
        }
        // Per-row seed: stable under sharding and roster reordering-by-index.
        let cfg = scaled_config(scale, 42 + i as u64, threads);
        let outcome = search(&kind, &cfg);
        let replay = evaluate(
            &kind,
            &search_topology(cfg.num_racks),
            cfg.b,
            cfg.alpha,
            cfg.algo_seed,
            &outcome.best.genome,
        );
        let entry = CorpusEntry::from_outcome(
            &kind,
            cfg.num_racks,
            cfg.b,
            cfg.alpha,
            cfg.algo_seed,
            outcome.star_baseline,
            outcome.best.genome.clone(),
            &replay,
        );
        rows.push((
            tag.to_string(),
            vec![
                outcome.best.fitness,
                outcome.star_baseline,
                100.0 * (outcome.best.fitness / outcome.star_baseline - 1.0),
                outcome.evaluations as f64,
                outcome.best.genome.len() as f64,
                cfg.search_seed as f64,
                cfg.algo_seed as f64,
            ],
        ));
        entries.push(entry);
    }
    let table = SimpleTable {
        title: format!(
            "Adversary: worst cost ratio vs SO-BMA found per algorithm \
             (n=8, b=2, alpha=10, scale={scale})"
        ),
        columns: vec![
            "best ratio".into(),
            "star baseline".into(),
            "gain %".into(),
            "evaluations".into(),
            "genome len".into(),
            "search seed".into(),
            "algo seed".into(),
        ],
        rows,
        statuses: Vec::new(),
    };
    (table, entries)
}

/// The genome artifact accompanying `BENCH_adversary.json`: a JSON array
/// of replayable corpus entries, one per computed row.
pub fn genomes_to_json(entries: &[CorpusEntry]) -> String {
    let parts: Vec<String> = entries.iter().map(CorpusEntry::to_json).collect();
    format!("[{}]", parts.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_scale_produces_full_replayable_rows() {
        let (table, entries) = adversary_search(0.02, 1, ShardSpec::full());
        assert_eq!(table.rows.len(), 5);
        assert_eq!(entries.len(), 5);
        for ((label, values), entry) in table.rows.iter().zip(&entries) {
            assert_eq!(label, &entry.algorithm);
            assert!(values[0] >= values[1], "best below star baseline");
            entry.verify().expect("bench row must replay exactly");
        }
        // The artifact parses back entry by entry.
        let json = genomes_to_json(&entries);
        assert!(json.starts_with('[') && json.ends_with(']'));
    }

    #[test]
    fn sharded_rows_partition_the_table() {
        let full = adversary_search(0.02, 1, ShardSpec::full()).0;
        let a = adversary_search(0.02, 1, ShardSpec::parse("0/2").unwrap()).0;
        let b = adversary_search(0.02, 1, ShardSpec::parse("1/2").unwrap()).0;
        assert_eq!(a.rows.len() + b.rows.len(), full.rows.len());
        let mut merged: Vec<_> = a.rows.iter().chain(&b.rows).cloned().collect();
        merged.sort_by(|x, y| x.0.cmp(&y.0));
        let mut expect = full.rows.clone();
        expect.sort_by(|x, y| x.0.cmp(&y.0));
        assert_eq!(merged, expect);
    }
}

//! Ablation experiments (DESIGN.md §4, Abl. A–E): the design-choice probes
//! that complement the paper's headline figures.

use crate::{FigureSpec, Workload};
use dcn_core::algorithms::rbma::{Rbma, RemovalMode};
use dcn_core::algorithms::static_offline::{so_bma_matching, static_routing_cost};
use dcn_core::algorithms::AlgorithmKind;
use dcn_core::sweep::{run_jobs, steal_map, Job, ShardSpec};
use dcn_core::OnlineScheduler;
use dcn_topology::{builders, DistanceMatrix, Pair};
use dcn_util::rngx::derive_seed;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use serde::Serialize;
use std::sync::Arc;

/// A generic result table (rows × named columns).
#[derive(Clone, Debug, Default)]
pub struct SimpleTable {
    /// Table caption.
    pub title: String,
    /// Column headers (excluding the row-label column).
    pub columns: Vec<String>,
    /// (row label, one value per column).
    pub rows: Vec<(String, Vec<f64>)>,
    /// Sparse per-row degradation notes `(row index, status)`, sorted by
    /// row index — populated when supervised execution quarantined one of
    /// the jobs behind a row, so partial artifacts degrade *visibly*.
    pub statuses: Vec<(usize, String)>,
}

// Hand-written so the `statuses` field is emitted only when non-empty:
// failure-free artifacts keep their historical bytes (the shard-merge and
// kill-and-resume identity gates diff artifacts byte-for-byte).
impl Serialize for SimpleTable {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeStruct;
        let fields = 3 + usize::from(!self.statuses.is_empty());
        let mut s = serializer.serialize_struct("SimpleTable", fields)?;
        s.serialize_field("title", &self.title)?;
        s.serialize_field("columns", &self.columns)?;
        s.serialize_field("rows", &self.rows)?;
        if !self.statuses.is_empty() {
            s.serialize_field("statuses", &self.statuses)?;
        }
        s.end()
    }
}

impl SimpleTable {
    /// Compact JSON rendering (for machine-readable bench summaries, e.g.
    /// the CI smoke run's `BENCH_demand.json`).
    pub fn to_json(&self) -> String {
        dcn_util::json::to_json_string(self).expect("table serialization cannot fail")
    }

    /// Markdown rendering.
    pub fn to_markdown(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "### {}\n", self.title);
        let _ = write!(out, "| |");
        for c in &self.columns {
            let _ = write!(out, " {c} |");
        }
        let _ = writeln!(out);
        let _ = write!(out, "|---|");
        for _ in &self.columns {
            let _ = write!(out, "---|");
        }
        let _ = writeln!(out);
        for (label, values) in &self.rows {
            let _ = write!(out, "| {label} |");
            for v in values {
                // Non-finite cells are deliberate "not applicable" markers
                // (e.g. speedup on a 1-core host) — render them readably.
                if v.is_finite() {
                    let _ = write!(out, " {v:.4} |");
                } else {
                    let _ = write!(out, " n/a |");
                }
            }
            let _ = writeln!(out);
        }
        if !self.statuses.is_empty() {
            let _ = writeln!(out);
            for (i, note) in &self.statuses {
                let label = self.rows.get(*i).map_or("?", |(l, _)| l.as_str());
                let _ = writeln!(out, "> ⚠ row {label}: {note}");
            }
        }
        out
    }
}

/// Base configuration at `scale` times the nominal 200k-request workload
/// (`1.0` = full size; `repro_figures` passes `--scale / 20` under
/// `--fast`).
fn base_spec(scale: f64) -> FigureSpec {
    FigureSpec {
        id: "ablation",
        title: "ablation base (Facebook Database)",
        workload: Workload::FacebookDb,
        racks: 100,
        bs: vec![12],
        total_requests: 200_000,
        num_checkpoints: 4,
        alpha: 10,
        repetitions: 3,
    }
    .scaled_by(scale)
}

fn total_costs(
    spec: &FigureSpec,
    algorithm: AlgorithmKind,
    b: usize,
    alpha: u64,
    threads: usize,
) -> (f64, f64) {
    // Returns (mean routing cost, mean reconfig cost) across repetitions.
    // Each job streams its own trace; nothing is materialized.
    let dm = spec.distances();
    let jobs: Vec<Job> = (0..spec.repetitions)
        .map(|rep| Job {
            algorithm: algorithm.clone(),
            b,
            alpha,
            seed: derive_seed(0xAB1, rep),
            checkpoints: vec![],
            trace: spec.trace_spec(rep),
        })
        .collect();
    let reports = run_jobs(&dm, &jobs, threads);
    let n = spec.repetitions as f64;
    (
        reports
            .iter()
            .map(|r| r.total.routing_cost as f64)
            .sum::<f64>()
            / n,
        reports
            .iter()
            .map(|r| r.total.reconfig_cost as f64)
            .sum::<f64>()
            / n,
    )
}

/// Abl. A — reconfiguration-cost sweep: how α moves the rent-or-buy point.
/// `threads` feeds the work-stealing executor (`0` = auto); `shard`
/// selects which α rows (by original index) this invocation computes.
pub fn ablation_alpha(scale: f64, threads: usize, shard: ShardSpec) -> SimpleTable {
    let spec = base_spec(scale);
    let b = 12;
    let mut rows = Vec::new();
    for (i, alpha) in [1u64, 2, 5, 10, 20, 50, 100].into_iter().enumerate() {
        if !shard.owns(i) {
            continue;
        }
        let (r_rbma, c_rbma) =
            total_costs(&spec, AlgorithmKind::Rbma { lazy: true }, b, alpha, threads);
        let (r_bma, c_bma) = total_costs(&spec, AlgorithmKind::Bma, b, alpha, threads);
        rows.push((
            format!("α={alpha}"),
            vec![r_rbma, c_rbma, r_rbma + c_rbma, r_bma, c_bma, r_bma + c_bma],
        ));
    }
    SimpleTable {
        title: format!(
            "Ablation A: α sweep (FB-DB, b={b}, {} requests)",
            spec.total_requests
        ),
        columns: vec![
            "R-BMA routing".into(),
            "R-BMA reconfig".into(),
            "R-BMA total".into(),
            "BMA routing".into(),
            "BMA reconfig".into(),
            "BMA total".into(),
        ],
        rows,
        statuses: Vec::new(),
    }
}

/// Abl. B — resource augmentation: online R-BMA with degree b versus the
/// *offline static* optimum restricted to degree a ≤ b (the (b,a) setting
/// of the analysis). `threads`/`shard` follow the table-target convention.
pub fn ablation_augmentation(scale: f64, threads: usize, shard: ShardSpec) -> SimpleTable {
    let spec = base_spec(scale);
    let b = 12;
    let dm = spec.distances();
    let a_values = [2usize, 4, 6, 8, 10, 12];
    // The R-BMA baseline is shared by every row: skip it entirely when this
    // shard owns no rows (an empty slice must cost nothing).
    let rbma_total = if (0..a_values.len()).any(|i| shard.owns(i)) {
        let (routing, reconfig) = total_costs(
            &spec,
            AlgorithmKind::Rbma { lazy: true },
            b,
            spec.alpha,
            threads,
        );
        routing + reconfig
    } else {
        0.0
    };
    let mut rows = Vec::new();
    for (i, a) in a_values.into_iter().enumerate() {
        if !shard.owns(i) {
            continue;
        }
        let mut so = 0.0;
        for rep in 0..spec.repetitions {
            let trace = spec.trace(rep);
            let m = so_bma_matching(&dm, &trace.requests, a);
            so += static_routing_cost(&dm, &trace.requests, &m) as f64;
        }
        so /= spec.repetitions as f64;
        rows.push((format!("a={a}"), vec![so, rbma_total, rbma_total / so]));
    }
    SimpleTable {
        title: format!(
            "Ablation B: (b,a)-augmentation (online R-BMA b={b} vs offline degree-a static)"
        ),
        columns: vec![
            "SO-BMA(a) routing".into(),
            "R-BMA total".into(),
            "ratio".into(),
        ],
        rows,
        statuses: Vec::new(),
    }
}

/// Abl. C — spatial-skew sweep: routing-cost reduction vs the oblivious
/// baseline as a function of the Zipf exponent. `threads`/`shard` follow
/// the table-target convention.
pub fn ablation_skew(scale: f64, threads: usize, shard: ShardSpec) -> SimpleTable {
    let mut rows = Vec::new();
    for (i, s) in [0.6, 0.9, 1.2, 1.5, 1.8].into_iter().enumerate() {
        if !shard.owns(i) {
            continue;
        }
        let spec = FigureSpec {
            workload: Workload::Zipf(s),
            ..base_spec(scale)
        };
        let b = 12;
        let (rbma, _) = total_costs(
            &spec,
            AlgorithmKind::Rbma { lazy: true },
            b,
            spec.alpha,
            threads,
        );
        let (obl, _) = total_costs(&spec, AlgorithmKind::Oblivious, b, spec.alpha, threads);
        rows.push((format!("s={s}"), vec![obl, rbma, 1.0 - rbma / obl]));
    }
    SimpleTable {
        title: "Ablation C: skew sweep (Zipf exponent vs R-BMA's routing-cost reduction, b=12)"
            .into(),
        columns: vec!["Oblivious".into(), "R-BMA".into(), "reduction".into()],
        rows,
        statuses: Vec::new(),
    }
}

/// Abl. E — lazy vs strict removals (footnote 2 of the paper).
/// `threads`/`shard` follow the table-target convention.
pub fn ablation_removal(scale: f64, threads: usize, shard: ShardSpec) -> SimpleTable {
    let spec = base_spec(scale);
    let mut rows = Vec::new();
    for (i, b) in [6usize, 12, 18].into_iter().enumerate() {
        if !shard.owns(i) {
            continue;
        }
        let (r_lazy, c_lazy) = total_costs(
            &spec,
            AlgorithmKind::Rbma { lazy: true },
            b,
            spec.alpha,
            threads,
        );
        let (r_strict, c_strict) = total_costs(
            &spec,
            AlgorithmKind::Rbma { lazy: false },
            b,
            spec.alpha,
            threads,
        );
        rows.push((
            format!("b={b}"),
            vec![r_lazy, r_strict, r_strict - r_lazy, c_lazy, c_strict],
        ));
    }
    SimpleTable {
        title: "Ablation E: lazy vs strict removal mode (FB-DB)".into(),
        columns: vec![
            "routing lazy".into(),
            "routing strict".into(),
            "strict - lazy".into(),
            "reconfig lazy".into(),
            "reconfig strict".into(),
        ],
        rows,
        statuses: Vec::new(),
    }
}

/// Abl. D — the power of randomization: excess cost of deterministic BMA
/// (driven by an adaptive chaser) vs randomized R-BMA (oblivious uniform
/// blocks) on the §2.4 star-of-pairs nemesis, as b grows.
///
/// All requests target pairs `{0, v}` on a leaf-spine (ℓ ≡ 2), in blocks
/// long enough to cross both algorithms' buy thresholds. `excess` is the
/// total cost above the all-matched ideal (`1` per request); the
/// deterministic excess grows ≈ linearly in b while the randomized one
/// grows ≈ logarithmically, so the ratio grows ≈ b/log b.
pub fn lower_bound_gap(scale: f64, threads: usize, shard: ShardSpec) -> SimpleTable {
    assert!(scale > 0.0);
    let alpha = 10u64;
    let num_blocks = ((2000.0 * scale).round() as usize).max(200);
    // Each row drives adversarial serve loops sequentially (the chaser is
    // adaptive), but the rows are independent — fan the owned rows out over
    // `threads` workers (`0` = auto) like every other grid.
    let owned: Vec<usize> = [2usize, 4, 8, 16]
        .into_iter()
        .enumerate()
        .filter(|(i, _)| shard.owns(*i))
        .map(|(_, b)| b)
        .collect();
    let compute_row = |b: usize| -> (String, Vec<f64>) {
        let spokes = b + 1;
        let n = spokes + 1;
        let net = builders::leaf_spine(n, 2);
        let dm = Arc::new(DistanceMatrix::between_racks(&net));
        let block_len = alpha as usize; // ≥ buy threshold for ℓ=2

        // Deterministic BMA vs adaptive chaser.
        let mut bma = dcn_core::algorithms::bma::Bma::new(dm.clone(), b, alpha);
        let excess_bma =
            drive_star_blocks(&mut bma, &dm, alpha, spokes, block_len, num_blocks, None);

        // Randomized R-BMA vs oblivious uniform blocks (3 seeds).
        let mut excess_rbma = 0.0;
        let seeds = 3;
        for seed in 0..seeds {
            let mut rbma = Rbma::new(dm.clone(), b, alpha, RemovalMode::Lazy, seed);
            excess_rbma += drive_star_blocks(
                &mut rbma,
                &dm,
                alpha,
                spokes,
                block_len,
                num_blocks,
                Some(derive_seed(0xD00, seed)),
            );
        }
        excess_rbma /= seeds as f64;

        (
            format!("b={b}"),
            vec![excess_bma, excess_rbma, excess_bma / excess_rbma.max(1.0)],
        )
    };
    let rows = steal_map(owned.len(), threads, |k| compute_row(owned[k]));
    SimpleTable {
        title: format!(
            "Ablation D: deterministic vs randomized excess cost on the star nemesis \
             (α={alpha}, {num_blocks} blocks)"
        ),
        columns: vec!["BMA excess".into(), "R-BMA excess".into(), "ratio".into()],
        rows,
        statuses: Vec::new(),
    }
}

/// Feeds block requests to a scheduler. With `rng_seed = None`, plays the
/// adaptive chaser (next block targets a pair missing from the matching);
/// otherwise picks the spoke uniformly at random. Returns the cost in
/// excess of the all-matched ideal (1/request).
fn drive_star_blocks<S: OnlineScheduler + ?Sized>(
    scheduler: &mut S,
    dm: &DistanceMatrix,
    alpha: u64,
    spokes: usize,
    block_len: usize,
    num_blocks: usize,
    rng_seed: Option<u64>,
) -> f64 {
    let mut rng = rng_seed.map(SmallRng::seed_from_u64);
    let mut total = 0u64;
    for blk in 0..num_blocks {
        let spoke = match &mut rng {
            Some(rng) => rng.random_range(1..=spokes as u32),
            None => (1..=spokes as u32)
                .find(|&v| !scheduler.matching().contains(Pair::new(0, v)))
                .unwrap_or((blk % spokes) as u32 + 1),
        };
        let pair = Pair::new(0, spoke);
        for _ in 0..block_len {
            let out = scheduler.serve(pair);
            total += if out.was_matched {
                1
            } else {
                dm.ell(pair) as u64
            };
            total += alpha * (out.added + out.removed) as u64;
        }
    }
    total as f64 - (num_blocks * block_len) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha_table_shape() {
        let t = ablation_alpha(0.02, 1, ShardSpec::full());
        assert_eq!(t.rows.len(), 7);
        assert_eq!(t.columns.len(), 6);
        // Reconfig cost at α=1 must be positive for both algorithms.
        assert!(t.rows[0].1[1] > 0.0 && t.rows[0].1[4] > 0.0);
        let md = t.to_markdown();
        assert!(md.contains("α=1"));
    }

    #[test]
    fn augmentation_ratio_decreases_with_a() {
        let t = ablation_augmentation(0.02, 1, ShardSpec::full());
        // SO-BMA with larger a can only do better (rows report its cost in
        // column 0): monotone non-increasing.
        let costs: Vec<f64> = t.rows.iter().map(|(_, v)| v[0]).collect();
        assert!(costs.windows(2).all(|w| w[1] <= w[0] * 1.001), "{costs:?}");
    }

    #[test]
    fn skew_reduction_increases_with_s() {
        let t = ablation_skew(0.02, 2, ShardSpec::full());
        let first = t.rows.first().expect("rows").1[2];
        let last = t.rows.last().expect("rows").1[2];
        assert!(
            last > first,
            "more skew should mean more reduction: {first} -> {last}"
        );
    }

    #[test]
    fn removal_mode_lazy_not_worse_routing() {
        let t = ablation_removal(0.02, 1, ShardSpec::full());
        for (label, v) in &t.rows {
            // Keeping edges longer can only reduce routing cost: strict ≥ lazy
            // (allow 2% noise).
            assert!(
                v[1] >= v[0] * 0.98,
                "{label}: strict {} vs lazy {}",
                v[1],
                v[0]
            );
        }
    }

    #[test]
    fn lower_bound_gap_grows_with_b() {
        let t = lower_bound_gap(0.1, 2, ShardSpec::full());
        let ratios: Vec<f64> = t.rows.iter().map(|(_, v)| v[2]).collect();
        assert!(
            ratios.last().expect("rows") > ratios.first().expect("rows"),
            "deterministic/randomized gap should widen with b: {ratios:?}"
        );
    }
}

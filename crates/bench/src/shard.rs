//! Multi-host sharding of the table targets: shard artifacts and their
//! byte-exact reassembly.
//!
//! `repro_figures --shard i/m --json DIR <target>` computes only the table
//! rows shard `i` owns (round-robin by original row index, seeds
//! unchanged — see [`dcn_core::sweep::ShardSpec`]) and writes them as
//! `BENCH_<target>.shard-i-of-m.json`. `repro_figures --merge-json DIR
//! <target>` gathers all `m` shard files, re-interleaves the rows (row `p`
//! of the full table is row `p / m` of shard `p % m`), and writes the
//! merged `BENCH_<target>.json`.
//!
//! The merge contract is **byte identity**: for deterministic tables (all
//! cost columns; the CI smoke diffs the `demand` target), the merged file
//! equals the file an unsharded run writes, byte for byte. That holds
//! because (a) sharded runs derive every row's seeds from its original
//! index, (b) titles/columns are identical across shards, and (c) the
//! [`parse_table`] → [`SimpleTable::to_json`] round trip is exact — JSON
//! floats are emitted via Rust's shortest-round-trip `Display` and parsed
//! back with `str::parse`, which recovers the identical `f64`.

use crate::SimpleTable;
use dcn_core::sweep::ShardSpec;
use std::path::{Path, PathBuf};

/// File name of one shard's artifact for `target`.
pub fn shard_file_name(target: &str, shard: ShardSpec) -> String {
    format!(
        "BENCH_{target}.shard-{}-of-{}.json",
        shard.index(),
        shard.count()
    )
}

/// File name of the merged (= unsharded) artifact for `target`.
pub fn merged_file_name(target: &str) -> String {
    format!("BENCH_{target}.json")
}

/// Merges shard tables (each tagged with its [`ShardSpec`]) back into the
/// full table: validates one table per shard index with a consistent shard
/// count and identical title/columns, then re-interleaves rows
/// round-robin. Fails on any gap — a missing shard, or shard sizes that
/// cannot come from one grid.
pub fn merge_tables(parts: Vec<(ShardSpec, SimpleTable)>) -> Result<SimpleTable, String> {
    let count = parts
        .first()
        .map(|(s, _)| s.count())
        .ok_or("no shard tables to merge")?;
    let mut by_index: Vec<Option<SimpleTable>> = (0..count).map(|_| None).collect();
    for (shard, table) in parts {
        if shard.count() != count {
            return Err(format!(
                "inconsistent shard counts: {} vs {count}",
                shard.count()
            ));
        }
        if by_index[shard.index()].is_some() {
            return Err(format!("duplicate shard {shard}"));
        }
        by_index[shard.index()] = Some(table);
    }
    let tables: Vec<SimpleTable> = by_index
        .into_iter()
        .enumerate()
        .map(|(i, t)| t.ok_or(format!("missing shard {i}-of-{count}")))
        .collect::<Result<_, _>>()?;

    let reference = &tables[0];
    for t in &tables[1..] {
        if t.title != reference.title {
            return Err(format!(
                "shard titles disagree: {:?} vs {:?}",
                t.title, reference.title
            ));
        }
        if t.columns != reference.columns {
            return Err("shard column sets disagree".into());
        }
    }

    let total: usize = tables.iter().map(|t| t.rows.len()).sum();
    let mut rows = Vec::with_capacity(total);
    let mut cursors = vec![0usize; count];
    for p in 0..total {
        let shard_of_row = p % count;
        let row = tables[shard_of_row]
            .rows
            .get(cursors[shard_of_row])
            .ok_or(format!(
                "shard {shard_of_row}-of-{count} is short: no row for grid position {p} \
                 (shard sizes do not interleave into one grid)"
            ))?;
        cursors[shard_of_row] += 1;
        rows.push(row.clone());
    }
    // Every shard's rows must be consumed exactly.
    for (i, (cursor, t)) in cursors.iter().zip(&tables).enumerate() {
        if *cursor != t.rows.len() {
            return Err(format!(
                "shard {i}-of-{count} has {} surplus row(s)",
                t.rows.len() - cursor
            ));
        }
    }
    Ok(SimpleTable {
        title: reference.title.clone(),
        columns: reference.columns.clone(),
        rows,
    })
}

/// Scans `dir` for `target`'s shard files, parses and merges them, and
/// returns the merged table together with the paths it consumed.
pub fn merge_target_dir(dir: &Path, target: &str) -> Result<(SimpleTable, Vec<PathBuf>), String> {
    let prefix = format!("BENCH_{target}.shard-");
    let mut parts = Vec::new();
    let mut paths = Vec::new();
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| e.to_string())?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(spec) = name
            .strip_prefix(&prefix)
            .and_then(|rest| rest.strip_suffix(".json"))
        else {
            continue;
        };
        // File-name form is "i-of-m".
        let Some((i, m)) = spec.split_once("-of-") else {
            return Err(format!("malformed shard file name {name:?}"));
        };
        let shard = ShardSpec::parse(&format!("{i}/{m}"))
            .map_err(|e| format!("shard file {name:?}: {e}"))?;
        let text = std::fs::read_to_string(entry.path()).map_err(|e| format!("{name}: {e}"))?;
        let table = parse_table(&text).map_err(|e| format!("{name}: {e}"))?;
        parts.push((shard, table));
        paths.push(entry.path());
    }
    if parts.is_empty() {
        return Err(format!(
            "no {prefix}*.json shard files in {}",
            dir.display()
        ));
    }
    paths.sort();
    merge_tables(parts).map(|t| (t, paths))
}

/// Parses the JSON that [`SimpleTable::to_json`] emits:
/// `{"title": str, "columns": [str], "rows": [[str, [num]]]}`.
///
/// This is the one place the workspace parses JSON back (merging shard
/// artifacts); the grammar is the emitter's, handled exactly — strings
/// with the emitter's escape set, floats via `str::parse` (lossless
/// against shortest-round-trip output), no trailing garbage.
pub fn parse_table(text: &str) -> Result<SimpleTable, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.expect(b'{')?;
    let mut title = None;
    let mut columns = None;
    let mut rows = None;
    loop {
        p.skip_ws();
        let key = p.parse_string()?;
        p.skip_ws();
        p.expect(b':')?;
        p.skip_ws();
        match key.as_str() {
            "title" => title = Some(p.parse_string()?),
            "columns" => columns = Some(p.parse_array(|p| p.parse_string())?),
            "rows" => {
                rows = Some(p.parse_array(|p| {
                    // One row: ["label", [v, v, ...]]
                    p.expect(b'[')?;
                    p.skip_ws();
                    let label = p.parse_string()?;
                    p.skip_ws();
                    p.expect(b',')?;
                    p.skip_ws();
                    let values = p.parse_array(|p| p.parse_number())?;
                    p.skip_ws();
                    p.expect(b']')?;
                    Ok((label, values))
                })?)
            }
            other => return Err(format!("unexpected key {other:?} in table JSON")),
        }
        p.skip_ws();
        match p.next()? {
            b',' => continue,
            b'}' => break,
            c => return Err(format!("expected ',' or '}}', got {:?}", c as char)),
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err("trailing data after table JSON".into());
    }
    Ok(SimpleTable {
        title: title.ok_or("table JSON missing \"title\"")?,
        columns: columns.ok_or("table JSON missing \"columns\"")?,
        rows: rows.ok_or("table JSON missing \"rows\"")?,
    })
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn next(&mut self) -> Result<u8, String> {
        let b = *self.bytes.get(self.pos).ok_or("unexpected end of JSON")?;
        self.pos += 1;
        Ok(b)
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        let got = self.next()?;
        if got != want {
            return Err(format!(
                "expected {:?} at byte {}, got {:?}",
                want as char,
                self.pos - 1,
                got as char
            ));
        }
        Ok(())
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            // Consume raw UTF-8 up to the next quote/escape in one slice.
            let start = self.pos;
            while !matches!(self.bytes.get(self.pos), None | Some(b'"') | Some(b'\\')) {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid UTF-8 in JSON string")?,
            );
            match self.next()? {
                b'"' => return Ok(out),
                b'\\' => match self.next()? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = (self.next()? as char)
                                .to_digit(16)
                                .ok_or("invalid \\u escape")?;
                            code = code * 16 + d;
                        }
                        out.push(char::from_u32(code).ok_or("invalid \\u code point")?);
                    }
                    e => return Err(format!("unsupported escape \\{}", e as char)),
                },
                _ => unreachable!("scan stopped on quote or backslash"),
            }
        }
    }

    fn parse_number(&mut self) -> Result<f64, String> {
        let start = self.pos;
        // "null" is how the emitter writes non-finite values.
        if self.bytes[self.pos..].starts_with(b"null") {
            self.pos += 4;
            return Ok(f64::NAN);
        }
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>()
            .map_err(|_| format!("invalid number {text:?} at byte {start}"))
    }

    fn parse_array<T>(
        &mut self,
        mut element: impl FnMut(&mut Self) -> Result<T, String>,
    ) -> Result<Vec<T>, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(out);
        }
        loop {
            self.skip_ws();
            out.push(element(self)?);
            self.skip_ws();
            match self.next()? {
                b',' => continue,
                b']' => return Ok(out),
                c => return Err(format!("expected ',' or ']', got {:?}", c as char)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> SimpleTable {
        SimpleTable {
            title: "Scaling: α=10, λ = drift \"quoted\" \\ slash\nnewline".into(),
            columns: vec!["R-BMA Mreq/s".into(), "ratio".into()],
            rows: vec![
                ("λ=0".into(), vec![22.75321, 1.0]),
                ("row2".into(), vec![-0.5, 1e-9]),
                ("row3".into(), vec![123456789.0, 0.3333333333333333]),
            ],
        }
    }

    #[test]
    fn parse_round_trips_to_json_byte_identically() {
        let table = sample_table();
        let json = table.to_json();
        let back = parse_table(&json).expect("parse emitted JSON");
        assert_eq!(back.to_json(), json, "round trip must be byte-identical");
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in [
            "",
            "{",
            "{\"title\": 3}",
            "{\"title\": \"t\"} extra",
            "{\"bogus\": \"x\"}",
        ] {
            assert!(parse_table(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn merge_reassembles_round_robin_rows() {
        let full = sample_table();
        // Shard by row index round-robin, as the table targets do.
        let split = |i: usize, m: usize| SimpleTable {
            title: full.title.clone(),
            columns: full.columns.clone(),
            rows: full
                .rows
                .iter()
                .enumerate()
                .filter(|(r, _)| ShardSpec::new(i, m).owns(*r))
                .map(|(_, row)| row.clone())
                .collect(),
        };
        for m in 1..=3usize {
            let parts: Vec<_> = (0..m)
                .map(|i| (ShardSpec::new(i, m), split(i, m)))
                .collect();
            let merged = merge_tables(parts).expect("merge");
            assert_eq!(merged.to_json(), full.to_json(), "m={m}");
        }
    }

    #[test]
    fn merge_rejects_inconsistent_parts() {
        let t = sample_table();
        // Missing shard 1.
        let only0 = vec![(ShardSpec::new(0, 2), t.clone())];
        assert!(merge_tables(only0).is_err());
        // Title mismatch.
        let mut other = t.clone();
        other.title = "different".into();
        let parts = vec![
            (ShardSpec::new(0, 2), t.clone()),
            (ShardSpec::new(1, 2), other),
        ];
        assert!(merge_tables(parts).is_err());
        // Duplicate shard index.
        let parts = vec![
            (ShardSpec::new(0, 2), t.clone()),
            (ShardSpec::new(0, 2), t.clone()),
        ];
        assert!(merge_tables(parts).is_err());
        assert!(merge_tables(Vec::new()).is_err());
    }

    #[test]
    fn sharded_demand_sweep_merges_byte_identically() {
        // The real contract behind the CI smoke step: run the (fully
        // deterministic) demand target unsharded and as two shards; the
        // merged JSON must equal the unsharded JSON byte for byte.
        let full = crate::demand_sweep(0.005, 1, ShardSpec::full());
        let parts: Vec<_> = (0..2)
            .map(|i| {
                let shard = ShardSpec::new(i, 2);
                (shard, crate::demand_sweep(0.005, 1, shard))
            })
            .collect();
        let merged = merge_tables(parts).expect("merge");
        assert_eq!(merged.to_json(), full.to_json());
    }

    #[test]
    fn merge_target_dir_reads_shard_files() {
        let dir = std::env::temp_dir().join(format!("rdcn-shard-merge-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let full = sample_table();
        for i in 0..2usize {
            let shard = ShardSpec::new(i, 2);
            let part = SimpleTable {
                title: full.title.clone(),
                columns: full.columns.clone(),
                rows: full
                    .rows
                    .iter()
                    .enumerate()
                    .filter(|(r, _)| shard.owns(*r))
                    .map(|(_, row)| row.clone())
                    .collect(),
            };
            std::fs::write(dir.join(shard_file_name("demo", shard)), part.to_json())
                .expect("write shard");
        }
        let (merged, paths) = merge_target_dir(&dir, "demo").expect("merge dir");
        assert_eq!(paths.len(), 2);
        assert_eq!(merged.to_json(), full.to_json());
        assert!(merge_target_dir(&dir, "absent").is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
